//! `robopt-baselines`: the enumerators Robopt is measured against.
//!
//! * [`object_plan`] + [`rheem_ml`] — the "Rheem-ML" strawman of the
//!   paper's Fig 1: the *same* enumeration algorithm (same merge order,
//!   same lossless boundary pruning, same cost oracle) but run over an
//!   object subplan graph in the style of RHEEMix, re-deriving the feature
//!   vector from the objects on **every** cost invocation. The only
//!   difference from `robopt-core` is the representation, which is exactly
//!   what the Fig-1 benchmark isolates.
//! * [`exhaustive`] — enumerate all `k^n` assignments (tiny plans only);
//!   the ground truth for the Lemma-1 losslessness property tests.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod exhaustive;
pub mod object_plan;
pub mod rheem_ml;

pub use exhaustive::{exhaustive_best, exhaustive_count};
pub use rheem_ml::ObjectEnumerator;
