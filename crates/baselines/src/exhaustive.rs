//! Exhaustive enumeration: ground truth for Lemma-1 losslessness tests and
//! the Table-I `k^n` search-space reference.

use robopt_core::vectorize::{vectorize_assignment, ExecutionPlan};
use robopt_core::CostOracle;
use robopt_plan::LogicalPlan;
use robopt_vector::FeatureLayout;

/// Size of the unpruned search space: `k^n` (may far exceed `u64` for the
/// Table-I (20, 5) point, hence `u128`).
pub fn exhaustive_count(n_ops: usize, n_platforms: usize) -> u128 {
    (n_platforms as u128).pow(n_ops as u32)
}

/// Cost every one of the `k^n` full assignments and return the optimum.
/// Buffers are reused across candidates; guarded to small plans.
pub fn exhaustive_best(
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    oracle: &dyn CostOracle,
    n_platforms: u8,
) -> ExecutionPlan {
    let n = plan.n_ops();
    let k = n_platforms as usize;
    let total = exhaustive_count(n, k);
    assert!(
        total <= 1 << 22,
        "exhaustive search space too large: {total}"
    );
    let mut assign = vec![0u8; n];
    let mut feats: Vec<f64> = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut best_assign = assign.clone();
    for _ in 0..total {
        vectorize_assignment(plan, layout, &assign, &mut feats);
        let cost = oracle.cost_row(&feats);
        if cost < best_cost {
            best_cost = cost;
            best_assign.copy_from_slice(&assign);
        }
        // Odometer increment in base k.
        for slot in assign.iter_mut() {
            *slot += 1;
            if (*slot as usize) < k {
                break;
            }
            *slot = 0;
        }
    }
    ExecutionPlan {
        assignments: best_assign,
        cost: best_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_core::AnalyticOracle;
    use robopt_plan::{workloads, N_OPERATOR_KINDS};

    #[test]
    fn counts_grow_as_k_to_the_n() {
        assert_eq!(exhaustive_count(5, 2), 32);
        assert_eq!(exhaustive_count(20, 5), 95_367_431_640_625);
    }

    #[test]
    fn exhaustive_matches_pruned_enumeration_on_wordcount() {
        use robopt_core::{EnumOptions, Enumerator};
        let plan = workloads::wordcount(1e5);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_layout(&layout);
        let brute = exhaustive_best(&plan, &layout, &oracle, 2);
        let (fast, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            &oracle,
            EnumOptions {
                n_platforms: 2,
                prune: true,
            },
        );
        assert!((brute.cost - fast.cost).abs() <= 1e-9 * brute.cost.abs().max(1.0));
    }
}
