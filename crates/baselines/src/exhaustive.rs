//! Exhaustive enumeration: ground truth for Lemma-1 losslessness tests and
//! the Table-I `k^n` search-space reference.

use robopt_core::vectorize::{vectorize_assignment, ExecutionPlan};
use robopt_core::EnumOptions;
use robopt_plan::LogicalPlan;
use robopt_platforms::{PlatformId, PlatformRegistry};
use robopt_vector::{FeatureLayout, RowsView};

/// Rows costed per batched oracle call during the exhaustive sweep.
const BATCH_ROWS: usize = 256;

/// Size of the unpruned search space: `k^n` (may far exceed `u64` for the
/// Table-I (20, 5) point, hence `u128`).
pub fn exhaustive_count(n_ops: usize, n_platforms: usize) -> u128 {
    (n_platforms as u128).pow(n_ops as u32)
}

/// Is `assign` executable under `registry`? Every operator must be available
/// on its platform and every dataflow edge's platform pair convertible.
fn feasible(plan: &LogicalPlan, registry: &PlatformRegistry, assign: &[u8]) -> bool {
    for op in 0..plan.n_ops() as u32 {
        let p = PlatformId::from_index(assign[op as usize] as usize);
        if !registry.is_available(plan.op(op).kind, p) {
            return false;
        }
    }
    plan.edges().iter().all(|&(u, v)| {
        let (pu, pv) = (assign[u as usize], assign[v as usize]);
        pu == pv
            || registry.convertible(
                PlatformId::from_index(pu as usize),
                PlatformId::from_index(pv as usize),
            )
    })
}

/// Cost every feasible one of the `k^n` full assignments (availability and
/// conversion feasibility come from the registry carried by `opts`) and
/// return the optimum. Candidates are costed in batches of `BATCH_ROWS` rows
/// through [`robopt_core::CostOracle::cost_batch`]; guarded to small plans.
/// The sweep is already exhaustive, so `opts.prune()` is ignored.
pub fn exhaustive_best(
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    opts: EnumOptions<'_>,
) -> ExecutionPlan {
    let registry = opts.registry();
    let oracle = opts.oracle();
    let n = plan.n_ops();
    let k = registry.len();
    assert_eq!(layout.n_platforms, k);
    assert_eq!(oracle.width(), layout.width);
    let total = exhaustive_count(n, k);
    assert!(
        total <= 1 << 22,
        "exhaustive search space too large: {total}"
    );
    let mut assign = vec![0u8; n];
    let mut feats: Vec<f64> = Vec::new();
    let mut batch: Vec<f64> = Vec::with_capacity(BATCH_ROWS * layout.width);
    let mut batch_assign: Vec<u8> = Vec::with_capacity(BATCH_ROWS * n);
    let mut costs: Vec<f64> = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut best_assign: Option<Vec<u8>> = None;

    let mut flush = |batch: &mut Vec<f64>,
                     batch_assign: &mut Vec<u8>,
                     best_cost: &mut f64,
                     best_assign: &mut Option<Vec<u8>>| {
        if batch.is_empty() {
            return;
        }
        oracle.cost_batch(RowsView::new(batch, layout.width), &mut costs);
        for (r, &cost) in costs.iter().enumerate() {
            if cost < *best_cost {
                *best_cost = cost;
                *best_assign = Some(batch_assign[r * n..(r + 1) * n].to_vec());
            }
        }
        batch.clear();
        batch_assign.clear();
    };

    for _ in 0..total {
        if feasible(plan, registry, &assign) {
            vectorize_assignment(plan, layout, &assign, &mut feats);
            batch.extend_from_slice(&feats);
            batch_assign.extend_from_slice(&assign);
            if batch.len() >= BATCH_ROWS * layout.width {
                flush(
                    &mut batch,
                    &mut batch_assign,
                    &mut best_cost,
                    &mut best_assign,
                );
            }
        }
        // Odometer increment in base k.
        for slot in assign.iter_mut() {
            *slot += 1;
            if (*slot as usize) < k {
                break;
            }
            *slot = 0;
        }
    }
    flush(
        &mut batch,
        &mut batch_assign,
        &mut best_cost,
        &mut best_assign,
    );
    // lint:allow(panic-expect) exhaustive search over an availability-satisfiable plan always visits at least one feasible assignment
    let best_assign = best_assign.expect("no feasible assignment under this registry");
    ExecutionPlan::from_raw(&best_assign, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_core::AnalyticOracle;
    use robopt_plan::{workloads, N_OPERATOR_KINDS};

    #[test]
    fn counts_grow_as_k_to_the_n() {
        assert_eq!(exhaustive_count(5, 2), 32);
        assert_eq!(exhaustive_count(20, 5), 95_367_431_640_625);
    }

    #[test]
    fn exhaustive_matches_pruned_enumeration_on_wordcount() {
        use robopt_core::Enumerator;
        let plan = workloads::wordcount(1e5);
        let registry = PlatformRegistry::uniform(2);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let brute = exhaustive_best(&plan, &layout, opts);
        let (fast, _) = Enumerator::new().enumerate(&plan, &layout, opts);
        assert!((brute.cost - fast.cost).abs() <= 1e-9 * brute.cost.abs().max(1.0));
    }

    #[test]
    fn exhaustive_respects_named_registry_feasibility() {
        use robopt_core::Enumerator;
        let plan = workloads::wordcount(1e5);
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let brute = exhaustive_best(&plan, &layout, opts);
        for (op, &p) in brute.assignments.iter().enumerate() {
            assert!(registry.is_available(plan.op(op as u32).kind, p));
        }
        let (fast, _) = Enumerator::new().enumerate(&plan, &layout, opts);
        assert!((brute.cost - fast.cost).abs() <= 1e-9 * brute.cost.abs().max(1.0));
    }
}
