//! Object-graph subplans, RHEEMix style.
//!
//! A subplan is a reference-counted binary merge tree over per-operator
//! leaves — the idiomatic object representation a Java optimizer holds
//! (Rheem's `PlanImplementation` graphs). Reading anything out of it means
//! walking the pointer graph; that walk, repeated on every cost call, is
//! what the paper measured at 47% of optimization time.

use std::rc::Rc;

/// One node of an object subplan.
#[derive(Debug)]
pub enum ObjNode {
    /// A single operator placed on a platform.
    Leaf { op: u32, platform: u8 },
    /// The merge of two disjoint subplans.
    Merge {
        left: Rc<ObjNode>,
        right: Rc<ObjNode>,
    },
}

impl ObjNode {
    pub fn leaf(op: u32, platform: u8) -> Rc<ObjNode> {
        Rc::new(ObjNode::Leaf { op, platform })
    }

    pub fn merge(left: Rc<ObjNode>, right: Rc<ObjNode>) -> Rc<ObjNode> {
        Rc::new(ObjNode::Merge { left, right })
    }

    /// Walk the graph, collecting `(op, platform)` placements.
    pub fn collect_into(&self, out: &mut Vec<(u32, u8)>) {
        match self {
            ObjNode::Leaf { op, platform } => out.push((*op, *platform)),
            ObjNode::Merge { left, right } => {
                left.collect_into(out);
                right.collect_into(out);
            }
        }
    }

    /// Number of operators covered (walks the graph).
    pub fn len(&self) -> usize {
        match self {
            ObjNode::Leaf { .. } => 1,
            ObjNode::Merge { left, right } => left.len() + right.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_walks_the_merge_tree() {
        let t = ObjNode::merge(
            ObjNode::merge(ObjNode::leaf(0, 1), ObjNode::leaf(1, 0)),
            ObjNode::leaf(2, 1),
        );
        let mut out = Vec::new();
        t.collect_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1), (1, 0), (2, 1)]);
        assert_eq!(t.len(), 3);
    }
}
