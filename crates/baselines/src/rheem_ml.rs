//! The "Rheem-ML" strawman enumerator (paper Figs 1, 9a).
//!
//! Identical search to `robopt_core::Enumerator` — same Def-3 priority
//! order, same registry-driven availability masking and conversion
//! feasibility, same Def-2 lossless boundary pruning, same batched
//! [`CostOracle`] entry point — but subplans are object graphs
//! ([`ObjNode`]), and the ML cost model is treated as an external black
//! box: every batch is assembled by walking the object graphs and
//! materializing **fresh** feature vectors (plan-to-vector transformation
//! at call time, fresh allocations per merge step). Comparing this against
//! the vector-based enumerator isolates precisely the representation
//! benefit the paper claims.

use std::rc::Rc;

use robopt_core::vectorize::ExecutionPlan;
use robopt_core::EnumOptions;
use robopt_plan::LogicalPlan;
use robopt_platforms::PlatformId;
use robopt_vector::{footprint_hash, FeatureLayout, FootprintTable, RowsView, Scope, NO_PLATFORM};

use crate::object_plan::ObjNode;

struct ObjUnit {
    scope: Scope,
    /// Candidate subplans paired with their (pruning-time) cost.
    plans: Vec<(Rc<ObjNode>, f64)>,
}

/// Object-graph enumerator with per-batch plan-to-vector transformation.
#[derive(Debug, Default)]
pub struct ObjectEnumerator;

impl ObjectEnumerator {
    pub fn new() -> Self {
        ObjectEnumerator
    }

    /// The per-invocation plan-to-vector transformation: walk the object
    /// graph, materialize placements, then encode the Fig-5 cells. All
    /// buffers are freshly allocated — that is the point of the strawman.
    fn features_of(plan: &LogicalPlan, layout: &FeatureLayout, node: &ObjNode) -> Vec<f64> {
        let mut placements: Vec<(u32, u8)> = Vec::new();
        node.collect_into(&mut placements);
        let mut assign = vec![NO_PLATFORM; plan.n_ops()];
        for &(op, p) in &placements {
            assign[op as usize] = p;
        }
        let mut feats = vec![0.0; layout.width];
        for &(op, p) in &placements {
            let i = op as usize;
            let kind = plan.op(op).kind.index();
            let in_t = plan.in_tuples()[i];
            let out_t = plan.out_card()[i];
            feats[FeatureLayout::OP_COUNT] += 1.0;
            feats[FeatureLayout::JUNCTURE_COUNT] += f64::from(u8::from(plan.is_juncture(op)));
            feats[FeatureLayout::MAX_OUT_CARD] = feats[FeatureLayout::MAX_OUT_CARD].max(out_t);
            feats[FeatureLayout::MAX_TUPLE_WIDTH] =
                feats[FeatureLayout::MAX_TUPLE_WIDTH].max(plan.op(op).tuple_width);
            feats[layout.kind_count(kind)] += 1.0;
            feats[layout.kind_in_tuples(kind)] += in_t;
            feats[layout.kind_out_tuples(kind)] += out_t;
            feats[layout.kind_platform_count(kind, p as usize)] += 1.0;
            feats[layout.platform_input_tuples(p as usize)] += in_t;
        }
        for &(u, v) in plan.edges() {
            let (pu, pv) = (assign[u as usize], assign[v as usize]);
            if pu != NO_PLATFORM && pv != NO_PLATFORM && pu != pv {
                feats[layout.conversion_count(pv as usize)] += 1.0;
                feats[layout.conversion_tuples(pv as usize)] += plan.out_card()[u as usize];
            }
        }
        feats
    }

    fn boundary_of(plan: &LogicalPlan, scope: Scope) -> Vec<u32> {
        (0..plan.n_ops() as u32)
            .filter(|&op| {
                scope.contains(op)
                    && plan
                        .succs(op)
                        .iter()
                        .chain(plan.preds(op))
                        .any(|&o| !scope.contains(o))
            })
            .collect()
    }

    /// Run the enumeration; result matches the vector enumerator's optimum
    /// over the same registry and oracle (both carried by `opts`). The
    /// strawman always prunes (Def-2); `opts.prune()` is ignored.
    // lint:allow(panic-expect) whole-fn invariants: union-find roots always hold live units (contracted roots are never re-found), the plan is asserted connected so every contraction round finds a crossing edge, and every singleton keeps >= 1 availability-masked plan through merges
    pub fn enumerate(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
    ) -> ExecutionPlan {
        let n = plan.n_ops();
        let registry = opts.registry();
        let oracle = opts.oracle();
        assert!(plan.is_connected());
        assert_eq!(layout.n_platforms, registry.len());
        assert_eq!(oracle.width(), layout.width);
        let mut units: Vec<Option<ObjUnit>> = (0..n as u32)
            .map(|op| {
                // Availability masking: one singleton per permitted platform,
                // costed through the batched black-box entry point (fresh
                // batch buffer, as everywhere in the strawman).
                let nodes: Vec<Rc<ObjNode>> = registry
                    .available_platforms(plan.op(op).kind)
                    .map(|p| ObjNode::leaf(op, p.raw()))
                    .collect();
                let mut batch: Vec<f64> = Vec::new();
                for node in &nodes {
                    batch.extend_from_slice(&Self::features_of(plan, layout, node));
                }
                let mut costs = Vec::new();
                oracle.cost_batch(RowsView::new(&batch, layout.width), &mut costs);
                Some(ObjUnit {
                    scope: Scope::singleton(op),
                    plans: nodes.into_iter().zip(costs).collect(),
                })
            })
            .collect();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let gp = parent[parent[x as usize] as usize];
                parent[x as usize] = gp;
                x = gp;
            }
            x
        }

        // Def-3 priority by scan: contract the remaining edge minimizing
        // |V_a| x |V_b| (ties: fewer merged-boundary ops, then edge order).
        for _ in 0..n.saturating_sub(1) {
            let mut best: Option<(u64, u32, usize, u32, u32)> = None;
            for (e, &(u, v)) in plan.edges().iter().enumerate() {
                let ra = find(&mut parent, u);
                let rb = find(&mut parent, v);
                if ra == rb {
                    continue;
                }
                let pa = units[ra as usize].as_ref().expect("live unit at root");
                let pb = units[rb as usize].as_ref().expect("live unit at root");
                let pri = (pa.plans.len() * pb.plans.len()) as u64;
                let tie = Self::boundary_of(plan, pa.scope.union(pb.scope)).len() as u32;
                let key = (pri, tie, e, ra, rb);
                if best.is_none_or(|b| (b.0, b.1, b.2) > (pri, tie, e)) {
                    best = Some(key);
                }
            }
            let (_, _, _, ra, rb) = best.expect("connected plan has a crossing edge");
            let a = units[ra as usize].take().expect("live unit at root");
            let b = units[rb as usize].take().expect("live unit at root");
            let merged_scope = a.scope.union(b.scope);
            let boundary = Self::boundary_of(plan, merged_scope);
            let crossing: Vec<(u32, u32)> = plan
                .edges()
                .iter()
                .copied()
                .filter(|&(u, v)| {
                    (a.scope.contains(u) && b.scope.contains(v))
                        || (b.scope.contains(u) && a.scope.contains(v))
                })
                .collect();

            // Stage every feasible combination (fresh object graph + fresh
            // feature vector each), then cost the batch in one call.
            let mut staged: Vec<(Rc<ObjNode>, u64)> = Vec::new();
            let mut batch: Vec<f64> = Vec::new();
            let mut assign_buf = vec![NO_PLATFORM; n];
            for (na, _) in &a.plans {
                for (nb, _) in &b.plans {
                    let node = ObjNode::merge(Rc::clone(na), Rc::clone(nb));
                    let mut placements = Vec::new();
                    node.collect_into(&mut placements);
                    assign_buf.fill(NO_PLATFORM);
                    for &(op, p) in &placements {
                        assign_buf[op as usize] = p;
                    }
                    // Conversion feasibility: exclude combinations whose
                    // crossing edges have no COT path.
                    let feasible = crossing.iter().all(|&(u, v)| {
                        let (pu, pv) = (assign_buf[u as usize], assign_buf[v as usize]);
                        pu == pv
                            || registry.convertible(
                                PlatformId::from_index(pu as usize),
                                PlatformId::from_index(pv as usize),
                            )
                    });
                    if !feasible {
                        continue;
                    }
                    batch.extend_from_slice(&Self::features_of(plan, layout, &node));
                    staged.push((node, footprint_hash(&boundary, &assign_buf)));
                }
            }
            let mut costs = Vec::new();
            oracle.cost_batch(RowsView::new(&batch, layout.width), &mut costs);

            let mut fp_map = FootprintTable::new();
            let mut merged: Vec<(Rc<ObjNode>, f64)> = Vec::new();
            for ((node, fp), cost) in staged.into_iter().zip(costs) {
                match fp_map.get(fp) {
                    Some(idx) => {
                        if let Some(slot) = merged.get_mut(idx as usize) {
                            if cost < slot.1 {
                                *slot = (node, cost);
                            }
                        }
                    }
                    None => {
                        fp_map.insert(fp, merged.len() as u32);
                        merged.push((node, cost));
                    }
                }
            }
            parent[rb as usize] = ra;
            units[ra as usize] = Some(ObjUnit {
                scope: merged_scope,
                plans: merged,
            });
        }

        let root = find(&mut parent, 0);
        let unit = units[root as usize].take().expect("live unit at root");
        let (best_node, best_cost) = unit
            .plans
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty enumeration");
        let mut placements = Vec::new();
        best_node.collect_into(&mut placements);
        let mut raw = vec![NO_PLATFORM; n];
        for (op, p) in placements {
            raw[op as usize] = p;
        }
        ExecutionPlan::from_raw(&raw, *best_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_core::{AnalyticOracle, EnumOptions, Enumerator};
    use robopt_plan::{workloads, N_OPERATOR_KINDS};

    #[test]
    fn object_enumerator_matches_vector_enumerator() {
        use robopt_platforms::PlatformRegistry;
        for plan in [workloads::wordcount(1e5), workloads::tpch_q3(1e4)] {
            let registry = PlatformRegistry::uniform(2);
            let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
            let oracle = AnalyticOracle::for_registry(&registry, &layout);
            let opts = EnumOptions::new(&registry).with_oracle(&oracle);
            let (vec_exec, _) = Enumerator::new().enumerate(&plan, &layout, opts);
            let obj_exec = ObjectEnumerator::new().enumerate(&plan, &layout, opts);
            let tol = 1e-9 * vec_exec.cost.abs().max(1.0);
            assert!((vec_exec.cost - obj_exec.cost).abs() <= tol);
        }
    }

    #[test]
    fn object_enumerator_matches_vector_enumerator_on_named_registry() {
        use robopt_platforms::PlatformRegistry;
        let plan = workloads::wordcount(1e6);
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let (vec_exec, _) = Enumerator::new().enumerate(&plan, &layout, opts);
        let obj_exec = ObjectEnumerator::new().enumerate(&plan, &layout, opts);
        let tol = 1e-9 * vec_exec.cost.abs().max(1.0);
        assert!((vec_exec.cost - obj_exec.cost).abs() <= tol);
        assert_eq!(vec_exec.assignments, obj_exec.assignments);
    }
}
