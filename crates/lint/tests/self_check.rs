//! The lint must pass over the workspace it ships in: a violation here
//! means either the tree regressed or a rule got too eager — both block CI.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = robopt_lint::run_lint(&root).expect("workspace loads");
    let rendered: Vec<String> = outcome.violations.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.is_clean(),
        "robopt-lint found violations in the real workspace:\n{}",
        rendered.join("\n")
    );
    // The sweep really covered the tree (root facade + 10 crates), and
    // every suppression in it carries a non-empty justification.
    assert!(
        outcome.files_scanned > 40,
        "only {} files scanned — discovery is broken",
        outcome.files_scanned
    );
    assert!(!outcome.allowed.is_empty());
    assert!(outcome.allowed.iter().all(|a| !a.justification.is_empty()));
}
