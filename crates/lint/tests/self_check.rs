//! The lint must pass over the workspace it ships in: a violation here
//! means either the tree regressed or a rule got too eager — both block CI.
//!
//! The fixture workspaces under `tests/fixtures/` exercise the
//! interprocedural passes end-to-end on disk: `taint_bad` hides a
//! nondeterminism source and a panic site two calls behind declared
//! surface entry points and must be flagged with full witness paths;
//! `taint_good` is the same tree with justified source-level allows and
//! must pass.

use std::path::{Path, PathBuf};

/// Ceiling on justified suppressions in the real workspace. Raising this
/// number is a reviewed decision: every new `lint:allow` must argue why
/// the call-graph passes cannot prove the site safe.
const SUPPRESSION_BUDGET: usize = 37;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn workspace_is_lint_clean() {
    let (outcome, _) = robopt_lint::run_lint_graph(&repo_root()).expect("workspace loads");
    let rendered: Vec<String> = outcome.violations.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.is_clean(),
        "robopt-lint found violations in the real workspace:\n{}",
        rendered.join("\n")
    );
    // The sweep really covered the tree (root facade + 10 crates), and
    // every suppression in it carries a non-empty justification.
    assert!(
        outcome.files_scanned > 40,
        "only {} files scanned — discovery is broken",
        outcome.files_scanned
    );
    assert!(!outcome.allowed.is_empty());
    assert!(outcome.allowed.iter().all(|a| !a.justification.is_empty()));
}

#[test]
fn suppressions_stay_within_budget() {
    let outcome = robopt_lint::run_lint(&repo_root()).expect("workspace loads");
    assert!(
        outcome.allowed.len() <= SUPPRESSION_BUDGET,
        "{} justified suppressions exceed the committed budget of {} — either \
         delete an allow the interprocedural passes prove unnecessary, or argue \
         the new one in review and raise the budget",
        outcome.allowed.len(),
        SUPPRESSION_BUDGET
    );
}

#[test]
fn call_graph_covers_the_workspace() {
    let (outcome, graph) = robopt_lint::run_lint_graph(&repo_root()).expect("workspace loads");
    let s = &outcome.graph;
    assert!(
        s.functions >= 300,
        "call graph resolved only {} functions — parser coverage regressed",
        s.functions
    );
    assert!(
        s.crates >= 10,
        "call graph spans only {} crates — discovery regressed",
        s.crates
    );
    assert!(s.edges > s.functions, "suspiciously sparse call graph");
    assert_eq!(graph.summary().functions, s.functions);
    // The declared surfaces are non-empty: the optimizer facade and the
    // execution seam both mark entry points.
    assert!(s.deterministic_roots >= 1, "no deterministic surface found");
    assert!(s.no_panic_roots >= 1, "no no-panic surface found");
}

#[test]
fn taint_fixture_is_flagged_with_full_witness_paths() {
    let outcome = robopt_lint::run_lint(&fixture_root("taint_bad")).expect("fixture loads");
    // Every interprocedural violation must carry its witness chain.
    for v in outcome
        .violations
        .iter()
        .filter(|v| v.rule == "determinism-taint" || v.rule == "panic-reachability")
    {
        assert!(
            v.witness.len() >= 2,
            "{}: interprocedural violation without a witness path",
            v
        );
    }

    let det = outcome
        .violations
        .iter()
        .find(|v| v.rule == "determinism-taint")
        .expect("deterministic entry point two calls above the source is flagged");
    assert!(det.file.ends_with("crates/core/src/lib.rs"));
    // entry -> helper_mid -> helper_leaf -> source token: the whole chain.
    assert_eq!(det.witness.len(), 4, "witness: {:?}", det.witness);
    assert!(det.witness[0].contains("entry"));
    assert!(det.witness[1].contains("helper_mid"));
    assert!(det.witness[2].contains("helper_leaf"));
    assert!(det.witness[3].contains("available_parallelism"));

    let pan = outcome
        .violations
        .iter()
        .find(|v| v.rule == "panic-reachability")
        .expect("no-panic service entry two calls above the unwrap is flagged");
    assert!(pan.file.ends_with("src/lib.rs"));
    assert_eq!(pan.witness.len(), 4, "witness: {:?}", pan.witness);
    assert!(pan.witness[0].contains("svc"));
    assert!(pan.witness[1].contains("step_a"));
    assert!(pan.witness[2].contains("step_b"));
    assert!(pan.witness[3].contains("unwrap"));

    // The plain line rule fires on the unwrap too — taint adds to it, it
    // does not replace it.
    assert!(outcome.violations.iter().any(|v| v.rule == "panic-unwrap"));
}

#[test]
fn justified_sources_clear_the_taint_fixture() {
    let outcome = robopt_lint::run_lint(&fixture_root("taint_good")).expect("fixture loads");
    let rendered: Vec<String> = outcome.violations.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.is_clean(),
        "source-level allows did not clear the fixture:\n{}",
        rendered.join("\n")
    );
    // Both allows were actually exercised and audited.
    assert!(outcome
        .allowed
        .iter()
        .any(|a| a.rule == "determinism-taint"));
    assert!(outcome.allowed.iter().any(|a| a.rule == "panic-unwrap"));
}
