//! Fixture facade: a declared no-panic service entry point whose handler
//! reaches a panic site two calls down. `self_check` expects rule 18 to
//! flag `svc` with the full witness path.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

// lint:surface(no-panic)
pub fn svc(input: &[u64]) -> u64 {
    step_a(input)
}

fn step_a(input: &[u64]) -> u64 {
    step_b(input)
}

fn step_b(input: &[u64]) -> u64 {
    input.first().copied().unwrap()
}
