//! Fixture core: a declared deterministic entry point that reaches a
//! nondeterminism source two calls down. `self_check` expects rule 17 to
//! flag `entry` with the full witness path.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

// lint:surface(deterministic)
pub fn entry(x: u64) -> u64 {
    helper_mid(x)
}

fn helper_mid(x: u64) -> u64 {
    helper_leaf(x)
}

fn helper_leaf(x: u64) -> u64 {
    let w = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    x * w
}
