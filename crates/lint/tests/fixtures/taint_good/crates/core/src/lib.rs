//! Fixture core, good variant: the same deterministic surface and call
//! chain as `taint_bad`, but the nondeterminism source carries a justified
//! source-level allow — `self_check` expects the whole workspace to pass.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

// lint:surface(deterministic)
pub fn entry(x: u64) -> u64 {
    helper_mid(x)
}

fn helper_mid(x: u64) -> u64 {
    helper_leaf(x)
}

fn helper_leaf(x: u64) -> u64 {
    // lint:allow(determinism-taint) the worker count only sizes a scratch factor here; the fixture result is asserted identical across counts
    let w = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    x * w
}
