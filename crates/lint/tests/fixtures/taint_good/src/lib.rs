//! Fixture facade, good variant: the same no-panic surface and call chain
//! as `taint_bad`, but the panic site carries a justified source-level
//! allow — `self_check` expects the whole workspace to pass.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

// lint:surface(no-panic)
pub fn svc(input: &[u64]) -> u64 {
    step_a(input)
}

fn step_a(input: &[u64]) -> u64 {
    step_b(input)
}

fn step_b(input: &[u64]) -> u64 {
    // lint:allow(panic-unwrap) every caller passes a non-empty slice
    input.first().copied().unwrap()
}
