//! Workspace discovery and file classification.
//!
//! The lint walks the repository it lives in: every `.rs` file under
//! `src/` and `crates/*/src/`, every workspace `Cargo.toml`, and the two
//! artifact-referencing documents (`CHANGES.md`, `EXPERIMENTS.md`).
//! Files are classified by the crate they belong to, because the rules
//! apply per class:
//!
//! * **Determinism-critical** (`core`, `vector`, `ml`, `tdgen`,
//!   `platforms`, `engine`): everything a seeded run flows through —
//!   additionally subject to the `hash-container` rule. The engine
//!   qualifies because its output records and digests are contractually
//!   pure functions of `(plan, seed, row cap)`; only its *timings* are
//!   measured, through two explicitly `lint:allow`ed clock shims.
//! * **Library** (`plan`, `baselines`, `lint`, the root facade):
//!   subject to panic-freedom and wall-clock rules.
//! * **Exempt** (`bench`, `cli`): timing harnesses and user-facing entry
//!   points may unwrap and read clocks; contract rules still apply.
//!
//! `#[cfg(test)]` regions are masked out up front (tests may unwrap), by
//! brace-matching the item that follows the attribute.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{scan, LineScan};
use crate::parser::{self, FileItems};
use crate::report::LintError;

/// Crates whose iteration order and value provenance must be a pure
/// function of the seed (Lemma 1 / bit-identical training).
pub const DETERMINISM_CRATES: &[&str] = &["core", "vector", "ml", "tdgen", "platforms", "engine"];

/// Crates exempt from the panic-freedom and wall-clock rules.
pub const EXEMPT_CRATES: &[&str] = &["bench", "cli"];

/// Rule class of the crate a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    Determinism,
    Library,
    Exempt,
}

/// One lexed Rust source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel: String,
    /// Short crate directory name (`core`, `vector`, …; the root facade
    /// is `robopt-repro`).
    pub crate_name: String,
    pub class: CrateClass,
    /// `src/main.rs` or `src/bin/**`: binary entry points are exempt from
    /// the panic-freedom rules like `bench`/`cli` are.
    pub is_binary: bool,
    /// Whether this file is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    pub lines: Vec<LineScan>,
    /// `test_mask[i]` — line `i` (0-based) is inside a `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    /// Parsed items (fn table + `use` bindings) for the call graph.
    pub items: FileItems,
    /// `fn_sigs[i]` — signature line of the innermost fn enclosing line
    /// `i`, if any; lets suppression lookups walk to the fn header.
    pub fn_sigs: Vec<Option<usize>>,
}

/// A raw (unlexed) text file: Cargo.toml manifests and artifact docs.
#[derive(Debug)]
pub struct TextFile {
    pub rel: String,
    pub text: String,
}

/// Everything the rule engine consumes.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub sources: Vec<SourceFile>,
    pub manifests: Vec<TextFile>,
    pub docs: Vec<TextFile>,
}

impl Workspace {
    pub fn files_scanned(&self) -> usize {
        self.sources.len() + self.manifests.len() + self.docs.len()
    }
}

pub(crate) fn classify(crate_name: &str) -> CrateClass {
    if DETERMINISM_CRATES.contains(&crate_name) {
        CrateClass::Determinism
    } else if EXEMPT_CRATES.contains(&crate_name) {
        CrateClass::Exempt
    } else {
        CrateClass::Library
    }
}

fn read(root: &Path, rel: &str) -> Result<String, LintError> {
    fs::read_to_string(root.join(rel))
        .map_err(|e| LintError::new(format!("cannot read {rel}: {e}")))
}

/// Recursively collect `.rs` files under `dir`, returned sorted so the
/// lint's output order never depends on directory-entry order.
fn rust_files_under(root: &Path, rel_dir: &str) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![rel_dir.to_string()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        let entries =
            fs::read_dir(&dir).map_err(|e| LintError::new(format!("cannot list {rel}: {e}")))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::new(format!("cannot list {rel}: {e}")))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let child = format!("{rel}/{name}");
            let ftype = entry
                .file_type()
                .map_err(|e| LintError::new(format!("cannot stat {child}: {e}")))?;
            if ftype.is_dir() {
                stack.push(child);
            } else if name.ends_with(".rs") {
                out.push(child);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn load_source(root: &Path, rel: &str, crate_name: &str) -> Result<SourceFile, LintError> {
    let text = read(root, rel)?;
    let lines = scan(&text);
    let test_mask = compute_test_mask(&lines);
    let items = parser::parse_file(&lines, &test_mask);
    let fn_sigs = parser::enclosing_fn_sig(&items, lines.len());
    Ok(SourceFile {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        class: classify(crate_name),
        is_binary: rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        is_crate_root: rel.ends_with("src/lib.rs"),
        lines,
        test_mask,
        items,
        fn_sigs,
    })
}

/// Load the workspace rooted at `root`.
pub fn load(root: &Path) -> Result<Workspace, LintError> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    let mut docs = Vec::new();

    manifests.push(TextFile {
        rel: "Cargo.toml".to_string(),
        text: read(root, "Cargo.toml")?,
    });
    for rel in rust_files_under(root, "src")? {
        sources.push(load_source(root, &rel, "robopt-repro")?);
    }

    let mut crate_dirs: Vec<String> = Vec::new();
    let entries = fs::read_dir(root.join("crates"))
        .map_err(|e| LintError::new(format!("cannot list crates/: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::new(format!("cannot list crates/: {e}")))?;
        if entry
            .file_type()
            .map_err(|e| LintError::new(format!("cannot stat crate dir: {e}")))?
            .is_dir()
        {
            crate_dirs.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_dirs.sort();
    for name in &crate_dirs {
        manifests.push(TextFile {
            rel: format!("crates/{name}/Cargo.toml"),
            text: read(root, &format!("crates/{name}/Cargo.toml"))?,
        });
        for rel in rust_files_under(root, &format!("crates/{name}/src"))? {
            sources.push(load_source(root, &rel, name)?);
        }
    }

    for doc in ["CHANGES.md", "EXPERIMENTS.md"] {
        if root.join(doc).is_file() {
            docs.push(TextFile {
                rel: doc.to_string(),
                text: read(root, doc)?,
            });
        }
    }

    Ok(Workspace {
        root: root.to_path_buf(),
        sources,
        manifests,
        docs,
    })
}

/// Walk forward from `(li, ci)` (inclusive) yielding code characters.
/// Returns the position of the first char satisfying `pred`.
pub(crate) fn find_code_char(
    lines: &[LineScan],
    mut li: usize,
    mut ci: usize,
    pred: impl Fn(char) -> bool,
) -> Option<(usize, usize)> {
    while li < lines.len() {
        let code = lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        for (off, c) in code.get(ci..).unwrap_or("").char_indices() {
            if pred(c) {
                return Some((li, ci + off));
            }
        }
        li += 1;
        ci = 0;
    }
    None
}

/// Position just past the matching `}` for the `{` at `(li, ci)`; returns
/// the line of the closing brace.
pub fn match_brace(lines: &[LineScan], li: usize, ci: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut cur_li = li;
    let mut cur_ci = ci;
    loop {
        let (bl, bc) = find_code_char(lines, cur_li, cur_ci, |c| c == '{' || c == '}')?;
        let code = lines.get(bl).map(|l| l.code.as_str()).unwrap_or("");
        match code.get(bc..).and_then(|s| s.chars().next()) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(bl);
                }
            }
            _ => return None,
        }
        cur_li = bl;
        cur_ci = bc + 1;
    }
}

/// Mark every line covered by a `#[cfg(test)]` item.
pub(crate) fn compute_test_mask(lines: &[LineScan]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for li in 0..lines.len() {
        let code = lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        let Some(attr_at) = code.find("#[cfg(test)]") else {
            continue;
        };
        // The attribute applies to the next item: brace-match it if it has
        // a body, otherwise mask through its terminating semicolon.
        let after = attr_at + "#[cfg(test)]".len();
        let Some((bl, bc)) = find_code_char(lines, li, after, |c| c == '{' || c == ';') else {
            continue;
        };
        let opener = lines
            .get(bl)
            .and_then(|l| l.code.get(bc..))
            .and_then(|s| s.chars().next());
        let end = if opener == Some('{') {
            match_brace(lines, bl, bc).unwrap_or(bl)
        } else {
            bl
        };
        for m in mask.iter_mut().take(end + 1).skip(li) {
            *m = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(src: &str) -> Vec<bool> {
        compute_test_mask(&scan(src))
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let mask = mask_of(src);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if x { y() } }\n    fn b() {}\n}\nfn real() {}\n";
        let mask = mask_of(src);
        assert!(mask[..5].iter().all(|&m| m));
        assert!(!mask[5]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"{{{\";\n}\nfn real() {}\n";
        let mask = mask_of(src);
        assert_eq!(mask, vec![true, true, true, true, false]);
    }
}
