//! `robopt-lint`: the workspace's in-tree static-analysis pass.
//!
//! The reproduction's headline claims — Lemma-1 lossless pruning,
//! bit-identical seeded training, the Algorithm-1 enumeration contract —
//! hold only because of *conventions*: seeded SplitMix64 everywhere,
//! `debug_assert`ed `CostOracle::width()` checks, no default-hasher
//! iteration anywhere results flow through. `clippy` cannot see any of
//! that. This crate is a dependency-free line/token-level scanner that
//! mechanically enforces those conventions on every CI run, so later PRs
//! cannot silently break them.
//!
//! * [`lexer`] — string/char/comment-aware line scanner (rules never fire
//!   inside literals or docs);
//! * [`workspace`] — file discovery, crate classification,
//!   `#[cfg(test)]` masking;
//! * [`rules`] — the rule engine and the [`rules::RULES`] table;
//! * [`report`] — rustc-style diagnostics and the hand-rendered JSON
//!   report behind `--fix-report`.
//!
//! Suppression: a trailing or immediately preceding
//! `// lint:allow(<rule-id>) <justification>` comment turns a violation
//! into an audited [`report::Suppression`]; empty justifications do not
//! count.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Diagnostic, LintError, LintOutcome, Suppression};
pub use rules::{check, RULES};

use std::path::Path;

/// Lint the workspace rooted at `root`: load, classify, run every rule.
pub fn run_lint(root: &Path) -> Result<LintOutcome, LintError> {
    let ws = workspace::load(root)?;
    Ok(rules::check(&ws))
}
