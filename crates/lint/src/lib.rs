//! `robopt-lint`: the workspace's in-tree static-analysis pass.
//!
//! The reproduction's headline claims — Lemma-1 lossless pruning,
//! bit-identical seeded training, the Algorithm-1 enumeration contract —
//! hold only because of *conventions*: seeded SplitMix64 everywhere,
//! `debug_assert`ed `CostOracle::width()` checks, no default-hasher
//! iteration anywhere results flow through. `clippy` cannot see any of
//! that. This crate is a dependency-free line/token-level scanner that
//! mechanically enforces those conventions on every CI run, so later PRs
//! cannot silently break them.
//!
//! * [`lexer`] — string/char/comment-aware line scanner (rules never fire
//!   inside literals or docs);
//! * [`workspace`] — file discovery, crate classification,
//!   `#[cfg(test)]` masking;
//! * [`parser`] — lightweight item parser: `fn` items, `impl`/`trait`
//!   blocks, `use` bindings;
//! * [`callgraph`] — the workspace-wide symbol-resolved call graph
//!   (conservative over-approximation through `&dyn` seams);
//! * [`taint`] — the interprocedural determinism-taint and
//!   panic-reachability passes (rules 17–18);
//! * [`rules`] — the rule engine and the [`rules::RULES`] table;
//! * [`report`] — rustc-style diagnostics and the hand-rendered JSON
//!   report behind `--fix-report`.
//!
//! Suppression: a trailing or immediately preceding
//! `// lint:allow(<rule-id>) <justification>` comment — or one on the
//! enclosing fn's signature line — turns a violation into an audited
//! [`report::Suppression`]; empty justifications do not count. The
//! interprocedural passes additionally read
//! `// lint:surface(deterministic)` / `// lint:surface(no-panic)` markers
//! declaring the surface they protect.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;
pub mod workspace;

pub use callgraph::{CallGraph, GraphSummary};
pub use report::{Diagnostic, LintError, LintOutcome, Suppression};
pub use rules::{check, RULES};

use std::path::Path;

/// Lint the workspace rooted at `root`: load, classify, run every rule.
pub fn run_lint(root: &Path) -> Result<LintOutcome, LintError> {
    run_lint_graph(root).map(|(outcome, _)| outcome)
}

/// Like [`run_lint`], but also returns the call graph the interprocedural
/// passes ran over (for the `lint_callgraph.json` CI artifact).
pub fn run_lint_graph(root: &Path) -> Result<(LintOutcome, CallGraph), LintError> {
    let ws = workspace::load(root)?;
    let graph = callgraph::build(&ws);
    let outcome = rules::check_with_graph(&ws, &graph);
    Ok((outcome, graph))
}
