//! The workspace-wide, symbol-resolved call graph.
//!
//! Nodes are every `fn` item parsed out of the analysis universe — all
//! non-binary sources of the Library and Determinism crate classes
//! (`bench`/`cli` are the timing harness *above* the service surface and
//! are excluded, exactly like the per-line panic rules exempt them).
//! Edges are extracted from fn bodies and resolved:
//!
//! * **bare calls** `helper(…)` — free functions of the same crate (the
//!   per-crate namespace is deliberately flat: module paths inside a crate
//!   are not tracked, which only ever *adds* edges), plus `use`-imported
//!   free functions of other crates;
//! * **path calls** `robopt_core::split_plan(…)`, `Type::method(…)`,
//!   `Self::helper(…)` — resolved across crates through the file's `use`
//!   bindings (groups, renames and globs included), with `Type::method`
//!   resolved by `(self type, name)` across the whole workspace;
//! * **method calls** `x.method(…)` — resolved to *every* method of that
//!   name in the workspace. This is the conservative over-approximation
//!   that keeps dispatch through `&dyn` seams (`&dyn CostOracle`,
//!   `&dyn ExecutionBackend`) sound: the receiver type is unknown, so all
//!   impls (and trait default bodies) become possible callees;
//! * **fn references in argument position** `sort_by(f64::total_cmp)` —
//!   multi-segment paths not followed by `(` are resolved the same way, so
//!   comparator/constructor passing does not silently drop edges. Bare
//!   single-identifier references are *not* chased (a local named like a
//!   fn would create far too many false edges); the taint passes document
//!   this as the one known under-approximation.
//!
//! Calls into `std`/`core`/`alloc` are classified `external`; the
//! nondeterministic ones (`Instant::now`, hash containers, …) are what the
//! taint pass seeds from *textually*, so externals need no edges.

use std::collections::BTreeMap;

use crate::parser::FnItem;
use crate::workspace::{CrateClass, SourceFile, Workspace};

/// A call-graph node: one fn item plus where it lives.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Crate directory name (`core`, `robopt`, …; root facade is
    /// `robopt-repro`).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Index of the file in `Workspace::sources`.
    pub file_idx: usize,
    /// Index of the fn in that file's `FileItems::fns`.
    pub fn_idx: usize,
    /// `Type::name` qualification for display (`Engine::execute`).
    pub qual: String,
    pub name: String,
    pub self_ty: Option<String>,
    pub sig_line: usize,
    pub body: Option<(usize, usize)>,
    pub body_open_col: usize,
    pub in_test: bool,
}

/// The resolved graph: forward edges with call-site lines, plus a reverse
/// adjacency for the taint passes.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Per caller: `(callee, 0-based call-site line)` — first site only,
    /// deduped, sorted; enough for one witness hop per edge.
    pub calls: Vec<Vec<(u32, usize)>>,
    /// Per callee: callers (deduped, sorted).
    pub callers: Vec<Vec<u32>>,
    pub resolved_calls: usize,
    pub unresolved_calls: usize,
    pub external_calls: usize,
}

/// Aggregate numbers carried into the lint report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphSummary {
    pub functions: usize,
    pub edges: usize,
    pub crates: usize,
    pub resolved_calls: usize,
    pub unresolved_calls: usize,
    pub external_calls: usize,
    pub deterministic_roots: usize,
    pub no_panic_roots: usize,
}

impl CallGraph {
    pub fn edge_count(&self) -> usize {
        self.calls.iter().map(Vec::len).sum()
    }

    pub fn crate_count(&self) -> usize {
        let mut names: Vec<&str> = self.nodes.iter().map(|n| n.crate_name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    pub fn summary(&self) -> GraphSummary {
        GraphSummary {
            functions: self.nodes.len(),
            edges: self.edge_count(),
            crates: self.crate_count(),
            resolved_calls: self.resolved_calls,
            unresolved_calls: self.unresolved_calls,
            external_calls: self.external_calls,
            deterministic_roots: 0,
            no_panic_roots: 0,
        }
    }
}

/// `robopt_core` ↔ `core`: the identifier a crate is referenced by in
/// source paths, derived from its directory name.
pub(crate) fn crate_ident(crate_name: &str) -> String {
    match crate_name {
        "robopt" => "robopt".to_string(),
        "robopt-repro" => "robopt_repro".to_string(),
        other => format!("robopt_{other}"),
    }
}

/// Is this file part of the analysis universe?
pub(crate) fn in_universe(f: &SourceFile) -> bool {
    f.class != CrateClass::Exempt && !f.is_binary
}

const EXTERNAL_CRATES: &[&str] = &["std", "core", "alloc"];

/// Keywords and prelude constructors that look like bare calls but are not.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "else", "unsafe",
    "let", "mut", "ref", "box", "await", "yield", "dyn", "impl", "where", "use", "pub", "crate",
    "super", "self", "Self", "true", "false", "const", "static", "type", "enum", "struct", "trait",
    "mod", "break", "continue", "Some", "None", "Ok", "Err",
];

/// One extracted call site before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallSite {
    /// `.name(…)`
    Method { name: String },
    /// `a::b::name(…)` or a multi-segment fn reference `a::b::name`.
    Path { segments: Vec<String> },
    /// `name(…)`
    Bare { name: String },
}

/// Scan one line of body code for call sites.
fn extract_calls(code: &str, out: &mut Vec<(CallSite, usize)>, li: usize) {
    let chars: Vec<char> = code.chars().collect();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut i = 0usize;
    while i < chars.len() {
        if !is_ident(chars[i]) || chars[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // Identifier start must not be mid-token.
        if i > 0 && is_ident(chars[i - 1]) {
            i += 1;
            continue;
        }
        let method_dot = i > 0 && chars[i - 1] == '.';
        // Read the full `a::b::c` path (skipping one trailing turbofish).
        let mut segments: Vec<String> = Vec::new();
        let mut j = i;
        loop {
            let start = j;
            while j < chars.len() && is_ident(chars[j]) {
                j += 1;
            }
            segments.push(chars[start..j].iter().collect());
            // `::<…>` turbofish between segments or before the paren.
            if j + 1 < chars.len() && chars[j] == ':' && chars[j + 1] == ':' {
                let mut k = j + 2;
                if k < chars.len() && chars[k] == '<' {
                    let mut depth = 1i32;
                    k += 1;
                    while k < chars.len() && depth > 0 {
                        match chars[k] {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    if k + 1 < chars.len() && chars[k] == ':' && chars[k + 1] == ':' {
                        j = k + 2;
                        continue;
                    }
                    j = k;
                    break;
                }
                if k < chars.len() && is_ident(chars[k]) && !chars[k].is_ascii_digit() {
                    j = k;
                    continue;
                }
            }
            break;
        }
        let next = chars.get(j).copied();
        let is_call = next == Some('(');
        let is_macro = next == Some('!');
        let first = segments.first().map(String::as_str).unwrap_or("");
        let last = segments.last().map(String::as_str).unwrap_or("");
        let single = segments.len() == 1;
        if last.is_empty() || is_macro {
            i = j.max(i + 1);
            continue;
        }
        if single && NON_CALLS.contains(&first) {
            i = j.max(i + 1);
            continue;
        }
        if is_call {
            if method_dot && single {
                out.push((
                    CallSite::Method {
                        name: last.to_string(),
                    },
                    li,
                ));
            } else if single {
                // `Name(` with an uppercase initial is a tuple-struct or
                // enum-variant constructor, not a fn call.
                if !first.chars().next().is_some_and(|c| c.is_uppercase()) {
                    out.push((
                        CallSite::Bare {
                            name: last.to_string(),
                        },
                        li,
                    ));
                }
            } else {
                out.push((
                    CallSite::Path {
                        segments: segments.clone(),
                    },
                    li,
                ));
            }
        } else if !single && !method_dot {
            // Multi-segment fn reference in argument position
            // (`sort_by(f64::total_cmp)`, `resize_with(k, Enumerator::default)`).
            let arg_pos = matches!(next, Some(')') | Some(','));
            if arg_pos {
                out.push((
                    CallSite::Path {
                        segments: segments.clone(),
                    },
                    li,
                ));
            }
        }
        i = j.max(i + 1);
    }
}

/// Symbol tables the resolver works against.
struct Tables {
    /// `(crate, fn name)` → node ids (free fns only).
    free_by_crate: BTreeMap<(String, String), Vec<u32>>,
    /// `(crate, fn name)` → node ids (any fn).
    any_by_crate: BTreeMap<(String, String), Vec<u32>>,
    /// method name → node ids (fns with a self type), workspace-wide.
    methods: BTreeMap<String, Vec<u32>>,
    /// `(self type, fn name)` → node ids, workspace-wide.
    typed: BTreeMap<(String, String), Vec<u32>>,
    /// crate path ident (`robopt_core`) → crate name (`core`).
    crate_by_ident: BTreeMap<String, String>,
}

fn build_tables(nodes: &[FnNode]) -> Tables {
    let mut t = Tables {
        free_by_crate: BTreeMap::new(),
        any_by_crate: BTreeMap::new(),
        methods: BTreeMap::new(),
        typed: BTreeMap::new(),
        crate_by_ident: BTreeMap::new(),
    };
    for (id, n) in nodes.iter().enumerate() {
        let id = id as u32;
        t.any_by_crate
            .entry((n.crate_name.clone(), n.name.clone()))
            .or_default()
            .push(id);
        match &n.self_ty {
            Some(ty) => {
                t.methods.entry(n.name.clone()).or_default().push(id);
                t.typed
                    .entry((ty.clone(), n.name.clone()))
                    .or_default()
                    .push(id);
            }
            None => t
                .free_by_crate
                .entry((n.crate_name.clone(), n.name.clone()))
                .or_default()
                .push(id),
        }
        t.crate_by_ident
            .entry(crate_ident(&n.crate_name))
            .or_insert_with(|| n.crate_name.clone());
    }
    t
}

/// Resolve one call site to node ids. Empty = unresolved; `None` =
/// external (`std`/`core`/`alloc`), which is neither.
fn resolve(
    site: &CallSite,
    tables: &Tables,
    caller: &FnNode,
    uses: &[crate::parser::UseBinding],
) -> Option<Vec<u32>> {
    match site {
        CallSite::Method { name } => Some(tables.methods.get(name).cloned().unwrap_or_default()),
        CallSite::Bare { name } => {
            let mut out = tables
                .free_by_crate
                .get(&(caller.crate_name.clone(), name.clone()))
                .cloned()
                .unwrap_or_default();
            // `use`-imported free fns (exact alias or glob prefix).
            for u in uses {
                if u.alias == *name {
                    // the binding's path already ends in the original name
                    if let Some(mut ids) = resolve_path(&u.path, tables, caller) {
                        out.append(&mut ids);
                    }
                } else if u.alias == "*" {
                    let mut path: Vec<String> =
                        u.path.iter().take(u.path.len() - 1).cloned().collect();
                    path.push(name.clone());
                    if let Some(mut ids) = resolve_path(&path, tables, caller) {
                        out.append(&mut ids);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            Some(out)
        }
        CallSite::Path { segments } => {
            // Expand a leading `use` alias.
            let first = segments.first().cloned().unwrap_or_default();
            for u in uses {
                if u.alias == first && u.alias != "*" {
                    let mut path = u.path.clone();
                    path.extend(segments.iter().skip(1).cloned());
                    return resolve_path(&path, tables, caller);
                }
            }
            resolve_path(segments, tables, caller)
        }
    }
}

/// Resolve a full path call `[s0, …, name]`.
fn resolve_path(segments: &[String], tables: &Tables, caller: &FnNode) -> Option<Vec<u32>> {
    let name = segments.last()?.clone();
    let first = segments.first()?.as_str();
    if EXTERNAL_CRATES.contains(&first) && segments.len() > 1 {
        return None; // std/core/alloc: external
    }
    // `Self::name` → the enclosing impl's type.
    if first == "Self" {
        let ty = caller.self_ty.clone()?;
        return Some(tables.typed.get(&(ty, name)).cloned().unwrap_or_default());
    }
    // `crate::…` / `self::…` → current crate.
    let (target_crate, rest): (String, &[String]) = if first == "crate" || first == "self" {
        (caller.crate_name.clone(), &segments[1..])
    } else if let Some(c) = tables.crate_by_ident.get(first) {
        (c.clone(), &segments[1..])
    } else {
        (caller.crate_name.clone(), segments)
    };
    if rest.is_empty() {
        return Some(Vec::new());
    }
    // `…::Type::name` — a type-qualified method beats module paths.
    if rest.len() >= 2 {
        let qualifier = rest[rest.len() - 2].clone();
        if qualifier.chars().next().is_some_and(|c| c.is_uppercase()) {
            let typed = tables
                .typed
                .get(&(qualifier, name.clone()))
                .cloned()
                .unwrap_or_default();
            if !typed.is_empty() {
                return Some(typed);
            }
            // Unknown type (std or generic): treat as external if the
            // path came with an explicit external-looking root.
            if EXTERNAL_CRATES.contains(&first) {
                return None;
            }
        }
    }
    // Module path inside `target_crate` → flat per-crate namespace.
    Some(
        tables
            .any_by_crate
            .get(&(target_crate, name))
            .cloned()
            .unwrap_or_default(),
    )
}

/// Build the call graph over the workspace's analysis universe.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    for (file_idx, f) in ws.sources.iter().enumerate() {
        if !in_universe(f) {
            continue;
        }
        for (fn_idx, item) in f.items.fns.iter().enumerate() {
            nodes.push(node_of(f, file_idx, fn_idx, item));
        }
    }
    let tables = build_tables(&nodes);
    let mut calls: Vec<Vec<(u32, usize)>> = vec![Vec::new(); nodes.len()];
    let mut callers: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    let mut resolved = 0usize;
    let mut unresolved = 0usize;
    let mut external = 0usize;

    let mut sites: Vec<(CallSite, usize)> = Vec::new();
    for id in 0..nodes.len() {
        let (file_idx, body, open_col) = {
            let n = &nodes[id];
            (n.file_idx, n.body, n.body_open_col)
        };
        let Some((bl, el)) = body else { continue };
        let Some(file) = ws.sources.get(file_idx) else {
            continue;
        };
        sites.clear();
        for li in bl..=el.min(file.lines.len().saturating_sub(1)) {
            let code = file.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
            // Skip the signature text before the body's opening brace.
            let code = if li == bl {
                code.get(open_col..).unwrap_or("")
            } else {
                code
            };
            extract_calls(code, &mut sites, li);
        }
        for (site, li) in &sites {
            match resolve(site, &tables, &nodes[id], &ws.sources[file_idx].items.uses) {
                None => external += 1,
                Some(targets) if targets.is_empty() => unresolved += 1,
                Some(targets) => {
                    resolved += 1;
                    for t in targets {
                        if !calls[id].iter().any(|&(c, _)| c == t) {
                            calls[id].push((t, *li));
                        }
                    }
                }
            }
        }
        calls[id].sort_unstable();
    }
    for (id, cs) in calls.iter().enumerate() {
        for &(t, _) in cs {
            callers[t as usize].push(id as u32);
        }
    }
    for c in &mut callers {
        c.sort_unstable();
        c.dedup();
    }
    CallGraph {
        nodes,
        calls,
        callers,
        resolved_calls: resolved,
        unresolved_calls: unresolved,
        external_calls: external,
    }
}

fn node_of(f: &SourceFile, file_idx: usize, fn_idx: usize, item: &FnItem) -> FnNode {
    let qual = match &item.self_ty {
        Some(ty) => format!("{ty}::{}", item.name),
        None => item.name.clone(),
    };
    FnNode {
        crate_name: f.crate_name.clone(),
        file: f.rel.clone(),
        file_idx,
        fn_idx,
        qual,
        name: item.name.clone(),
        self_ty: item.self_ty.clone(),
        sig_line: item.sig_line,
        body: item.body,
        body_open_col: item.body_open_col,
        in_test: item.in_test,
    }
}

/// Hand-rendered JSON of the full graph (nodes, edges, stats) — the CI
/// artifact uploaded next to the lint report.
pub fn to_json(graph: &CallGraph, summary: &GraphSummary) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"functions\": {}, \"edges\": {}, \"crates\": {},\n",
        summary.functions, summary.edges, summary.crates
    ));
    s.push_str(&format!(
        "  \"resolved_calls\": {}, \"unresolved_calls\": {}, \"external_calls\": {},\n",
        summary.resolved_calls, summary.unresolved_calls, summary.external_calls
    ));
    s.push_str(&format!(
        "  \"deterministic_roots\": {}, \"no_panic_roots\": {},\n",
        summary.deterministic_roots, summary.no_panic_roots
    ));
    s.push_str("  \"nodes\": [\n");
    for (i, n) in graph.nodes.iter().enumerate() {
        let comma = if i + 1 < graph.nodes.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": {i}, \"crate\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"test\": {}}}{comma}\n",
            n.crate_name,
            n.qual,
            n.file,
            n.sig_line + 1,
            n.in_test
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"edges\": [");
    let mut first = true;
    for (from, cs) in graph.calls.iter().enumerate() {
        for &(to, _) in cs {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("[{from}, {to}]"));
        }
    }
    s.push_str("]\n}\n");
    s
}

/// Build a one-file-per-crate fixture workspace in memory (shared by the
/// call-graph and taint unit tests).
#[cfg(test)]
pub(crate) fn fixture_ws(files: &[(&str, &str)]) -> Workspace {
    use crate::lexer::scan;
    use crate::workspace::{classify, compute_test_mask};
    let sources = files
        .iter()
        .map(|(crate_name, src)| {
            let lines = scan(src);
            let test_mask = compute_test_mask(&lines);
            let items = crate::parser::parse_file(&lines, &test_mask);
            let fn_sigs = crate::parser::enclosing_fn_sig(&items, lines.len());
            SourceFile {
                rel: format!("crates/{crate_name}/src/fixture.rs"),
                crate_name: crate_name.to_string(),
                class: classify(crate_name),
                is_binary: false,
                is_crate_root: false,
                lines,
                test_mask,
                items,
                fn_sigs,
            }
        })
        .collect();
    Workspace {
        root: std::path::PathBuf::from("."),
        sources,
        manifests: Vec::new(),
        docs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_names(g: &CallGraph, from: &str) -> Vec<String> {
        let Some(id) = g.nodes.iter().position(|n| n.qual == from) else {
            return Vec::new();
        };
        g.calls[id]
            .iter()
            .map(|&(t, _)| g.nodes[t as usize].qual.clone())
            .collect()
    }

    #[test]
    fn same_crate_bare_calls_resolve_to_free_fns_only() {
        let ws = fixture_ws(&[(
            "core",
            "pub fn a() { b(); }\nfn b() {}\nimpl T {\n    fn b(&self) {}\n}\n",
        )]);
        let g = build(&ws);
        assert_eq!(edge_names(&g, "a"), vec!["b"]);
    }

    #[test]
    fn cross_crate_calls_resolve_through_use_and_full_paths() {
        let ws = fixture_ws(&[
            (
                "robopt",
                "use robopt_core::split_plan;\npub fn verb() {\n    split_plan();\n    robopt_ml::fit_ridge();\n}\n",
            ),
            ("core", "pub fn split_plan() {}\n"),
            ("ml", "pub fn fit_ridge() {}\n"),
        ]);
        let g = build(&ws);
        assert_eq!(edge_names(&g, "verb"), vec!["split_plan", "fit_ridge"]);
        let verb = g.nodes.iter().position(|n| n.qual == "verb").unwrap();
        let crates: Vec<&str> = g.calls[verb]
            .iter()
            .map(|&(t, _)| g.nodes[t as usize].crate_name.as_str())
            .collect();
        assert_eq!(crates, vec!["core", "ml"]);
    }

    #[test]
    fn dyn_method_calls_over_approximate_to_every_impl() {
        let ws = fixture_ws(&[
            (
                "platforms",
                "pub trait Backend {\n    fn execute(&self);\n}\nimpl Backend for Simulator {\n    fn execute(&self) {}\n}\n",
            ),
            (
                "engine",
                "impl Backend for Engine {\n    fn execute(&self) {}\n}\n",
            ),
            (
                "robopt",
                "pub fn run(b: &dyn Backend) {\n    b.execute();\n}\n",
            ),
        ]);
        let g = build(&ws);
        let targets = edge_names(&g, "run");
        // Trait declaration + both impls: the &dyn seam stays sound.
        assert_eq!(targets.len(), 3, "{targets:?}");
        assert!(targets.iter().all(|t| t == "Backend::execute"
            || t == "Simulator::execute"
            || t == "Engine::execute"));
    }

    #[test]
    fn method_vs_free_fn_disambiguation() {
        // A method call must NOT resolve to a free fn of the same name,
        // and a bare call must NOT resolve to a method.
        let ws = fixture_ws(&[(
            "core",
            "fn merge() {}\nimpl Unit {\n    fn merge(&self) {}\n}\npub fn by_method(u: &Unit) { u.merge(); }\npub fn by_free() { merge(); }\n",
        )]);
        let g = build(&ws);
        assert_eq!(edge_names(&g, "by_method"), vec!["Unit::merge"]);
        assert_eq!(edge_names(&g, "by_free"), vec!["merge"]);
    }

    #[test]
    fn typed_path_calls_pick_the_right_impl() {
        let ws = fixture_ws(&[
            (
                "ml",
                "impl Forest {\n    pub fn fit() {}\n}\nimpl Linear {\n    pub fn fit() {}\n}\n",
            ),
            (
                "robopt",
                "pub fn train() {\n    robopt_ml::Forest::fit();\n}\n",
            ),
        ]);
        let g = build(&ws);
        assert_eq!(edge_names(&g, "train"), vec!["Forest::fit"]);
    }

    #[test]
    fn recursive_fns_terminate_and_self_calls_resolve() {
        let ws = fixture_ws(&[(
            "core",
            "impl Finder {\n    fn find(&self, x: u32) -> u32 {\n        if x == 0 { return 0; }\n        Self::helper(x);\n        self.find(x - 1)\n    }\n    fn helper(_x: u32) {}\n}\n",
        )]);
        let g = build(&ws);
        let targets = edge_names(&g, "Finder::find");
        assert!(targets.contains(&"Finder::helper".to_string()));
        assert!(targets.contains(&"Finder::find".to_string()), "cycle edge");
        // The reverse adjacency contains the self-loop exactly once.
        let id = g
            .nodes
            .iter()
            .position(|n| n.qual == "Finder::find")
            .unwrap();
        assert_eq!(g.callers[id].iter().filter(|&&c| c == id as u32).count(), 1);
    }

    #[test]
    fn std_calls_are_external_and_ctors_are_skipped() {
        let ws = fixture_ws(&[(
            "core",
            "pub fn f() -> u64 {\n    let v = Vec::new();\n    std::mem::take(&mut 3u64);\n    Some(v.len() as u64).unwrap_or(0)\n}\n",
        )]);
        let g = build(&ws);
        assert!(edge_names(&g, "f").is_empty());
        assert!(g.external_calls >= 1);
    }

    #[test]
    fn fn_references_in_argument_position_are_edges() {
        let ws = fixture_ws(&[(
            "engine",
            "impl Rec {\n    fn cmp_key(&self) {}\n}\npub fn sorter(v: &mut Vec<Rec>) {\n    v.sort_by(Rec::cmp_key);\n}\n",
        )]);
        let g = build(&ws);
        assert_eq!(edge_names(&g, "sorter"), vec!["Rec::cmp_key"]);
    }
}
