//! The `robopt-lint` binary: lint the workspace, print rustc-style
//! diagnostics, optionally write the JSON report, exit nonzero on any
//! violation.
//!
//! ```text
//! robopt-lint [--root <path>] [--fix-report[=<path>]] [--list-rules]
//! ```
//!
//! `--fix-report` without a path writes to
//! `<root>/EXPERIMENTS_OUTPUT/lint_report.json` (the artifact CI uploads).

use std::path::PathBuf;
use std::process::ExitCode;

use robopt_lint::{callgraph, run_lint_graph, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("robopt-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--fix-report" => {
                report_path = Some(root.join("EXPERIMENTS_OUTPUT").join("lint_report.json"));
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<18} {}", r.id, r.guards);
                }
                return ExitCode::SUCCESS;
            }
            other => {
                match other.strip_prefix("--fix-report=") {
                    Some(p) => report_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("robopt-lint: unknown argument `{other}`");
                        eprintln!("usage: robopt-lint [--root <path>] [--fix-report[=<path>]] [--list-rules]");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }

    let (outcome, graph) = match run_lint_graph(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    for d in &outcome.violations {
        println!("{d}");
    }
    if let Some(path) = report_path {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("robopt-lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, outcome.to_json()) {
            eprintln!("robopt-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("robopt-lint: report written to {}", path.display());
        // The call graph goes next to the report as its own artifact.
        let graph_path = path.with_file_name("lint_callgraph.json");
        let graph_json = callgraph::to_json(&graph, &outcome.graph);
        if let Err(e) = std::fs::write(&graph_path, graph_json) {
            eprintln!("robopt-lint: cannot write {}: {e}", graph_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "robopt-lint: call graph written to {}",
            graph_path.display()
        );
    }
    eprintln!(
        "robopt-lint: {} file(s), {} fn(s) in {} crate(s), {} call edge(s), \
         {} violation(s), {} justified suppression(s)",
        outcome.files_scanned,
        outcome.graph.functions,
        outcome.graph.crates,
        outcome.graph.edges,
        outcome.violations.len(),
        outcome.allowed.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
