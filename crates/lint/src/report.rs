//! Diagnostics, suppressions, and report rendering.
//!
//! Text output is rustc-style `file:line: rule-id: message`, one per line,
//! sorted by `(file, line, rule)` so runs are byte-identical. The JSON
//! report (`--fix-report`) is hand-rendered — the workspace is
//! dependency-free, so no serde.

use std::fmt;

use crate::callgraph::GraphSummary;

/// A rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `panic-unwrap`.
    pub rule: &'static str,
    pub message: String,
    /// Interprocedural rules attach the call chain from the reported
    /// surface fn down to the source (`serve → optimize → merge → v[0]`);
    /// empty for line-level rules.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// A line-level diagnostic (no witness path).
    pub fn new(file: String, line: usize, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file,
            line,
            rule,
            message,
            witness: Vec::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A violation suppressed by a `// lint:allow(<rule>) <justification>`
/// comment; kept in the report so justifications stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub justification: String,
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct LintOutcome {
    pub violations: Vec<Diagnostic>,
    pub allowed: Vec<Suppression>,
    pub files_scanned: usize,
    /// Call-graph statistics from the interprocedural passes.
    pub graph: GraphSummary,
}

impl LintOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical ordering: `(file, line, rule)`.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allowed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Render the machine-readable report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        s.push_str(&format!(
            "  \"suppression_count\": {},\n",
            self.allowed.len()
        ));
        let g = &self.graph;
        s.push_str(&format!(
            "  \"graph\": {{\"functions\": {}, \"edges\": {}, \"crates\": {}, \
             \"resolved_calls\": {}, \"unresolved_calls\": {}, \"external_calls\": {}, \
             \"deterministic_roots\": {}, \"no_panic_roots\": {}}},\n",
            g.functions,
            g.edges,
            g.crates,
            g.resolved_calls,
            g.unresolved_calls,
            g.external_calls,
            g.deterministic_roots,
            g.no_panic_roots
        ));
        s.push_str("  \"violations\": [\n");
        for (i, d) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            let witness = d
                .witness
                .iter()
                .map(|w| json_str(w))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"witness\": [{}]}}{}\n",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                witness,
                comma
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"allowed\": [\n");
        for (i, a) in self.allowed.iter().enumerate() {
            let comma = if i + 1 < self.allowed.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}{}\n",
                json_str(&a.file),
                a.line,
                json_str(a.rule),
                json_str(&a.justification),
                comma
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escape `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint infrastructure failure (unreadable file, missing directory) —
/// distinct from rule violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    pub message: String,
}

impl LintError {
    pub fn new(message: String) -> Self {
        LintError { message }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "robopt-lint: {}", self.message)
    }
}

impl std::error::Error for LintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let mut out = LintOutcome {
            violations: vec![Diagnostic {
                file: "a\\b.rs".to_string(),
                line: 3,
                rule: "panic-unwrap",
                message: "say \"no\"".to_string(),
                witness: vec!["serve".to_string(), "helper".to_string()],
            }],
            allowed: Vec::new(),
            files_scanned: 2,
            graph: GraphSummary::default(),
        };
        out.sort();
        let j = out.to_json();
        assert!(j.contains("\"a\\\\b.rs\""));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"suppression_count\": 0"));
        assert!(j.contains("\"witness\": [\"serve\", \"helper\"]"));
        assert!(j.contains("\"graph\": {\"functions\": 0"));
    }

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic::new(
            "crates/core/src/enumerate.rs".to_string(),
            12,
            "hash-container",
            "m".to_string(),
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/enumerate.rs:12: hash-container: m"
        );
    }
}
