//! The two interprocedural passes over the call graph: determinism taint
//! (rule 17, `determinism-taint`) and panic reachability (rule 18,
//! `panic-reachability`).
//!
//! Both are the same fixed point: *seed* with source functions — fns
//! whose bodies textually contain a nondeterminism source (wall-clock
//! reads, std hash containers, `available_parallelism`, env/IO) or a
//! panic site (`unwrap`/`expect`/panic-family macros/literal indexing) —
//! then *propagate* along reverse call edges until nothing changes, and
//! *report* every fn on the declared surface that the taint reached.
//!
//! The declared surface is marked in source:
//!
//! ```text
//! // lint:surface(deterministic)        — bit-identical seeded output
//! // lint:surface(no-panic)             — must degrade, never abort
//! // lint:surface(deterministic, no-panic)
//! ```
//!
//! on the fn signature line or the line immediately preceding it.
//!
//! Suppression is *source-level*, matching the issue's contract: a
//! justified `lint:allow` at the source line (or its enclosing fn
//! signature) removes the seed. Determinism sources accept the allow ids
//! `determinism-taint`, `wall-clock`, `hash-container` — the existing
//! line-rule justifications keep working so the clock shims need no
//! second comment. Panic sources accept `panic-reachability` plus the
//! four line-rule ids. Only the pass's *own* id records a new audited
//! [`Suppression`] (other ids are already recorded by their line rule).
//!
//! `assert!`/`debug_assert!` are deliberately not panic sources: the
//! workspace uses them as documented contract checks (DESIGN §10), and
//! flagging them would force justifying every invariant twice.
//!
//! Known under-approximation, accepted and documented: a *bare*
//! single-identifier fn reference (`map(helper)` without parens) is not
//! an edge — resolving every bare identifier against the fn table would
//! flood the graph with locals. Multi-segment references
//! (`sort_by(f64::total_cmp)`) are edges.

use crate::callgraph::CallGraph;
use crate::lexer::find_word;
use crate::report::{Diagnostic, LintOutcome, Suppression};
use crate::rules::{allow_justification, has_literal_index};
use crate::workspace::{SourceFile, Workspace};

const SENTINEL: u32 = u32::MAX;

/// One interprocedural pass's identity.
struct Pass {
    rule: &'static str,
    /// Allow ids accepted as a source-level justification.
    allow_ids: &'static [&'static str],
    surface: &'static str,
    what: &'static str,
}

const DETERMINISM: Pass = Pass {
    rule: "determinism-taint",
    allow_ids: &["determinism-taint", "wall-clock", "hash-container"],
    surface: "deterministic",
    what: "nondeterminism source",
};

const PANIC: Pass = Pass {
    rule: "panic-reachability",
    allow_ids: &[
        "panic-reachability",
        "panic-unwrap",
        "panic-expect",
        "panic-macro",
        "index-literal",
    ],
    surface: "no-panic",
    what: "panic site",
};

/// Substring tokens whose presence makes a line a determinism source.
const DET_SUBSTRINGS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "std::time",
    "thread::current",
    "available_parallelism",
    "env::var",
    "env::args",
    "env::vars",
    "fs::read",
    "read_to_string",
    "read_dir",
    "File::open",
    "File::create",
];

/// Identifier tokens (word-boundary matched) that are determinism sources.
const DET_WORDS: &[&str] = &["HashMap", "HashSet", "RandomState", "stdin"];

fn determinism_source(code: &str) -> Option<&'static str> {
    for t in DET_SUBSTRINGS {
        if code.contains(t) {
            return Some(t);
        }
    }
    DET_WORDS
        .iter()
        .find(|w| !find_word(code, w).is_empty())
        .copied()
}

fn panic_source(code: &str) -> Option<&'static str> {
    if code.contains(".unwrap()") {
        return Some(".unwrap()");
    }
    if code.contains(".expect(") {
        return Some(".expect()");
    }
    for (mac, label) in [
        ("panic", "panic!"),
        ("unreachable", "unreachable!"),
        ("todo", "todo!"),
        ("unimplemented", "unimplemented!"),
    ] {
        let fires = find_word(code, mac).into_iter().any(|at| {
            code.get(at + mac.len()..)
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c == '!')
        });
        if fires {
            return Some(label);
        }
    }
    if has_literal_index(code) {
        return Some("literal index");
    }
    None
}

/// A seeded source: node + the line and token that made it one.
struct SourceHit {
    node: u32,
    line: usize,
    token: &'static str,
}

/// Does `file` line `li` (or its enclosing fn signature) carry a justified
/// allow for any of the pass's accepted ids? Returns the matching id.
fn source_justified(pass: &Pass, file: &SourceFile, li: usize) -> Option<&'static str> {
    pass.allow_ids
        .iter()
        .find(|id| allow_justification(file, li, id).is_some())
        .copied()
}

/// Surface markers on the fn signature line or the line before it.
fn surface_marks(file: &SourceFile, sig_line: usize) -> (bool, bool) {
    let mut deterministic = false;
    let mut no_panic = false;
    for cand in [Some(sig_line), sig_line.checked_sub(1)]
        .into_iter()
        .flatten()
    {
        let comment = file
            .lines
            .get(cand)
            .map(|l| l.comment.as_str())
            .unwrap_or("");
        let Some(at) = comment.find("lint:surface(") else {
            continue;
        };
        let inner = comment
            .get(at + "lint:surface(".len()..)
            .and_then(|s| s.split(')').next())
            .unwrap_or("");
        for item in inner.split(',') {
            match item.trim() {
                "deterministic" => deterministic = true,
                "no-panic" => no_panic = true,
                _ => {}
            }
        }
    }
    (deterministic, no_panic)
}

/// Collect the pass's seeds; justified sources are dropped (and recorded
/// as suppressions when justified under the pass's own id).
fn collect_sources(
    pass: &Pass,
    ws: &Workspace,
    graph: &CallGraph,
    detect: fn(&str) -> Option<&'static str>,
    out: &mut LintOutcome,
) -> Vec<SourceHit> {
    let mut hits = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let Some((bl, el)) = node.body else { continue };
        let Some(file) = ws.sources.get(node.file_idx) else {
            continue;
        };
        for li in bl..=el.min(file.lines.len().saturating_sub(1)) {
            if file.test_mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            let code = file.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
            let code = if li == bl {
                code.get(node.body_open_col..).unwrap_or("")
            } else {
                code
            };
            let Some(token) = detect(code) else { continue };
            match source_justified(pass, file, li) {
                Some(id_matched) => {
                    if id_matched == pass.rule {
                        // Line rules never see this id; audit it here.
                        if let Some(justification) = allow_justification(file, li, pass.rule) {
                            out.allowed.push(Suppression {
                                file: file.rel.clone(),
                                line: li + 1,
                                rule: pass.rule,
                                justification,
                            });
                        }
                    }
                }
                None => hits.push(SourceHit {
                    node: id as u32,
                    line: li,
                    token,
                }),
            }
        }
    }
    hits
}

/// Run one pass: seed, propagate up the reverse edges, report tainted
/// surface roots with their witness path. Returns the root count.
fn run_pass(pass: &Pass, ws: &Workspace, graph: &CallGraph, out: &mut LintOutcome) -> usize {
    let detect = if pass.rule == DETERMINISM.rule {
        determinism_source as fn(&str) -> Option<&'static str>
    } else {
        panic_source as fn(&str) -> Option<&'static str>
    };
    let hits = collect_sources(pass, ws, graph, detect, out);

    // BFS from all seeds at once: `via[f]` is the callee through which the
    // nearest source reaches `f`, plus the index of that source hit.
    let n = graph.nodes.len();
    let mut via: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut queue: Vec<u32> = Vec::new();
    for (hi, h) in hits.iter().enumerate() {
        if via[h.node as usize].is_none() {
            via[h.node as usize] = Some((SENTINEL, hi as u32));
            queue.push(h.node);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for &caller in &graph.callers[cur as usize] {
            if graph.nodes[caller as usize].in_test {
                continue;
            }
            if via[caller as usize].is_none() {
                via[caller as usize] = Some((cur, via[cur as usize].map(|(_, h)| h).unwrap_or(0)));
                queue.push(caller);
            }
        }
    }

    // Report every tainted surface root.
    let mut roots = 0usize;
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test {
            continue;
        }
        let Some(file) = ws.sources.get(node.file_idx) else {
            continue;
        };
        let (det, np) = surface_marks(file, node.sig_line);
        let on_surface = if pass.rule == DETERMINISM.rule {
            det
        } else {
            np
        };
        if !on_surface {
            continue;
        }
        roots += 1;
        let Some((_, hit_idx)) = via[id] else {
            continue;
        };
        let hit = &hits[hit_idx as usize];
        let src_node = &graph.nodes[hit.node as usize];
        // Witness: root → … → source fn, then the source line itself.
        let mut witness: Vec<String> = vec![node.qual.clone()];
        let mut cur = id as u32;
        while let Some((next, _)) = via[cur as usize] {
            if next == SENTINEL {
                break;
            }
            witness.push(graph.nodes[next as usize].qual.clone());
            cur = next;
        }
        witness.push(format!(
            "{} ({}:{})",
            hit.token,
            src_node.file,
            hit.line + 1
        ));
        let message = format!(
            "`{}` is on the declared {} surface but transitively reaches the {} \
             `{}` in `{}` ({}:{}); justify it with a source-level lint:allow({}) \
             or break the call chain — witness: {}",
            node.qual,
            pass.surface,
            pass.what,
            hit.token,
            src_node.qual,
            src_node.file,
            hit.line + 1,
            pass.rule,
            witness.join(" → ")
        );
        match allow_justification(file, node.sig_line, pass.rule) {
            Some(justification) => out.allowed.push(Suppression {
                file: file.rel.clone(),
                line: node.sig_line + 1,
                rule: pass.rule,
                justification,
            }),
            None => out.violations.push(Diagnostic {
                file: file.rel.clone(),
                line: node.sig_line + 1,
                rule: pass.rule,
                message,
                witness,
            }),
        }
    }
    roots
}

/// Run both passes; returns `(deterministic roots, no-panic roots)`.
pub(crate) fn run(ws: &Workspace, graph: &CallGraph, out: &mut LintOutcome) -> (usize, usize) {
    let det = run_pass(&DETERMINISM, ws, graph, out);
    let np = run_pass(&PANIC, ws, graph, out);
    (det, np)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{build, fixture_ws};

    fn taint(files: &[(&str, &str)]) -> LintOutcome {
        let ws = fixture_ws(files);
        let graph = build(&ws);
        let mut out = LintOutcome::default();
        run(&ws, &graph, &mut out);
        out.sort();
        out
    }

    #[test]
    fn nondeterministic_helper_two_calls_deep_is_flagged_with_witness() {
        let src = "// lint:surface(deterministic)\n\
                   pub fn entry() -> usize {\n    mid()\n}\n\
                   fn mid() -> usize {\n    leaf()\n}\n\
                   fn leaf() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n";
        let out = taint(&[("core", src)]);
        let det: Vec<_> = out
            .violations
            .iter()
            .filter(|d| d.rule == "determinism-taint")
            .collect();
        assert_eq!(det.len(), 1, "{:?}", out.violations);
        let d = det[0];
        assert_eq!(d.line, 2, "reported at the surface fn's signature");
        assert_eq!(d.witness.len(), 4, "{:?}", d.witness);
        assert_eq!(d.witness[0], "entry");
        assert_eq!(d.witness[1], "mid");
        assert_eq!(d.witness[2], "leaf");
        assert!(d.witness[3].contains("available_parallelism"));
        assert!(d.message.contains("entry → mid → leaf"));
    }

    #[test]
    fn justified_allow_at_the_source_clears_the_chain() {
        let src = "// lint:surface(deterministic)\n\
                   pub fn entry() -> usize {\n    mid()\n}\n\
                   fn mid() -> usize {\n    leaf()\n}\n\
                   // lint:allow(determinism-taint) worker count never affects result bytes\n\
                   fn leaf() -> usize {\n    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n}\n";
        let out = taint(&[("core", src)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.allowed.len(), 1, "audited under the pass's own id");
        assert_eq!(out.allowed[0].rule, "determinism-taint");
    }

    #[test]
    fn wall_clock_justification_also_clears_determinism_taint() {
        // The engine's clock shims are justified with lint:allow(wall-clock)
        // — the taint pass accepts that id and records nothing new (the
        // line rule already audits it).
        let src = "// lint:surface(deterministic)\n\
                   pub fn run() -> u64 {\n    shim()\n}\n\
                   // lint:allow(wall-clock) timing shim, measured not returned\n\
                   fn shim() -> u64 {\n    clock_instant_nanos()\n}\n";
        // The shim body itself must contain a source token for the test:
        let src = src.replace("clock_instant_nanos()", "std::time::now_nanos()");
        let out = taint(&[("engine", src.as_str())]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.allowed.is_empty(), "no double-audit");
    }

    #[test]
    fn panic_chain_reaches_the_no_panic_surface() {
        let src = "// lint:surface(no-panic)\n\
                   pub fn svc(x: Option<u32>) -> u32 {\n    step_a(x)\n}\n\
                   fn step_a(x: Option<u32>) -> u32 {\n    step_b(x)\n}\n\
                   fn step_b(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let out = taint(&[("robopt", src)]);
        let np: Vec<_> = out
            .violations
            .iter()
            .filter(|d| d.rule == "panic-reachability")
            .collect();
        assert_eq!(np.len(), 1, "{:?}", out.violations);
        assert_eq!(np[0].witness.len(), 4);
        assert!(np[0].witness[3].contains(".unwrap()"));

        // A line-rule allow at the source clears rule 18 too.
        let allowed = src.replace(
            "fn step_b(x: Option<u32>) -> u32 {",
            "// lint:allow(panic-unwrap) fixture: caller always passes Some\nfn step_b(x: Option<u32>) -> u32 {",
        );
        let out = taint(&[("robopt", allowed.as_str())]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn taint_flows_through_dyn_method_over_approximation() {
        let files = [
            (
                "platforms",
                "pub trait Backend {\n    fn execute(&self) -> u64;\n}\n",
            ),
            (
                "engine",
                "impl Backend for Engine {\n    fn execute(&self) -> u64 {\n        std::time::now_nanos()\n    }\n}\n",
            ),
            (
                "robopt",
                "// lint:surface(deterministic)\npub fn serve(b: &dyn Backend) -> u64 {\n    b.execute()\n}\n",
            ),
        ];
        let out = taint(&files);
        let det: Vec<_> = out
            .violations
            .iter()
            .filter(|d| d.rule == "determinism-taint")
            .collect();
        assert_eq!(det.len(), 1, "{:?}", out.violations);
        assert!(det[0].message.contains("Engine::execute"));
    }

    #[test]
    fn test_fns_neither_seed_nor_propagate() {
        let src = "// lint:surface(deterministic)\n\
                   pub fn entry() -> usize {\n    7\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() -> usize {\n        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)\n    }\n}\n";
        let out = taint(&[("core", src)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn surface_comma_list_marks_both_passes() {
        let src = "// lint:surface(deterministic, no-panic)\n\
                   pub fn verb(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let ws = fixture_ws(&[("robopt", src)]);
        let graph = build(&ws);
        let mut out = LintOutcome::default();
        let (det, np) = run(&ws, &graph, &mut out);
        assert_eq!((det, np), (1, 1));
        // The fn is its own panic source: a one-hop witness.
        let np_viol = out
            .violations
            .iter()
            .find(|d| d.rule == "panic-reachability")
            .expect("panic-reachability fires");
        assert_eq!(np_viol.witness.len(), 2);
    }
}
