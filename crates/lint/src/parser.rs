//! A lightweight Rust *item* parser on top of the line lexer.
//!
//! [`crate::lexer::scan`] gives every rule comment-free, literal-blanked
//! code text; this module recovers the item structure the interprocedural
//! passes need: `fn` items (free functions, inherent and trait-impl
//! methods, trait declarations with default bodies), the `impl` / `trait`
//! blocks that scope them, and `use` declarations (including groups,
//! renames and globs) so cross-crate calls can be path-resolved.
//!
//! It is deliberately *not* a full Rust parser. The workspace is
//! rustfmt-formatted, which the parser leans on in exactly two places:
//! `impl` and `trait` headers start their line (so `-> impl Iterator`
//! return types are never mistaken for blocks), and a `fn` signature never
//! shares its line with an unrelated earlier `{`. Everything else —
//! multi-line signatures, where-clauses, nested modules, `#[cfg(test)]`
//! items — is handled structurally via brace matching.

use crate::lexer::{find_word, LineScan};
use crate::workspace::{find_code_char, match_brace};

/// One `use` binding: the in-scope name and the full path it stands for.
/// Glob imports bind the special alias `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// Name the binding introduces (`alias` in `use a::b as alias`; the
    /// last path segment otherwise; `*` for globs).
    pub alias: String,
    /// Full path segments, e.g. `["robopt_core", "enumerate", "EnumOptions"]`.
    pub path: Vec<String>,
}

/// One `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    /// The `impl`/`trait` type this fn is a method of (`Engine` for
    /// `impl ExecutionBackend for Engine`); `None` for free functions.
    pub self_ty: Option<String>,
    /// Trait name when the enclosing block is `impl Trait for Type` or a
    /// `trait Trait { … }` declaration.
    pub trait_name: Option<String>,
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// `(open-brace line, close-brace line)`; `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// Column of the opening brace on its line (calls are scanned from
    /// there, so sibling signature text is never misread as body code).
    pub body_open_col: usize,
    /// The fn sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Everything parsed out of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseBinding>,
}

/// An `impl`/`trait` block span scoping the methods inside it.
#[derive(Debug, Clone)]
struct ContainerSpan {
    start: usize,
    end: usize,
    self_ty: String,
    trait_name: Option<String>,
}

/// Last path segment of a type expression, generics/refs stripped:
/// `&'a mut Engine<'a>` → `Engine`, `fmt::Display` → `Display`.
fn last_type_segment(expr: &str) -> String {
    let mut cleaned = String::new();
    let mut depth = 0i32;
    for c in expr.chars() {
        match c {
            '<' => depth += 1,
            '>' => depth -= 1,
            _ if depth == 0 => cleaned.push(c),
            _ => {}
        }
    }
    cleaned
        .split("::")
        .last()
        .unwrap_or("")
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// First `{` or `;` at *bracket depth zero* from `(li, ci)` — the char
/// that ends an item header. Semicolons inside `(...)` / `[...]` (array
/// types like `[f64; N]` in parameters or return position) are part of the
/// signature, not a bodyless-declaration terminator.
fn find_header_end(lines: &[LineScan], li: usize, ci: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut cur = (li, ci);
    loop {
        let (bl, bc) = find_code_char(lines, cur.0, cur.1, |c| {
            matches!(c, '{' | ';' | '(' | ')' | '[' | ']')
        })?;
        let c = lines
            .get(bl)
            .and_then(|l| l.code.get(bc..))
            .and_then(|s| s.chars().next())?;
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            _ if depth == 0 => return Some((bl, bc)),
            _ => {}
        }
        cur = (bl, bc + 1);
    }
}

/// Parse the `impl`/`trait` container blocks of a file.
fn parse_containers(lines: &[LineScan]) -> Vec<ContainerSpan> {
    let mut out = Vec::new();
    for li in 0..lines.len() {
        let code = lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        let trimmed = code.trim_start();
        let (kw, is_trait) = if trimmed.starts_with("impl") {
            ("impl", false)
        } else if trimmed.starts_with("trait ")
            || trimmed.starts_with("pub trait ")
            || trimmed.starts_with("pub(crate) trait ")
        {
            ("trait", true)
        } else {
            continue;
        };
        // `impl` must be the keyword, not a prefix of an identifier.
        let kw_at = match code.find(kw) {
            Some(at) => at,
            None => continue,
        };
        let after = code
            .get(kw_at + kw.len()..)
            .and_then(|s| s.chars().next())
            .unwrap_or(' ');
        if after.is_alphanumeric() || after == '_' {
            continue;
        }
        let Some((bl, bc)) = find_header_end(lines, li, kw_at) else {
            continue;
        };
        let opens = lines
            .get(bl)
            .and_then(|l| l.code.get(bc..))
            .and_then(|s| s.chars().next())
            == Some('{');
        if !opens {
            continue; // `trait Marker: Base;`-style item, no methods
        }
        let end = match_brace(lines, bl, bc).unwrap_or(bl);
        // Header text between the keyword and the opening brace.
        let mut header = String::new();
        for (i, l) in lines.iter().enumerate().take(bl + 1).skip(li) {
            let s = l.code.as_str();
            let lo = if i == li { kw_at + kw.len() } else { 0 };
            let hi = if i == bl { bc } else { s.len() };
            header.push_str(s.get(lo..hi).unwrap_or(""));
            header.push(' ');
        }
        // Drop leading generic parameters `<…>` of the impl itself.
        let header = header.trim_start();
        let header = if header.starts_with('<') {
            let mut depth = 0i32;
            let mut cut = header.len();
            for (at, c) in header.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = at + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            header.get(cut..).unwrap_or("")
        } else {
            header
        };
        let (self_ty, trait_name) = if is_trait {
            (last_type_segment(header), None)
        } else {
            match split_on_for(header) {
                Some((trait_part, type_part)) => (
                    last_type_segment(type_part),
                    Some(last_type_segment(trait_part)),
                ),
                None => (last_type_segment(header), None),
            }
        };
        if self_ty.is_empty() {
            continue;
        }
        out.push(ContainerSpan {
            start: li,
            end,
            self_ty,
            trait_name,
        });
    }
    out
}

/// Split an impl header on the ` for ` keyword (word-boundary, outside
/// generics) into `(trait, type)`.
fn split_on_for(header: &str) -> Option<(&str, &str)> {
    let bytes = header.as_bytes();
    for at in find_word(header, "for") {
        // Recompute the generic depth up to this occurrence.
        let mut depth = 0i32;
        for &b in bytes.get(..at).unwrap_or(&[]) {
            match b {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 {
            return Some((
                header.get(..at).unwrap_or(""),
                header.get(at + 3..).unwrap_or(""),
            ));
        }
    }
    None
}

/// Parse the `use` declarations of a file into flat alias bindings.
fn parse_uses(lines: &[LineScan]) -> Vec<UseBinding> {
    let mut out = Vec::new();
    for li in 0..lines.len() {
        let code = lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        let trimmed = code.trim_start();
        let rest = trimmed
            .strip_prefix("pub use ")
            .or_else(|| trimmed.strip_prefix("pub(crate) use "))
            .or_else(|| trimmed.strip_prefix("use "));
        let Some(rest) = rest else { continue };
        // Gather the declaration text up to its terminating `;`.
        let mut decl = String::new();
        let mut done = false;
        decl.push_str(rest);
        if let Some(p) = decl.find(';') {
            decl.truncate(p);
            done = true;
        }
        let mut nl = li + 1;
        while !done && nl < lines.len() {
            let c = lines.get(nl).map(|l| l.code.as_str()).unwrap_or("");
            match c.find(';') {
                Some(p) => {
                    decl.push_str(c.get(..p).unwrap_or(""));
                    done = true;
                }
                None => decl.push_str(c),
            }
            nl += 1;
        }
        flatten_use_tree(&decl, &mut Vec::new(), &mut out);
    }
    out
}

/// Recursively flatten a use-tree (`a::{b, c::d as e, f::*}`) into
/// bindings under `prefix`.
fn flatten_use_tree(tree: &str, prefix: &mut Vec<String>, out: &mut Vec<UseBinding>) {
    let tree = tree.trim();
    if tree.is_empty() {
        return;
    }
    // Split `head::{group}` / `head::tail` / leaf.
    if let Some(brace) = tree.find('{') {
        // Everything before the brace is path segments ending with `::`.
        let head = tree
            .get(..brace)
            .unwrap_or("")
            .trim()
            .trim_end_matches("::");
        let depth_added: Vec<String> = head
            .split("::")
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().to_string())
            .collect();
        prefix.extend(depth_added.iter().cloned());
        let inner = tree
            .get(brace + 1..)
            .unwrap_or("")
            .trim_end()
            .trim_end_matches('}');
        for part in split_top_level(inner) {
            flatten_use_tree(&part, prefix, out);
        }
        prefix.truncate(prefix.len() - depth_added.len());
        return;
    }
    // Leaf: `a::b::c [as alias]` or glob `a::b::*`.
    let (path_text, alias) = match find_word(tree, "as").first() {
        Some(&at) => (
            tree.get(..at).unwrap_or("").trim(),
            Some(tree.get(at + 2..).unwrap_or("").trim().to_string()),
        ),
        None => (tree, None),
    };
    let mut path: Vec<String> = prefix.clone();
    for seg in path_text.split("::") {
        let seg = seg.trim();
        if !seg.is_empty() {
            path.push(seg.to_string());
        }
    }
    if path.is_empty() {
        return;
    }
    let alias = alias.unwrap_or_else(|| path.last().cloned().unwrap_or_default());
    out.push(UseBinding { alias, path });
}

/// Split a use-group body on top-level commas (nested `{}` kept intact).
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

/// Parse one lexed file into its items.
pub fn parse_file(lines: &[LineScan], test_mask: &[bool]) -> FileItems {
    let containers = parse_containers(lines);
    let mut fns = Vec::new();
    for li in 0..lines.len() {
        let code = lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        for at in find_word(code, "fn") {
            // Name: the identifier after `fn` (skipping whitespace). `fn(`
            // pointer types and `Fn` bounds produce no name and are skipped.
            let after = code.get(at + 2..).unwrap_or("");
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect();
            if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            let is_pub = !find_word(code.get(..at).unwrap_or(""), "pub").is_empty();
            let (body, body_open_col) = match find_header_end(lines, li, at) {
                Some((bl, bc)) => {
                    let opens = lines
                        .get(bl)
                        .and_then(|l| l.code.get(bc..))
                        .and_then(|s| s.chars().next())
                        == Some('{');
                    if opens {
                        let end = match_brace(lines, bl, bc).unwrap_or(bl);
                        (Some((bl, end)), bc)
                    } else {
                        (None, 0)
                    }
                }
                None => (None, 0),
            };
            // Innermost container whose span covers the signature line.
            let container = containers
                .iter()
                .filter(|c| c.start <= li && li <= c.end)
                .min_by_key(|c| c.end - c.start);
            fns.push(FnItem {
                name,
                self_ty: container.map(|c| c.self_ty.clone()),
                trait_name: container.and_then(|c| c.trait_name.clone()),
                is_pub,
                sig_line: li,
                body,
                body_open_col,
                in_test: test_mask.get(li).copied().unwrap_or(false),
            });
        }
    }
    FileItems {
        fns,
        uses: parse_uses(lines),
    }
}

/// Map every line to the signature line of its innermost enclosing fn
/// (used for whole-function `lint:allow` placement).
pub fn enclosing_fn_sig(items: &FileItems, n_lines: usize) -> Vec<Option<usize>> {
    let mut sig: Vec<Option<usize>> = vec![None; n_lines];
    let mut span: Vec<usize> = vec![usize::MAX; n_lines];
    for f in &items.fns {
        let Some((_, end)) = f.body else { continue };
        let width = end.saturating_sub(f.sig_line);
        for li in f.sig_line..=end.min(n_lines.saturating_sub(1)) {
            if width < span[li] {
                span[li] = width;
                sig[li] = Some(f.sig_line);
            }
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::workspace::compute_test_mask;

    fn parse(src: &str) -> FileItems {
        let lines = scan(src);
        let mask = compute_test_mask(&lines);
        parse_file(&lines, &mask)
    }

    #[test]
    fn free_fns_and_methods_are_distinguished() {
        let src = "pub fn free(x: u32) -> u32 { x }\n\
                   impl Engine {\n    pub fn start(&self) {}\n    fn stop(&self) {}\n}\n\
                   impl fmt::Display for Engine {\n    fn fmt(&self) {}\n}\n";
        let items = parse(src);
        let names: Vec<(&str, Option<&str>, Option<&str>)> = items
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.self_ty.as_deref(),
                    f.trait_name.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, None),
                ("start", Some("Engine"), None),
                ("stop", Some("Engine"), None),
                ("fmt", Some("Engine"), Some("Display")),
            ]
        );
        assert!(items.fns[0].is_pub && items.fns[1].is_pub && !items.fns[2].is_pub);
    }

    #[test]
    fn trait_decls_carry_the_trait_as_self_ty() {
        let src = "pub trait Backend {\n    fn execute(&self);\n    fn execute_raw(&self) {\n        self.execute()\n    }\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("Backend"));
        assert!(items.fns[0].body.is_none(), "bodyless declaration");
        assert_eq!(items.fns[1].body, Some((2, 4)));
    }

    #[test]
    fn impl_generics_and_return_position_impl_are_not_blocks() {
        let src = "impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) {}\n}\n\
                   fn make() -> impl Iterator<Item = u32> {\n    (0..3).map(|x| x)\n}\n";
        let items = parse(src);
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("Holder"));
        // `make` is a free fn: `-> impl Iterator` must not open a container.
        assert_eq!(items.fns[1].self_ty, None);
    }

    #[test]
    fn array_types_in_signatures_do_not_end_the_header() {
        // The `;` inside `[f64; 6]` (param or return position) is part of
        // the signature — the fn still has a body.
        let src = "fn coeffs(xs: &[f64], ys: [f64; 6]) -> [f64; 6] {\n    ys\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].body, Some((0, 2)));
    }

    #[test]
    fn multiline_signatures_and_bodies_resolve() {
        let src = "pub fn long(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a + b\n}\n";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].sig_line, 0);
        assert_eq!(items.fns[0].body, Some((3, 5)));
    }

    #[test]
    fn use_groups_renames_and_globs_flatten() {
        let src = "use robopt_core::{enumerate::{EnumOptions, Enumerator as En}, split_plan};\nuse robopt_ml::metrics::*;\n";
        let items = parse(src);
        let find = |alias: &str| {
            items
                .uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(
            find("EnumOptions").as_deref(),
            Some("robopt_core::enumerate::EnumOptions")
        );
        assert_eq!(
            find("En").as_deref(),
            Some("robopt_core::enumerate::Enumerator")
        );
        assert_eq!(
            find("split_plan").as_deref(),
            Some("robopt_core::split_plan")
        );
        assert_eq!(find("*").as_deref(), Some("robopt_ml::metrics::*"));
    }

    #[test]
    fn test_mask_marks_fns_in_cfg_test() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let items = parse(src);
        assert!(!items.fns[0].in_test);
        assert!(items.fns[1].in_test);
    }

    #[test]
    fn enclosing_fn_map_prefers_the_innermost_fn() {
        let src =
            "pub fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n    inner();\n}\n";
        let items = parse(src);
        let map = enclosing_fn_sig(&items, 6);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], Some(1), "line in inner maps to inner's signature");
        assert_eq!(map[4], Some(0), "after inner closes, back to outer");
    }
}
