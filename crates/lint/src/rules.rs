//! The rule engine: every invariant the workspace relies on but `clippy`
//! cannot see.
//!
//! Rules are grouped by the paper claim they protect (see DESIGN.md
//! "§ Static invariants"):
//!
//! * **Determinism** (Lemma 1, bit-identical seeded training):
//!   `hash-container`, `wall-clock`, `thread-spawn-join`.
//! * **Panic-freedom** (library code must degrade, not abort):
//!   `panic-unwrap`, `panic-expect`, `panic-macro`, `index-literal`.
//! * **Oracle / platform contracts** (estimator API): `oracle-width`,
//!   `cost-batch-guard`, `platform-id`, `safety-comment`, `crate-attrs`.
//! * **Workspace hygiene** (offline build image, honest docs):
//!   `workspace-deps`, `artifact-exists`.
//!
//! A violation on line `n` is suppressed by a trailing or immediately
//! preceding comment `// lint:allow(<rule-id>) <justification>`; the
//! justification is mandatory and is carried into the JSON report so every
//! suppression stays auditable.

use std::path::Path;

use crate::lexer::{find_word, LineScan};
use crate::report::{Diagnostic, LintOutcome, Suppression};
use crate::workspace::{find_code_char, match_brace, CrateClass, SourceFile, TextFile, Workspace};

/// A rule's identity and the invariant it guards.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub guards: &'static str,
}

/// Every rule the engine knows, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-container",
        guards: "determinism: std hash containers iterate in per-process random order",
    },
    RuleInfo {
        id: "wall-clock",
        guards: "determinism: wall-clock/thread-identity values vary across runs",
    },
    RuleInfo {
        id: "thread-spawn-join",
        guards: "determinism: detached threads outlive their scope; every thread::spawn must be joined in the same scope",
    },
    RuleInfo {
        id: "panic-unwrap",
        guards: "panic-freedom: .unwrap() aborts instead of degrading",
    },
    RuleInfo {
        id: "panic-expect",
        guards: "panic-freedom: .expect() must carry a justified structural invariant",
    },
    RuleInfo {
        id: "panic-macro",
        guards: "panic-freedom: explicit panics in library code",
    },
    RuleInfo {
        id: "index-literal",
        guards: "panic-freedom: literal indexing can go out of bounds",
    },
    RuleInfo {
        id: "oracle-width",
        guards: "estimator contract: every CostOracle impl must expose its row width",
    },
    RuleInfo {
        id: "cost-batch-guard",
        guards: "estimator contract: batch costing must debug_assert the row width",
    },
    RuleInfo {
        id: "platform-id",
        guards: "platform contract: raw usize platform indices bypass PlatformId",
    },
    RuleInfo {
        id: "safety-comment",
        guards: "unsafe hygiene: every unsafe block needs a // SAFETY: line",
    },
    RuleInfo {
        id: "crate-attrs",
        guards: "unsafe/debug hygiene: library crate roots must forbid unsafe_code and deny missing_debug_implementations",
    },
    RuleInfo {
        id: "workspace-deps",
        guards: "offline build image: only path/workspace dependencies exist",
    },
    RuleInfo {
        id: "artifact-exists",
        guards: "honest docs: referenced experiment artifacts exist on disk",
    },
    RuleInfo {
        id: "response-serialize-total",
        guards: "service contract: every pub *Response field must appear as a quoted JSON key in the service crate's renderer",
    },
    RuleInfo {
        id: "risk-policy-cache-key",
        guards: "cache soundness: a struct with a cache-key fn and a risk field must hash the risk policy into the key",
    },
    RuleInfo {
        id: "determinism-taint",
        guards: "interprocedural determinism: no fn on the declared deterministic surface may transitively reach an unjustified nondeterminism source",
    },
    RuleInfo {
        id: "panic-reachability",
        guards: "interprocedural panic-freedom: no fn on the declared no-panic surface may transitively reach an unjustified panic site",
    },
    RuleInfo {
        id: "float-total-order",
        guards: "determinism: partial_cmp().unwrap() and raw `<` comparators are NaN-unsafe; use f64::total_cmp",
    },
];

/// Run every rule over the loaded workspace (builds the call graph
/// internally; callers that also want the graph use [`check_with_graph`]).
pub fn check(ws: &Workspace) -> LintOutcome {
    let graph = crate::callgraph::build(ws);
    check_with_graph(ws, &graph)
}

/// Run every rule — the 16 line/contract rules plus the interprocedural
/// taint passes over a prebuilt call graph.
pub fn check_with_graph(ws: &Workspace, graph: &crate::callgraph::CallGraph) -> LintOutcome {
    let mut out = LintOutcome {
        files_scanned: ws.files_scanned(),
        ..LintOutcome::default()
    };
    for f in &ws.sources {
        check_source(f, &mut out);
    }
    check_response_fields(&ws.sources, &mut out);
    check_risk_cache_key(&ws.sources, &mut out);
    for m in &ws.manifests {
        check_manifest(m, &mut out);
    }
    for d in &ws.docs {
        check_doc(&ws.root, d, &mut out);
    }
    let (det_roots, np_roots) = crate::taint::run(ws, graph, &mut out);
    out.graph = graph.summary();
    out.graph.deterministic_roots = det_roots;
    out.graph.no_panic_roots = np_roots;
    out.sort();
    out
}

/// `lint:allow(<rule>) <justification>` — accepted on the violation line,
/// the line immediately preceding it, the enclosing fn's signature line,
/// or the line immediately preceding that signature (whole-function
/// allows). The justification is mandatory.
pub(crate) fn allow_justification(file: &SourceFile, li: usize, rule: &str) -> Option<String> {
    let needle = format!("lint:allow({rule})");
    let sig = file.fn_sigs.get(li).copied().flatten();
    let candidates = [
        Some(li),
        li.checked_sub(1),
        sig,
        sig.and_then(|s| s.checked_sub(1)),
    ];
    for cand in candidates.into_iter().flatten() {
        let comment = file
            .lines
            .get(cand)
            .map(|l| l.comment.as_str())
            .unwrap_or("");
        if let Some(pos) = comment.find(&needle) {
            let rest = comment.get(pos + needle.len()..).unwrap_or("").trim();
            if !rest.is_empty() {
                return Some(rest.to_string());
            }
        }
    }
    None
}

/// Record a hit on line `li` (0-based): a violation, unless a justified
/// `lint:allow` suppresses it.
pub(crate) fn emit(
    file: &SourceFile,
    li: usize,
    rule: &'static str,
    message: String,
    out: &mut LintOutcome,
) {
    match allow_justification(file, li, rule) {
        Some(justification) => out.allowed.push(Suppression {
            file: file.rel.clone(),
            line: li + 1,
            rule,
            justification,
        }),
        None => out
            .violations
            .push(Diagnostic::new(file.rel.clone(), li + 1, rule, message)),
    }
}

fn check_source(file: &SourceFile, out: &mut LintOutcome) {
    let panic_rules = file.class != CrateClass::Exempt && !file.is_binary;
    for (li, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        let in_test = file.test_mask.get(li).copied().unwrap_or(false);

        if file.class == CrateClass::Determinism {
            for container in ["HashMap", "HashSet"] {
                if !find_word(code, container).is_empty() {
                    emit(
                        file,
                        li,
                        "hash-container",
                        format!(
                            "{container} in a determinism-critical crate: std's per-process \
                             hasher seed makes iteration order nondeterministic; use \
                             robopt_vector::FootprintTable or a sorted Vec, or justify a \
                             provably non-iterating use with lint:allow(hash-container)"
                        ),
                        out,
                    );
                }
            }
        }

        if file.class != CrateClass::Exempt {
            for pattern in ["std::time", "SystemTime", "Instant::now", "thread::current"] {
                if code.contains(pattern) {
                    emit(
                        file,
                        li,
                        "wall-clock",
                        format!(
                            "`{pattern}` in a library crate: wall-clock and thread-identity \
                             values break bit-identical seeded runs; timing belongs in \
                             robopt-bench"
                        ),
                        out,
                    );
                }
            }
        }

        if panic_rules && !in_test {
            if code.contains(".unwrap()") {
                emit(
                    file,
                    li,
                    "panic-unwrap",
                    ".unwrap() in library code: convert to .expect() with an invariant \
                     message (justified via lint:allow(panic-expect)) or propagate \
                     Option/Result"
                        .to_string(),
                    out,
                );
            }
            if code.contains(".expect(") {
                emit(
                    file,
                    li,
                    "panic-expect",
                    ".expect() in library code: state the structural invariant in a \
                     lint:allow(panic-expect) justification or propagate the error"
                        .to_string(),
                    out,
                );
            }
            for mac in ["panic", "unreachable", "todo", "unimplemented"] {
                let fires = find_word(code, mac).into_iter().any(|at| {
                    code.get(at + mac.len()..)
                        .and_then(|s| s.chars().next())
                        .is_some_and(|c| c == '!')
                });
                if fires {
                    emit(
                        file,
                        li,
                        "panic-macro",
                        format!("{mac}! in library code aborts the optimizer instead of degrading"),
                        out,
                    );
                }
            }
            if has_literal_index(code) {
                emit(
                    file,
                    li,
                    "index-literal",
                    "indexing with an integer literal can go out of bounds; use \
                     .get()/.first(), or justify in-bounds-by-construction with \
                     lint:allow(index-literal)"
                        .to_string(),
                    out,
                );
            }
            if nan_unsafe_comparison(code) {
                emit(
                    file,
                    li,
                    "float-total-order",
                    "NaN-unsafe float comparison: partial_cmp().unwrap() panics on NaN \
                     and hand-rolled `<` comparators drop NaN ordering; use \
                     f64::total_cmp for a deterministic total order"
                        .to_string(),
                    out,
                );
            }
        }

        if !find_word(code, "unsafe").is_empty() {
            let documented = (li.saturating_sub(3)..=li).any(|c| {
                file.lines
                    .get(c)
                    .is_some_and(|l| l.comment.contains("SAFETY:"))
            });
            if !documented {
                emit(
                    file,
                    li,
                    "safety-comment",
                    "unsafe without a preceding // SAFETY: comment (library crates \
                     additionally #![forbid(unsafe_code)] entirely)"
                        .to_string(),
                    out,
                );
            }
        }
    }

    if file.is_crate_root && file.class != CrateClass::Exempt {
        for attr in [
            "#![forbid(unsafe_code)]",
            "#![deny(missing_debug_implementations)]",
        ] {
            if !file.lines.iter().any(|l| l.code.contains(attr)) {
                emit(
                    file,
                    0,
                    "crate-attrs",
                    format!("library crate root is missing `{attr}`"),
                    out,
                );
            }
        }
    }

    check_cost_oracle_impls(file, out);
    check_cost_batch_bodies(file, out);
    check_thread_spawns(file, out);
    if file.class != CrateClass::Exempt && file.crate_name != "platforms" {
        check_platform_params(file, out);
    }
}

/// `thread::spawn` in library code must be `.join()`ed in the same lexical
/// scope — a detached thread outlives the call that spawned it, racing
/// whatever seeded state comes next. `std::thread::scope` (the workspace's
/// parallelism idiom) joins implicitly and never contains the
/// `thread::spawn` token, so it passes untouched.
fn check_thread_spawns(file: &SourceFile, out: &mut LintOutcome) {
    if file.class == CrateClass::Exempt || file.is_binary {
        return;
    }
    for li in 0..file.lines.len() {
        let line = match file.lines.get(li) {
            Some(l) => l,
            None => continue,
        };
        let in_test = file.test_mask.get(li).copied().unwrap_or(false);
        if in_test {
            continue;
        }
        let Some(at) = line.code.find("thread::spawn") else {
            continue;
        };
        if !joined_in_scope(&file.lines, li, at) {
            emit(
                file,
                li,
                "thread-spawn-join",
                "thread::spawn without a .join() in the same scope: detached threads \
                 break deterministic seeded runs; join the handle, or use \
                 std::thread::scope which joins structurally"
                    .to_string(),
                out,
            );
        }
    }
}

/// Forward scan from the spawn site: does `.join(` appear before the
/// enclosing scope closes (brace depth dropping below the spawn's level)?
fn joined_in_scope(lines: &[LineScan], li: usize, col: usize) -> bool {
    let mut depth: i32 = 0;
    for (i, l) in lines.iter().enumerate().skip(li) {
        let start = if i == li { col } else { 0 };
        let code = l.code.get(start..).unwrap_or("");
        for (at, c) in code.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                '.' if code.get(at..).is_some_and(|s| s.starts_with(".join(")) => {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

/// `foo[3]`-style indexing: `[` preceded by an identifier character, `)` or
/// `]`, whose bracket content is a bare integer literal.
pub(crate) fn has_literal_index(code: &str) -> bool {
    for (at, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let prev = code[..at].trim_end().chars().next_back();
        if !prev.is_some_and(|p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']') {
            continue;
        }
        let inner = code.get(at + 1..).unwrap_or("");
        let digits: String = inner
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .collect();
        if digits.is_empty() {
            continue;
        }
        let rest = inner
            .trim_start()
            .get(digits.len()..)
            .unwrap_or("")
            .trim_start();
        if rest.starts_with(']') {
            return true;
        }
    }
    false
}

/// Rule 19 `float-total-order`: a `partial_cmp` whose `Option` is
/// force-unwrapped panics the library on the first NaN, and a comparator
/// built from a raw `<` silently drops NaN ordering — both break the
/// deterministic total order `f64::total_cmp` provides. `sort_by` with a
/// raw `<` only arises in `if a < b { Less } …` hand-rolled comparators
/// (a bare `<` closure would not type-check as `Ordering`).
fn nan_unsafe_comparison(code: &str) -> bool {
    if code.contains("partial_cmp") && (code.contains(".unwrap()") || code.contains(".expect(")) {
        return true;
    }
    code.contains("sort_by")
        && code.contains(" < ")
        && !code.contains("total_cmp")
        && !code.contains("partial_cmp")
}

/// Join the code of lines `lo..=hi` with spaces (signature/header text).
fn joined_code(lines: &[LineScan], lo: usize, hi: usize) -> String {
    let mut s = String::new();
    for l in lines.iter().take(hi + 1).skip(lo) {
        s.push_str(l.code.as_str());
        s.push(' ');
    }
    s
}

/// Every `impl … CostOracle for …` block must define `fn width`.
fn check_cost_oracle_impls(file: &SourceFile, out: &mut LintOutcome) {
    for li in 0..file.lines.len() {
        let code = file.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        for at in find_word(code, "impl") {
            let Some((bl, bc)) = find_code_char(&file.lines, li, at, |c| c == '{' || c == ';')
            else {
                continue;
            };
            let header = joined_code(&file.lines, li, bl);
            if find_word(&header, "CostOracle").is_empty() || find_word(&header, "for").is_empty() {
                continue;
            }
            let opens = file
                .lines
                .get(bl)
                .and_then(|l| l.code.get(bc..))
                .and_then(|s| s.chars().next())
                == Some('{');
            if !opens {
                continue;
            }
            let end = match_brace(&file.lines, bl, bc).unwrap_or(bl);
            let body = joined_code(&file.lines, bl, end);
            if !body.contains("fn width") {
                emit(
                    file,
                    li,
                    "oracle-width",
                    "impl CostOracle must define fn width() so every batch path can \
                     validate incoming row layouts"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// Every `fn cost_batch` body must `debug_assert` something about `width`.
fn check_cost_batch_bodies(file: &SourceFile, out: &mut LintOutcome) {
    for li in 0..file.lines.len() {
        let code = file.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        let Some(at) = code.find("fn cost_batch") else {
            continue;
        };
        // Word boundary: don't match fns whose name merely starts with
        // `cost_batch` (e.g. this rule's own tests).
        let after = code
            .get(at + "fn cost_batch".len()..)
            .and_then(|s| s.chars().next());
        if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let Some((bl, bc)) = find_code_char(&file.lines, li, at, |c| c == '{' || c == ';') else {
            continue;
        };
        let opens = file
            .lines
            .get(bl)
            .and_then(|l| l.code.get(bc..))
            .and_then(|s| s.chars().next())
            == Some('{');
        if !opens {
            continue; // bodyless trait declaration
        }
        let end = match_brace(&file.lines, bl, bc).unwrap_or(bl);
        let body = joined_code(&file.lines, bl, end);
        if !body.contains("debug_assert") || find_word(&body, "width").is_empty() {
            emit(
                file,
                li,
                "cost-batch-guard",
                "fn cost_batch must debug_assert the incoming batch width against \
                 CostOracle::width() — the wrong-layout class is silent otherwise"
                    .to_string(),
                out,
            );
        }
    }
}

/// `pub fn` parameters like `platform: usize` outside `robopt-platforms`
/// should take `PlatformId` (the raw-index wraparound class of PR 1).
fn check_platform_params(file: &SourceFile, out: &mut LintOutcome) {
    for li in 0..file.lines.len() {
        let code = file.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
        let Some(fn_at) = find_word(code, "fn").into_iter().next() else {
            continue;
        };
        if find_word(code.get(..fn_at).unwrap_or(""), "pub").is_empty() {
            continue;
        }
        let Some((pl, pc)) = find_code_char(&file.lines, li, fn_at, |c| c == '(') else {
            continue;
        };
        let Some((el, _)) = find_code_char(&file.lines, pl, pc, |c| c == ')') else {
            continue;
        };
        let sig = joined_code(&file.lines, li, el);
        let params = sig
            .find('(')
            .map(|s| sig.get(s + 1..).unwrap_or(""))
            .unwrap_or("");
        let params = params.split(')').next().unwrap_or("");
        for param in params.split(',') {
            let mut halves = param.splitn(2, ':');
            let name = halves
                .next()
                .unwrap_or("")
                .trim()
                .trim_start_matches("mut ");
            let ty = halves.next().unwrap_or("");
            if name.contains("platform")
                && !name.starts_with("n_")
                && name != "platforms"
                && !find_word(ty, "usize").is_empty()
            {
                emit(
                    file,
                    li,
                    "platform-id",
                    format!(
                        "pub fn takes a raw `{name}: usize` platform index outside \
                         robopt-platforms; take PlatformId (or justify layout-level \
                         indices with lint:allow(platform-id))"
                    ),
                    out,
                );
            }
        }
    }
}

/// The crate whose `*Response` structs form the service wire contract.
const SERVICE_CRATE: &str = "robopt";

/// ISSUE 7 service contract: the wire protocol is hand-rendered (the
/// workspace is dependency-free, so there is no derive to keep struct and
/// JSON in sync). A field added to a `pub struct …Response` silently
/// vanishes from every served response unless the renderer is also
/// touched. This rule closes the gap mechanically: every `pub` field of a
/// `*Response` struct in the service crate must appear as a quoted
/// `"key"` inside that crate's non-test string literals.
fn check_response_fields(sources: &[SourceFile], out: &mut LintOutcome) {
    // Pool every literal the service crate can render (non-test lines:
    // a key mentioned only by a test must not mask a missing renderer).
    let mut pool = String::new();
    for f in sources.iter().filter(|f| f.crate_name == SERVICE_CRATE) {
        for (li, line) in f.lines.iter().enumerate() {
            if !f.test_mask.get(li).copied().unwrap_or(false) {
                pool.push_str(&line.literal);
                pool.push('\n');
            }
        }
    }
    for f in sources.iter().filter(|f| f.crate_name == SERVICE_CRATE) {
        for li in 0..f.lines.len() {
            let code = f.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
            let Some(at) = code.find("pub struct ") else {
                continue;
            };
            let name: String = code
                .get(at + "pub struct ".len()..)
                .unwrap_or("")
                .chars()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect();
            if !name.ends_with("Response") {
                continue;
            }
            let Some((bl, bc)) = find_code_char(&f.lines, li, at, |c| c == '{' || c == ';') else {
                continue;
            };
            let opens = f
                .lines
                .get(bl)
                .and_then(|l| l.code.get(bc..))
                .and_then(|s| s.chars().next())
                == Some('{');
            if !opens {
                continue; // tuple/unit struct: nothing field-named to check
            }
            let end = match_brace(&f.lines, bl, bc).unwrap_or(bl);
            for fl in bl..=end {
                let fcode = f.lines.get(fl).map(|l| l.code.as_str()).unwrap_or("");
                let Some(rest) = fcode.trim_start().strip_prefix("pub ") else {
                    continue;
                };
                let field: String = rest
                    .chars()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .collect();
                let is_field = !field.is_empty()
                    && rest
                        .get(field.len()..)
                        .unwrap_or("")
                        .trim_start()
                        .starts_with(':');
                if !is_field {
                    continue; // the struct header itself, or a nested item
                }
                if !pool.contains(&format!("\"{field}\"")) {
                    emit(
                        f,
                        fl,
                        "response-serialize-total",
                        format!(
                            "field `{field}` of `{name}` never appears as a quoted \
                             \"{field}\" key in the {SERVICE_CRATE} crate's string \
                             literals: the hand-rendered wire protocol would drop it \
                             from every served response; render it (or justify an \
                             internal-only field with \
                             lint:allow(response-serialize-total))"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// ISSUE 9 cache soundness: a crate that derives cache keys (`fn
/// signature`) and carries a `risk` field on some struct must fold the
/// policy into the key — otherwise a risk-aware request can replay a
/// cache entry computed under a different policy, byte for byte. The rule
/// is per crate: every struct field named exactly `risk` is a violation
/// unless some non-test `fn signature` body in the same crate reads the
/// word `risk` (or the crate has no cache-key fn at all, in which case
/// there is no key to desynchronize).
fn check_risk_cache_key(sources: &[SourceFile], out: &mut LintOutcome) {
    // Pass 1: which crates have cache-key fns, and do any hash `risk`?
    let mut with_sig: Vec<&str> = Vec::new();
    let mut hashing: Vec<&str> = Vec::new();
    for f in sources {
        for li in 0..f.lines.len() {
            if f.test_mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            let code = f.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
            let Some(at) = code.find("fn signature") else {
                continue;
            };
            // Word boundary: `fn signature_helper` is not a cache-key fn.
            let after = code
                .get(at + "fn signature".len()..)
                .and_then(|s| s.chars().next());
            if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            let Some((bl, bc)) = find_code_char(&f.lines, li, at, |c| c == '{' || c == ';') else {
                continue;
            };
            if !with_sig.contains(&f.crate_name.as_str()) {
                with_sig.push(&f.crate_name);
            }
            let opens = f
                .lines
                .get(bl)
                .and_then(|l| l.code.get(bc..))
                .and_then(|s| s.chars().next())
                == Some('{');
            if !opens {
                continue; // trait declaration: the impls carry the bodies
            }
            let end = match_brace(&f.lines, bl, bc).unwrap_or(bl);
            let body = joined_code(&f.lines, bl, end);
            if !find_word(&body, "risk").is_empty() && !hashing.contains(&f.crate_name.as_str()) {
                hashing.push(&f.crate_name);
            }
        }
    }
    // Pass 2: every `risk` struct field in a crate whose cache-key fns
    // never read the policy.
    for f in sources {
        if !with_sig.contains(&f.crate_name.as_str()) || hashing.contains(&f.crate_name.as_str()) {
            continue;
        }
        for li in 0..f.lines.len() {
            let code = f.lines.get(li).map(|l| l.code.as_str()).unwrap_or("");
            for at in find_word(code, "struct") {
                let Some((bl, bc)) = find_code_char(&f.lines, li, at, |c| c == '{' || c == ';')
                else {
                    continue;
                };
                let opens = f
                    .lines
                    .get(bl)
                    .and_then(|l| l.code.get(bc..))
                    .and_then(|s| s.chars().next())
                    == Some('{');
                if !opens {
                    continue;
                }
                let end = match_brace(&f.lines, bl, bc).unwrap_or(bl);
                for fl in bl..=end {
                    if f.test_mask.get(fl).copied().unwrap_or(false) {
                        continue;
                    }
                    let fcode = f.lines.get(fl).map(|l| l.code.as_str()).unwrap_or("");
                    let rest = fcode.trim_start();
                    let rest = rest.strip_prefix("pub ").unwrap_or(rest);
                    let field: String = rest
                        .chars()
                        .take_while(|&c| c.is_alphanumeric() || c == '_')
                        .collect();
                    let is_field = field == "risk"
                        && rest
                            .get(field.len()..)
                            .unwrap_or("")
                            .trim_start()
                            .starts_with(':');
                    if is_field {
                        emit(
                            f,
                            fl,
                            "risk-policy-cache-key",
                            format!(
                                "struct field `risk` in crate `{}` whose cache-key fn \
                                 (`fn signature`) never reads the policy: a risk-aware \
                                 request could replay a cache entry computed under a \
                                 different policy; hash the policy into the signature \
                                 (or justify a key-irrelevant field with \
                                 lint:allow(risk-policy-cache-key))",
                                f.crate_name
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

/// Only `path =` / `workspace = true` dependencies may appear in any
/// dependency section: the build image has no registry access.
fn check_manifest(tf: &TextFile, out: &mut LintOutcome) {
    let mut in_deps = false;
    for (li, raw) in tf.text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line.trim_end_matches(']').ends_with("dependencies");
            continue;
        }
        if !in_deps || line.is_empty() || !line.contains('=') {
            continue;
        }
        if !(line.contains("workspace") || line.contains("path")) {
            out.violations.push(Diagnostic::new(
                tf.rel.clone(),
                li + 1,
                "workspace-deps",
                format!(
                    "`{line}` pulls a dependency from outside the workspace; the build \
                     image is offline — keep the workspace dependency-free (in-tree \
                     stand-ins, see Cargo.toml NOTE)"
                ),
            ));
        }
    }
}

/// Artifact paths referenced by the docs must exist on disk.
fn check_doc(root: &Path, tf: &TextFile, out: &mut LintOutcome) {
    for (li, line) in tf.text.lines().enumerate() {
        for path in artifact_refs(line) {
            if !root.join(&path).is_file() {
                out.violations.push(Diagnostic::new(
                    tf.rel.clone(),
                    li + 1,
                    "artifact-exists",
                    format!("referenced artifact `{path}` does not exist on disk"),
                ));
            }
        }
    }
}

/// Filename-ish character for artifact reference extraction.
fn is_artifact_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '.' | '_' | '-' | '*')
}

/// Extract `EXPERIMENTS_OUTPUT/<file>` and `BENCH_<name>.json` references.
/// Glob references (containing `*`) are skipped — they are patterns, not
/// file claims.
fn artifact_refs(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let prefix = "EXPERIMENTS_OUTPUT/";
    let mut start = 0usize;
    while let Some(pos) = line.get(start..).and_then(|s| s.find(prefix)) {
        let at = start + pos + prefix.len();
        let name: String = line
            .get(at..)
            .unwrap_or("")
            .chars()
            .take_while(|&c| is_artifact_char(c))
            .collect();
        let name = name.trim_end_matches('.');
        if !name.is_empty() && !name.contains('*') {
            out.push(format!("{prefix}{name}"));
        }
        start = at;
    }
    let mut start = 0usize;
    while let Some(pos) = line.get(start..).and_then(|s| s.find("BENCH_")) {
        let at = start + pos;
        let boundary_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let name: String = line
            .get(at..)
            .unwrap_or("")
            .chars()
            .take_while(|&c| is_artifact_char(c))
            .collect();
        let name = name.trim_end_matches('.').to_string();
        if boundary_ok && name.ends_with(".json") && !name.contains('*') {
            out.push(name);
        }
        start = at + "BENCH_".len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::workspace::{classify, compute_test_mask};

    /// Build a fixture [`SourceFile`] as if it lived in `crates/<name>/src/`.
    fn fixture(crate_name: &str, src: &str) -> SourceFile {
        let lines = scan(src);
        let test_mask = compute_test_mask(&lines);
        let items = crate::parser::parse_file(&lines, &test_mask);
        let fn_sigs = crate::parser::enclosing_fn_sig(&items, lines.len());
        SourceFile {
            rel: format!("crates/{crate_name}/src/fixture.rs"),
            crate_name: crate_name.to_string(),
            class: classify(crate_name),
            is_binary: false,
            is_crate_root: false,
            lines,
            test_mask,
            items,
            fn_sigs,
        }
    }

    fn lint(crate_name: &str, src: &str) -> LintOutcome {
        let f = fixture(crate_name, src);
        let mut out = LintOutcome::default();
        check_source(&f, &mut out);
        out.sort();
        out
    }

    fn rule_hits(out: &LintOutcome) -> Vec<&'static str> {
        out.violations.iter().map(|d| d.rule).collect()
    }

    // -- hash-container -------------------------------------------------

    #[test]
    fn hash_container_fires_in_determinism_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rule_hits(&lint("core", src)), vec!["hash-container"]);
        assert!(rule_hits(&lint("baselines", src)).is_empty());
    }

    #[test]
    fn hash_container_ignores_strings_and_comments() {
        let src = "// a HashMap would be wrong here\npub fn f() -> &'static str { \"HashMap\" }\n";
        assert!(rule_hits(&lint("core", src)).is_empty());
    }

    #[test]
    fn hash_container_allow_is_recorded_not_violated() {
        let src = "// lint:allow(hash-container) lookup-only, never iterated\nuse std::collections::HashMap;\n";
        let out = lint("core", src);
        assert!(out.violations.is_empty());
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(out.allowed.first().map(|a| a.rule), Some("hash-container"));
        assert!(out
            .allowed
            .first()
            .is_some_and(|a| a.justification.contains("lookup-only")));
    }

    // -- wall-clock -----------------------------------------------------

    #[test]
    fn wall_clock_fires_in_libraries_not_bench() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
        let hits = rule_hits(&lint("plan", src));
        assert!(hits.contains(&"wall-clock"));
        assert!(rule_hits(&lint("bench", src)).is_empty());
    }

    // -- panic rules ----------------------------------------------------

    #[test]
    fn unwrap_fires_outside_tests_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rule_hits(&lint("plan", src)), vec!["panic-unwrap"]);
        let masked = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(rule_hits(&lint("plan", masked)).is_empty());
    }

    #[test]
    fn unwrap_in_exempt_crates_is_fine() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(rule_hits(&lint("cli", src)).is_empty());
    }

    #[test]
    fn expect_requires_justification() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"set by ctor\") }\n";
        assert_eq!(rule_hits(&lint("ml", src)), vec!["panic-expect"]);
        let allowed = "// lint:allow(panic-expect) ctor always sets the field\npub fn f(x: Option<u32>) -> u32 { x.expect(\"set by ctor\") }\n";
        let out = lint("ml", allowed);
        assert!(out.violations.is_empty());
        assert_eq!(out.allowed.len(), 1);
    }

    #[test]
    fn allow_with_empty_justification_does_not_suppress() {
        let src = "// lint:allow(panic-unwrap)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rule_hits(&lint("plan", src)), vec!["panic-unwrap"]);
    }

    #[test]
    fn panic_macro_fires_but_not_in_strings_or_asserts() {
        assert_eq!(
            rule_hits(&lint("core", "pub fn f() { panic!(\"boom\"); }\n")),
            vec!["panic-macro"]
        );
        assert!(rule_hits(&lint("core", "pub fn f() -> &'static str { \"panic!\" }\n")).is_empty());
        assert!(rule_hits(&lint(
            "core",
            "pub fn f(n: usize) { debug_assert!(n > 0); }\n"
        ))
        .is_empty());
    }

    #[test]
    fn literal_index_fires_but_slice_types_do_not() {
        assert_eq!(
            rule_hits(&lint("vector", "pub fn f(v: &[u32]) -> u32 { v[0] }\n")),
            vec!["index-literal"]
        );
        assert!(rule_hits(&lint(
            "vector",
            "pub fn f(v: &[u32], i: usize) -> u32 { v[i] }\n"
        ))
        .is_empty());
        assert!(rule_hits(&lint(
            "vector",
            "pub const W: [f64; 3] = [1.0, 2.0, 3.0];\n"
        ))
        .is_empty());
    }

    // -- float-total-order ----------------------------------------------

    #[test]
    fn partial_cmp_unwrap_is_flagged() {
        let src = "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let hits = rule_hits(&lint("ml", src));
        assert!(hits.contains(&"float-total-order"), "{hits:?}");
        let expected =
            "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\")); }\n";
        assert!(rule_hits(&lint("ml", expected)).contains(&"float-total-order"));
    }

    #[test]
    fn hand_rolled_less_than_comparator_is_flagged() {
        let src = "pub fn s(v: &mut [f64]) {\n    v.sort_by(|a, b| if a < b { Less } else { Greater });\n}\n";
        assert_eq!(rule_hits(&lint("core", src)), vec!["float-total-order"]);
    }

    #[test]
    fn total_cmp_sorts_and_exempt_crates_pass() {
        let good = "pub fn s(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
        assert!(rule_hits(&lint("ml", good)).is_empty());
        // Comparing through partial_cmp without unwrapping is fine too.
        let propagated = "pub fn m(a: f64, b: f64) -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(rule_hits(&lint("ml", propagated)).is_empty());
        let bench = "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert!(rule_hits(&lint("bench", bench)).is_empty());
    }

    // -- fn-level lint:allow placement ----------------------------------

    #[test]
    fn allow_on_the_enclosing_fn_signature_covers_the_whole_body() {
        let src = "// lint:allow(panic-unwrap) fixture: both inputs set by the ctor\n\
                   pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n\
                   \x20   let a = x.unwrap();\n\
                   \x20   let b = y.unwrap();\n\
                   \x20   a + b\n\
                   }\n";
        let out = lint("plan", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.allowed.len(), 2, "one audited suppression per line");
        assert!(out.allowed.iter().all(|a| a.rule == "panic-unwrap"));
    }

    #[test]
    fn allow_on_the_signature_line_itself_works_too() {
        let src = "pub fn f(x: Option<u32>) -> u32 { // lint:allow(panic-unwrap) ctor invariant\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let out = lint("plan", src);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.allowed.len(), 1);
    }

    #[test]
    fn fn_level_allow_does_not_leak_past_the_fn_body() {
        let src = "// lint:allow(panic-unwrap) fixture: covered fn only\n\
                   pub fn covered(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   pub fn uncovered(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = lint("plan", src);
        assert_eq!(rule_hits(&out), vec!["panic-unwrap"]);
        assert!(out.violations.first().is_some_and(|d| d.line == 3));
        assert_eq!(out.allowed.len(), 1);
    }

    // -- thread-spawn-join ----------------------------------------------

    #[test]
    fn detached_thread_spawn_is_flagged() {
        let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(rule_hits(&lint("ml", src)), vec!["thread-spawn-join"]);
        // Returning the handle escapes the scope: still a violation here
        // (the caller may drop it); justify deliberate detachment.
        let escaped =
            "pub fn f() -> std::thread::JoinHandle<()> {\n    std::thread::spawn(|| {})\n}\n";
        assert_eq!(rule_hits(&lint("ml", escaped)), vec!["thread-spawn-join"]);
    }

    #[test]
    fn joined_thread_spawn_passes() {
        let src =
            "pub fn f() {\n    let h = std::thread::spawn(|| {});\n    let _ = h.join();\n}\n";
        assert!(rule_hits(&lint("ml", src)).is_empty());
        // Join may happen in a nested block of the same scope.
        let nested =
            "pub fn f() {\n    let h = std::thread::spawn(|| {});\n    { let _ = h.join(); }\n}\n";
        assert!(rule_hits(&lint("ml", nested)).is_empty());
    }

    #[test]
    fn scoped_threads_pass_and_strings_do_not_fire() {
        let src =
            "pub fn f() {\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n";
        assert!(rule_hits(&lint("ml", src)).is_empty());
        let s = "pub fn f() -> &'static str { \"thread::spawn\" }\n";
        assert!(rule_hits(&lint("ml", s)).is_empty());
    }

    #[test]
    fn engine_crate_is_covered_by_thread_spawn_join() {
        // The execution engine is determinism-class: a detached spawn
        // there is exactly the kind of nondeterminism the rule exists
        // to catch.
        let detached = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(
            rule_hits(&lint("engine", detached)),
            vec!["thread-spawn-join"]
        );
        // The engine's actual idiom — scoped workers joined at the end
        // of `std::thread::scope` — must keep passing.
        let scoped = "pub fn run() {\n    std::thread::scope(|s| {\n        for _ in 0..4 {\n            s.spawn(|| {});\n        }\n    });\n}\n";
        assert!(rule_hits(&lint("engine", scoped)).is_empty());
    }

    #[test]
    fn thread_spawn_join_respects_allow_and_exemptions() {
        let allowed = "// lint:allow(thread-spawn-join) fire-and-forget logger, joined at shutdown\npub fn f() { std::thread::spawn(|| {}); }\n";
        let out = lint("ml", allowed);
        assert!(out.violations.is_empty());
        assert_eq!(out.allowed.len(), 1);
        let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
        assert!(rule_hits(&lint("bench", src)).is_empty());
    }

    // -- contract rules -------------------------------------------------

    #[test]
    fn cost_oracle_impl_must_define_width() {
        let bad = "impl CostOracle for Flat {\n    fn cost_row(&self, r: &[f64]) -> f64 { r.len() as f64 }\n}\n";
        assert_eq!(rule_hits(&lint("engine", bad)), vec!["oracle-width"]);
        let good = "impl CostOracle for Flat {\n    fn width(&self) -> usize { 4 }\n}\n";
        assert!(rule_hits(&lint("engine", good)).is_empty());
        let unrelated = "impl Flat {\n    fn helper(&self) -> usize { 4 }\n}\n";
        assert!(rule_hits(&lint("engine", unrelated)).is_empty());
    }

    #[test]
    fn cost_batch_override_needs_width_guard() {
        let bad =
            "fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {\n    out.clear();\n}\n";
        assert_eq!(rule_hits(&lint("engine", bad)), vec!["cost-batch-guard"]);
        let good = "fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {\n    debug_assert_eq!(rows.width, self.width());\n    out.clear();\n}\n";
        assert!(rule_hits(&lint("engine", good)).is_empty());
        let decl = "fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>);\n";
        assert!(rule_hits(&lint("engine", decl)).is_empty());
    }

    #[test]
    fn raw_platform_usize_params_are_flagged() {
        let bad = "pub fn cost(platform: usize) -> f64 { platform as f64 }\n";
        assert_eq!(rule_hits(&lint("engine", bad)), vec!["platform-id"]);
        // Counts, typed ids, private fns, and robopt-platforms itself are fine.
        assert!(rule_hits(&lint("engine", "pub fn with(n_platforms: usize) {}\n")).is_empty());
        assert!(rule_hits(&lint(
            "engine",
            "pub fn cost(platform: PlatformId) -> f64 { 0.0 }\n"
        ))
        .is_empty());
        assert!(rule_hits(&lint(
            "engine",
            "fn cost(platform: usize) -> f64 { platform as f64 }\n"
        ))
        .is_empty());
        assert!(rule_hits(&lint("platforms", bad)).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rule_hits(&lint("engine", bad)), vec!["safety-comment"]);
        let good = "// SAFETY: caller guarantees p is valid for reads\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(rule_hits(&lint("engine", good)).is_empty());
    }

    #[test]
    fn crate_roots_must_carry_both_attrs() {
        let mut f = fixture("plan", "//! docs\npub mod x;\n");
        f.is_crate_root = true;
        let mut out = LintOutcome::default();
        check_source(&f, &mut out);
        assert_eq!(rule_hits(&out), vec!["crate-attrs", "crate-attrs"]);

        let mut f = fixture(
            "plan",
            "#![forbid(unsafe_code)]\n#![deny(missing_debug_implementations)]\npub mod x;\n",
        );
        f.is_crate_root = true;
        let mut out = LintOutcome::default();
        check_source(&f, &mut out);
        assert!(out.violations.is_empty());
    }

    // -- response-serialize-total ---------------------------------------

    fn lint_response(files: &[(&str, &str)]) -> LintOutcome {
        let sources: Vec<SourceFile> = files.iter().map(|(name, src)| fixture(name, src)).collect();
        let mut out = LintOutcome::default();
        check_response_fields(&sources, &mut out);
        out.sort();
        out
    }

    #[test]
    fn response_fields_rendered_as_json_keys_pass() {
        let api = "pub struct PingResponse {\n    pub seconds: f64,\n    pub feasible: bool,\n}\n";
        let wire = "pub fn render() -> String {\n    format!(\"{{\\\"seconds\\\":{},\\\"feasible\\\":{}}}\", 1, true)\n}\n";
        let out = lint_response(&[("robopt", api), ("robopt", wire)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn unrendered_response_field_is_flagged() {
        let api = "pub struct PingResponse {\n    pub seconds: f64,\n    pub forgotten: u64,\n}\n";
        let wire = "pub fn render() -> String { String::from(\"{\\\"seconds\\\":0}\") }\n";
        let out = lint_response(&[("robopt", api), ("robopt", wire)]);
        assert_eq!(rule_hits(&out), vec!["response-serialize-total"]);
        assert!(out
            .violations
            .first()
            .is_some_and(|d| d.message.contains("forgotten") && d.line == 3));
    }

    #[test]
    fn response_rule_ignores_other_crates_tests_and_non_response_structs() {
        // Same shape outside the service crate: out of scope.
        let api = "pub struct PingResponse {\n    pub forgotten: u64,\n}\n";
        assert!(lint_response(&[("core", api)]).violations.is_empty());
        // A key mentioned only inside #[cfg(test)] must not count as rendered.
        let test_only = "pub struct PingResponse {\n    pub seconds: f64,\n}\n#[cfg(test)]\nmod tests {\n    const T: &str = \"\\\"seconds\\\":1\";\n}\n";
        assert_eq!(
            rule_hits(&lint_response(&[("robopt", test_only)])),
            vec!["response-serialize-total"]
        );
        // Request structs carry no rendering obligation.
        let req = "pub struct PingRequest {\n    pub unrendered: u64,\n}\n";
        assert!(lint_response(&[("robopt", req)]).violations.is_empty());
    }

    #[test]
    fn response_rule_respects_lint_allow() {
        let api = "pub struct PingResponse {\n    // lint:allow(response-serialize-total) internal bookkeeping, not wire-visible\n    pub internal: u64,\n}\n";
        let out = lint_response(&[("robopt", api)]);
        assert!(out.violations.is_empty());
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(
            out.allowed.first().map(|a| a.rule),
            Some("response-serialize-total")
        );
    }

    // -- risk-policy-cache-key ------------------------------------------

    fn lint_risk(files: &[(&str, &str)]) -> LintOutcome {
        let sources: Vec<SourceFile> = files.iter().map(|(name, src)| fixture(name, src)).collect();
        let mut out = LintOutcome::default();
        check_risk_cache_key(&sources, &mut out);
        out.sort();
        out
    }

    #[test]
    fn risk_field_hashed_into_the_signature_passes() {
        let src = "pub struct Req {\n    pub risk: Option<RiskPolicy>,\n}\nimpl Req {\n    pub fn signature(&self) -> u64 {\n        let _ = self.risk;\n        0\n    }\n}\n";
        let out = lint_risk(&[("robopt", src)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // The hashing fn may live in a sibling file of the same crate.
        let api = "pub struct Req {\n    pub risk: u8,\n}\n";
        let keys = "pub fn signature(r: &Req) -> u64 { r.risk as u64 }\n";
        assert!(lint_risk(&[("robopt", api), ("robopt", keys)])
            .violations
            .is_empty());
    }

    #[test]
    fn unhashed_risk_field_next_to_a_cache_key_fn_is_flagged() {
        let src = "pub struct Req {\n    pub risk: u8,\n}\nimpl Req {\n    pub fn signature(&self) -> u64 { 0 }\n}\n";
        let out = lint_risk(&[("robopt", src)]);
        assert_eq!(rule_hits(&out), vec!["risk-policy-cache-key"]);
        assert!(out
            .violations
            .first()
            .is_some_and(|d| d.line == 2 && d.message.contains("cache-key")));
        // Private fields are cache state too.
        let private = "struct Opts {\n    risk: u8,\n}\nfn signature() -> u64 { 0 }\n";
        assert_eq!(
            rule_hits(&lint_risk(&[("robopt", private)])),
            vec!["risk-policy-cache-key"]
        );
    }

    #[test]
    fn risk_field_without_a_cache_key_fn_is_fine() {
        // No `fn signature` in the crate: nothing to desynchronize (the
        // core enumerator's EnumOptions carries risk but derives no keys).
        let src = "pub struct Opts {\n    risk: RiskPolicy,\n}\n";
        assert!(lint_risk(&[("core", src)]).violations.is_empty());
        // A test-only signature fn mentioning risk must not mask a real
        // non-hashing key fn.
        let masked = "pub struct Req {\n    pub risk: u8,\n}\nfn signature() -> u64 { 0 }\n#[cfg(test)]\nmod tests {\n    fn signature(risk: u8) -> u64 { risk as u64 }\n}\n";
        assert_eq!(
            rule_hits(&lint_risk(&[("robopt", masked)])),
            vec!["risk-policy-cache-key"]
        );
    }

    #[test]
    fn risk_cache_key_rule_respects_lint_allow() {
        let src = "pub struct Req {\n    // lint:allow(risk-policy-cache-key) display-only echo, never keyed\n    pub risk: u8,\n}\nfn signature() -> u64 { 0 }\n";
        let out = lint_risk(&[("robopt", src)]);
        assert!(out.violations.is_empty());
        assert_eq!(
            out.allowed.first().map(|a| a.rule),
            Some("risk-policy-cache-key")
        );
    }

    // -- manifests and docs ---------------------------------------------

    #[test]
    fn non_workspace_deps_are_flagged() {
        let tf = TextFile {
            rel: "crates/x/Cargo.toml".to_string(),
            text: "[package]\nname = \"x\"\n[dependencies]\nserde = \"1.0\"\nrobopt-plan = { workspace = true }\n[dev-dependencies]\nrand = { version = \"0.8\" }\n".to_string(),
        };
        let mut out = LintOutcome::default();
        check_manifest(&tf, &mut out);
        let lines: Vec<usize> = out.violations.iter().map(|d| d.line).collect();
        assert_eq!(rule_hits(&out), vec!["workspace-deps", "workspace-deps"]);
        assert_eq!(lines, vec![4, 7]);
    }

    #[test]
    fn missing_artifacts_are_flagged_globs_skipped() {
        let tf = TextFile {
            rel: "CHANGES.md".to_string(),
            text: "wrote EXPERIMENTS_OUTPUT/definitely_missing.json and EXPERIMENTS_OUTPUT/*.txt\n"
                .to_string(),
        };
        let mut out = LintOutcome::default();
        check_doc(Path::new("/nonexistent-root"), &tf, &mut out);
        assert_eq!(rule_hits(&out), vec!["artifact-exists"]);
        assert!(out
            .violations
            .first()
            .is_some_and(|d| d.message.contains("definitely_missing.json")));
    }

    #[test]
    fn artifact_refs_extraction() {
        assert_eq!(
            artifact_refs("see EXPERIMENTS_OUTPUT/fig01.json. done"),
            vec!["EXPERIMENTS_OUTPUT/fig01.json"]
        );
        assert_eq!(
            artifact_refs("BENCH_enum_fast.json vs WORKBENCH_x.json"),
            vec!["BENCH_enum_fast.json"]
        );
        assert!(artifact_refs("model-*.json under EXPERIMENTS_OUTPUT/*.txt").is_empty());
    }
}
