//! A small line/token-level lexer for Rust sources.
//!
//! The rules in [`crate::rules`] are textual, so they must never fire on
//! text inside string literals, char literals or comments (a doc example
//! mentioning `.unwrap()` is not a violation). This lexer splits every
//! physical line into *code* — with comments removed and the contents of
//! string/char literals blanked — and *comment text*, which is where the
//! `lint:allow(...)` suppressions and `SAFETY:` justifications live.
//!
//! Handled: `//`-style comments (incl. `///` and `//!` docs), nestable
//! `/* */` block comments, string literals with escapes, raw strings
//! `r"…"` / `r#"…"#` (any hash depth, multi-line), byte strings, char
//! literals vs. lifetimes, and multi-line literals of every kind.

/// One physical source line after lexical classification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineScan {
    /// Source code with comments stripped and literal contents blanked
    /// (string literals collapse to `""`, char literals to `' '`).
    pub code: String,
    /// Concatenated comment text appearing on this line, without the
    /// `//` / `/*` markers.
    pub comment: String,
    /// Concatenated *contents* of string literals on this line, with
    /// escapes resolved (`\"` → `"`) and a newline between literals. This
    /// is what rules that inspect rendered output (JSON keys in
    /// `response-serialize-total`) match against — the inverse concern of
    /// `code`, which blanks literals so textual rules never fire inside
    /// them.
    pub literal: String,
}

/// Lexer state that survives a line break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside a (possibly nested) block comment, with nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`.
    RawStr(u32),
}

/// True if `c` can be part of an identifier.
#[inline]
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan `source` into per-line code/comment splits.
pub fn scan(source: &str) -> Vec<LineScan> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut literal = String::new();
    let mut state = State::Code;
    let mut i = 0usize;
    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            lines.push(LineScan {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                literal: std::mem::take(&mut literal),
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: consume to end of line.
                    i += 2;
                    while let Some(&cc) = chars.get(i) {
                        if cc == '\n' {
                            break;
                        }
                        comment.push(cc);
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r'
                    && match chars.get(i.wrapping_sub(1)).copied() {
                        // `r` must start the token: `configure"` is not a raw
                        // string, but the `r` of `br"` is (when the `b`
                        // itself starts the token).
                        Some(p) if is_ident(p) => {
                            p == 'b' && !chars.get(i.wrapping_sub(2)).copied().is_some_and(is_ident)
                        }
                        _ => true,
                    }
                    && matches!(next, Some('"') | Some('#'))
                {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs. lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: consume to closing quote.
                        code.push_str("' '");
                        i += 2;
                        while let Some(&cc) = chars.get(i) {
                            i += 1;
                            if cc == '\\' {
                                i += 1;
                            } else if cc == '\'' {
                                break;
                            }
                        }
                    } else if chars.get(i + 2) == Some(&'\'') {
                        // 'x' char literal.
                        code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime: emit as code.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Keep escaped line breaks visible to the line splitter.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        // Resolve the common escapes so `\"cost\"` in source
                        // contributes `"cost"` to the literal pool; anything
                        // exotic keeps the escaped char verbatim.
                        if let Some(&esc) = chars.get(i + 1) {
                            literal.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                '0' => '\0',
                                other => other,
                            });
                        }
                        i += 2;
                    }
                } else if c == '"' {
                    code.push('"');
                    // Separator: needles must never straddle two literals.
                    literal.push('\n');
                    state = State::Code;
                    i += 1;
                } else {
                    literal.push(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        literal.push('\n');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        literal.push(c);
                        i += 1;
                    }
                } else {
                    literal.push(c);
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || !literal.is_empty() {
        lines.push(LineScan {
            code,
            comment,
            literal,
        });
    }
    lines
}

/// Find occurrences of `word` in `code` at identifier boundaries; returns
/// the byte offsets of each match.
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = code.get(start..).and_then(|s| s.find(word)) {
        let at = start + pos;
        let before_ok = code[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = code[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_doc_comments() {
        let ls = scan("let x = 1; // trailing .unwrap()\n/// doc .expect(\nlet y = 2;\n");
        assert_eq!(ls[0].code, "let x = 1; ");
        assert!(ls[0].comment.contains(".unwrap()"));
        assert_eq!(ls[1].code, "");
        assert!(ls[1].comment.contains(".expect("));
        assert_eq!(ls[2].code, "let y = 2;");
    }

    #[test]
    fn blanks_string_and_char_literals() {
        let ls = codes("let s = \"panic!(.unwrap())\"; let c = '\\n'; let l: &'static str;\n");
        assert_eq!(ls[0], "let s = \"\"; let c = ' '; let l: &'static str;");
    }

    #[test]
    fn handles_raw_strings_across_lines() {
        let src = "let s = r#\"line .unwrap()\nmore HashMap\"#;\nlet t = 3;\n";
        let ls = codes(src);
        assert_eq!(ls[0], "let s = \"");
        assert_eq!(ls[1], "\";");
        assert_eq!(ls[2], "let t = 3;");
    }

    #[test]
    fn nested_block_comments_and_multiline_strings() {
        let src = "a /* x /* y */ .unwrap() */ b\nlet s = \"one\ntwo\";\n";
        let ls = scan(src);
        assert_eq!(ls[0].code, "a  b");
        assert!(ls[0].comment.contains(".unwrap()"));
        assert_eq!(ls[1].code, "let s = \"");
        assert_eq!(ls[2].code, "\";");
    }

    #[test]
    fn literal_contents_are_retained_unescaped() {
        let ls = scan("s.push_str(\"{\\\"cost\\\":\"); let r = r#\"\"raw\"\"#;\n");
        assert_eq!(ls[0].literal, "{\"cost\":\n\"raw\"\n");
        // Blanked in code, retained in literal — never both.
        assert!(!ls[0].code.contains("cost"));
        // Comments contribute nothing to the literal pool.
        let ls = scan("// mentions \"cost\" in prose\nlet x = 1;\n");
        assert!(ls[0].literal.is_empty() && ls[1].literal.is_empty());
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(find_word("HashMap<u64, u32>", "HashMap").len(), 1);
        assert_eq!(find_word("MyHashMap<u64, u32>", "HashMap").len(), 0);
        assert_eq!(find_word("HashMapX", "HashMap").len(), 0);
        assert_eq!(find_word("a HashMap b HashMap", "HashMap").len(), 2);
    }

    #[test]
    fn lifetime_heavy_generics_survive() {
        let ls = codes("fn f<'a, 'b: 'a>(x: &'a str) -> &'b str { x }\n");
        assert_eq!(ls[0], "fn f<'a, 'b: 'a>(x: &'a str) -> &'b str { x }");
    }
}
