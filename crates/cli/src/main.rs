//! The `robopt` binary: thin shim over [`robopt_cli::run`].

fn main() {
    std::process::exit(robopt_cli::run(std::env::args().skip(1).collect()));
}
