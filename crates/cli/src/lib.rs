//! `robopt-cli`: the `robopt` command-line tool (train / optimize /
//! simulate / compare / workloads).
//!
//! **Stub** — lands in a later PR (see ROADMAP.md "Open items").

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

/// Exit code returned until the CLI lands.
pub const EXIT_UNIMPLEMENTED: i32 = 2;

/// Placeholder entry point so dependents can reference the crate.
pub fn run() -> i32 {
    eprintln!("the robopt CLI lands in a later PR; see ROADMAP.md");
    EXIT_UNIMPLEMENTED
}
