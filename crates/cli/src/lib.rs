//! `robopt-cli`: the `robopt` command-line tool.
//!
//! One binary, five subcommands, all speaking the `robopt` service API:
//!
//! * `robopt serve [--tcp PORT]` — the optimizer daemon: one JSON request
//!   per line (stdin by default, a localhost TCP socket with `--tcp`), one
//!   JSON response per line, until `{"op":"quit"}` or EOF;
//! * `robopt optimize|simulate|compare` — one-shot verbs taking the
//!   workload from flags, printing the response line to stdout;
//! * `robopt train` — trains a forest, installs it, and (with
//!   `--model-out`) persists it as bit-exact JSON for later `--model` use.
//!
//! Everything is offline and dependency-free: flag parsing is hand-rolled,
//! the wire format is the hand-rendered JSON from `robopt::wire`, and the
//! TCP mode binds loopback only.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::io::{BufRead, BufReader, Write};

use robopt::{
    parse_request, render_response, BackendChoice, ExecuteRequest, ExecutionPolicy,
    OptimizeRequest, Optimizer, Request, Response, RiskPolicy, ServiceError, TrainRequest,
    TrainSource, WorkloadSpec,
};

/// Successful run.
pub const EXIT_OK: i32 = 0;
/// A well-formed request that the service answered with an error.
pub const EXIT_REQUEST_FAILED: i32 = 1;
/// Unusable command line (unknown subcommand, bad flag, missing value).
pub const EXIT_USAGE: i32 = 2;

/// Entry point: dispatch `args` (without the program name) and return the
/// process exit code.
pub fn run(args: Vec<String>) -> i32 {
    let mut args = args.into_iter();
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return EXIT_USAGE;
    };
    let rest: Vec<String> = args.collect();
    match cmd.as_str() {
        "serve" => cmd_serve(&rest),
        "optimize" => cmd_one_shot(&rest, Verb::Optimize),
        "simulate" => cmd_one_shot(&rest, Verb::Simulate),
        "execute" => cmd_one_shot(&rest, Verb::Execute),
        "compare" => cmd_one_shot(&rest, Verb::Compare),
        "train" => cmd_train(&rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            EXIT_OK
        }
        other => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            EXIT_USAGE
        }
    }
}

const USAGE: &str = "robopt — optimizer-as-a-service for cross-platform query plans

USAGE:
  robopt serve [--tcp PORT] [--cache-capacity N] [--no-cache] [--model FILE]
               [--risk POLICY]
      Line-delimited JSON request loop ({\"op\":\"optimize\"|\"train\"|
      \"simulate\"|\"compare\"|\"stats\"|\"quit\"}) over stdin or a
      loopback TCP socket. --risk sets the session default policy for
      optimize requests that don't carry their own.

  robopt optimize [workload flags] [--workers N] [--split-parts N]
                  [--no-prune] [--model FILE] [--risk POLICY]
  robopt simulate [workload flags] [--seed N] [--noise X] [--model FILE]
  robopt execute  [workload flags] [--backend engine|simulator]
                  [--engine-workers N] [--assign p1,p2,...] [--seed N]
                  [--noise X] [--model FILE]
      Actually run the workload (engine: measured runtimes, real output
      rows and digest; simulator: modeled). Empty --assign optimizes
      first and executes the winner.
  robopt compare  [workload flags] [--workers N] [--sim-seed N] [--model FILE]
  robopt train    [--rows N] [--trees N] [--seed N] [--source simulator|tdgen]
                  [--forest-seed N] [--model-out FILE]

WORKLOAD FLAGS:
  --workload wordcount|tpch_q3|pipeline|random_dag|pagerank|kmeans
                 (default wordcount)
  --scale X      input tuples (default 1e7)
  --ops N        operator count for pipeline/random_dag (default 16)
  --dag-seed N   random_dag shape seed (default 1)
  --density X    random_dag extra-edge probability (default 0.3)
  --iterations N loop trips for pagerank/kmeans (default 10)

RISK POLICIES (--risk):
  expected       rank plans by mean predicted cost (default)
  sigma<k>       mean + k standard deviations, e.g. sigma1.5
  q<q>           cost quantile, q in (0,1), e.g. q0.9";

/// One-shot verbs sharing the workload/policy flag surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verb {
    Optimize,
    Simulate,
    Execute,
    Compare,
}

/// Parsed flag list: `--key value` pairs plus boolean `--key` switches.
#[derive(Debug, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

/// Flags that take no value; everything else expects `--flag VALUE`.
const SWITCHES: &[&str] = &["--no-cache", "--no-prune", "--no-clamp"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            return Err(format!("unexpected argument {arg:?}"));
        }
        if SWITCHES.contains(&arg.as_str()) {
            flags.switches.push(arg.clone());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag {arg} expects a value"));
        };
        flags.pairs.push((arg.clone(), value.clone()));
    }
    Ok(flags)
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag {key} has invalid value {raw:?}")),
        }
    }
}

fn workload_from_flags(flags: &Flags) -> Result<WorkloadSpec, String> {
    let scale: f64 = flags.parse("--scale", 1e7)?;
    let ops: usize = flags.parse("--ops", 16)?;
    match flags.get("--workload").unwrap_or("wordcount") {
        "wordcount" => Ok(WorkloadSpec::WordCount { scale }),
        "tpch_q3" => Ok(WorkloadSpec::TpchQ3 { scale }),
        "pipeline" => Ok(WorkloadSpec::Pipeline { ops, scale }),
        "random_dag" => Ok(WorkloadSpec::RandomDag {
            seed: flags.parse("--dag-seed", 1u64)?,
            ops,
            density: flags.parse("--density", 0.3f64)?,
        }),
        "pagerank" => Ok(WorkloadSpec::PageRank {
            scale,
            iterations: flags.parse("--iterations", 10u32)?,
        }),
        "kmeans" => Ok(WorkloadSpec::KMeans {
            scale,
            iterations: flags.parse("--iterations", 10u32)?,
        }),
        other => Err(format!("unknown workload {other:?}")),
    }
}

/// `--assign java,spark,...` into per-operator platform names (empty flag
/// or no flag means "optimize first").
fn assignments_from_flags(flags: &Flags) -> Vec<String> {
    flags
        .get("--assign")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

fn backend_from_flags(flags: &Flags) -> Result<BackendChoice, String> {
    match flags.get("--backend").unwrap_or("engine") {
        "engine" => Ok(BackendChoice::Engine {
            workers: flags.parse("--engine-workers", 2usize)?,
        }),
        "simulator" => Ok(BackendChoice::Simulator {
            seed: flags.parse("--seed", 42u64)?,
            noise: flags.parse("--noise", 0.0f64)?,
        }),
        other => Err(format!("unknown backend {other:?}")),
    }
}

/// `--risk expected|sigma<k>|q<q>` into a policy, `None` when absent.
fn risk_from_flags(flags: &Flags) -> Result<Option<RiskPolicy>, String> {
    flags.get("--risk").map(RiskPolicy::parse).transpose()
}

fn policy_from_flags(flags: &Flags) -> Result<ExecutionPolicy, String> {
    let mut policy = ExecutionPolicy::default()
        .with_workers(flags.parse("--workers", 1usize)?)
        .with_split_parts(flags.parse("--split-parts", 8usize)?);
    if flags.has("--no-prune") {
        policy = policy.with_prune(false);
    }
    if flags.has("--no-clamp") {
        policy = policy.with_hardware_clamp(false);
    }
    Ok(policy)
}

/// Build the facade, honoring `--model`, `--cache-capacity`, `--no-cache`.
fn optimizer_from_flags(flags: &Flags) -> Result<Optimizer, String> {
    let mut opt = Optimizer::named();
    if let Some(capacity) = flags.get("--cache-capacity") {
        let capacity: usize = capacity
            .parse()
            .map_err(|_| format!("--cache-capacity has invalid value {capacity:?}"))?;
        opt.set_cache_capacity(capacity);
    }
    if flags.has("--no-cache") {
        opt.set_cache_enabled(false);
    }
    if let Some(path) = flags.get("--model") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read model file {path:?}: {e}"))?;
        let forest = robopt::forest_from_json(&text).map_err(|e| e.to_string())?;
        opt.install_forest(forest).map_err(|e| e.to_string())?;
    }
    // Session-wide default; `robopt serve --risk` applies it to every
    // optimize request that doesn't carry its own policy.
    opt.set_default_risk(risk_from_flags(flags)?);
    Ok(opt)
}

fn cmd_one_shot(args: &[String], verb: Verb) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(msg) => return usage_error(&msg),
    };
    let setup = (|| -> Result<(Optimizer, Request), String> {
        let opt = optimizer_from_flags(&flags)?;
        let workload = workload_from_flags(&flags)?;
        let req = match verb {
            Verb::Optimize => {
                let mut oreq =
                    OptimizeRequest::new(workload).with_policy(policy_from_flags(&flags)?);
                if let Some(risk) = risk_from_flags(&flags)? {
                    oreq = oreq.with_risk(risk);
                }
                Request::Optimize(oreq)
            }
            Verb::Simulate => Request::Simulate(robopt::SimulateRequest {
                workload,
                assignments: Vec::new(),
                seed: flags.parse("--seed", 42u64)?,
                noise: flags.parse("--noise", 0.0f64)?,
            }),
            Verb::Execute => Request::Execute(
                ExecuteRequest::new(workload)
                    .with_assignments(assignments_from_flags(&flags))
                    .with_backend(backend_from_flags(&flags)?),
            ),
            Verb::Compare => Request::Compare(robopt::CompareRequest {
                workload,
                policy: policy_from_flags(&flags)?,
                sim_seed: flags.parse("--sim-seed", 42u64)?,
            }),
        };
        Ok((opt, req))
    })();
    let (mut opt, req) = match setup {
        Ok(pair) => pair,
        Err(msg) => return usage_error(&msg),
    };
    let resp = dispatch(&mut opt, &req);
    let failed = matches!(resp, Response::Error(_));
    println!("{}", render_response(&resp));
    if failed {
        EXIT_REQUEST_FAILED
    } else {
        EXIT_OK
    }
}

fn cmd_train(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(msg) => return usage_error(&msg),
    };
    let setup = (|| -> Result<TrainRequest, String> {
        let rows: usize = flags.parse("--rows", 512)?;
        let seed: u64 = flags.parse("--seed", 41)?;
        let source = match flags.get("--source").unwrap_or("simulator") {
            "simulator" => TrainSource::Simulator {
                seed,
                noise: flags.parse("--noise", 0.05f64)?,
            },
            "tdgen" => TrainSource::Tdgen { seed },
            other => return Err(format!("unknown training source {other:?}")),
        };
        Ok(TrainRequest {
            source,
            rows,
            n_trees: flags.parse("--trees", 24)?,
            forest_seed: flags.parse("--forest-seed", 0x0b5e_55edu64)?,
        })
    })();
    let req = match setup {
        Ok(req) => req,
        Err(msg) => return usage_error(&msg),
    };
    let mut opt = Optimizer::named();
    match opt.train(&req) {
        Ok(resp) => {
            if let Some(path) = flags.get("--model-out") {
                let Some(forest) = opt.forest() else {
                    eprintln!("internal error: train succeeded without a forest");
                    return EXIT_REQUEST_FAILED;
                };
                if let Err(e) = std::fs::write(path, robopt::forest_to_json(forest)) {
                    eprintln!("cannot write model file {path:?}: {e}");
                    return EXIT_REQUEST_FAILED;
                }
            }
            println!("{}", render_response(&Response::Train(resp)));
            EXIT_OK
        }
        Err(e) => {
            println!("{}", render_response(&Response::Error(e)));
            EXIT_REQUEST_FAILED
        }
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(msg) => return usage_error(&msg),
    };
    let mut opt = match optimizer_from_flags(&flags) {
        Ok(opt) => opt,
        Err(msg) => return usage_error(&msg),
    };
    match flags.get("--tcp") {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            serve_lines(&mut opt, stdin.lock(), &mut stdout);
            EXIT_OK
        }
        Some(port) => {
            let Ok(port) = port.parse::<u16>() else {
                return usage_error(&format!("--tcp has invalid port {port:?}"));
            };
            serve_tcp(&mut opt, port)
        }
    }
}

/// The serve loop: one request line in, one response line out, until
/// `quit` or EOF. Shared by stdin and per-connection TCP serving.
/// Returns `true` if the session ended with an explicit `quit`.
fn serve_lines<R: BufRead, W: Write>(opt: &mut Optimizer, reader: R, writer: &mut W) -> bool {
    for line in reader.lines() {
        let Ok(line) = line else {
            return false;
        };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match parse_request(&line) {
            Ok(Request::Quit) => {
                let _ = writeln!(writer, "{}", quit_ack());
                let _ = writer.flush();
                return true;
            }
            Ok(req) => dispatch(opt, &req),
            Err(e) => Response::Error(e),
        };
        if writeln!(writer, "{}", render_response(&resp)).is_err() {
            return false;
        }
        let _ = writer.flush();
    }
    false
}

/// Loopback TCP serving: bind, then hand the accept loop to
/// [`serve_on_listener`].
fn serve_tcp(opt: &mut Optimizer, port: u16) -> i32 {
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return EXIT_REQUEST_FAILED;
        }
    };
    eprintln!("robopt: serving on 127.0.0.1:{port}");
    serve_on_listener(opt, &listener)
}

/// The daemon accept loop over an already-bound listener (public so tests
/// can bind port 0 and drive real reconnects). Connections are handled one
/// at a time — the facade is single-threaded by design; batching, not
/// request threading, is the concurrency story, and one shared cache
/// serves every connection. A client that disconnects (EOF, dropped
/// socket, write error) ends only *its* session: the loop goes straight
/// back to `accept`, with the optimizer state (cache, telemetry, trained
/// model) intact for the next client. Only an explicit `quit` stops the
/// server.
pub fn serve_on_listener(opt: &mut Optimizer, listener: &std::net::TcpListener) -> i32 {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut writer = stream;
        let quit = serve_lines(opt, BufReader::new(read_half), &mut writer);
        if quit {
            return EXIT_OK;
        }
    }
    EXIT_OK
}

/// Route one parsed request into the facade.
fn dispatch(opt: &mut Optimizer, req: &Request) -> Response {
    match req {
        Request::Optimize(r) => match opt.optimize(r) {
            Ok(resp) => Response::Optimize(resp),
            Err(e) => Response::Error(e),
        },
        Request::Train(r) => match opt.train(r) {
            Ok(resp) => Response::Train(resp),
            Err(e) => Response::Error(e),
        },
        Request::Simulate(r) => match opt.simulate(r) {
            Ok(resp) => Response::Simulate(resp),
            Err(e) => Response::Error(e),
        },
        Request::Execute(r) => match opt.execute(r) {
            Ok(resp) => Response::Execute(resp),
            Err(e) => Response::Error(e),
        },
        Request::Compare(r) => match opt.compare(r) {
            Ok(resp) => Response::Compare(resp),
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(opt.service_stats()),
        Request::Quit => Response::Error(ServiceError::InvalidRequest(
            "quit is handled by the serve loop".to_string(),
        )),
    }
}

fn quit_ack() -> String {
    "{\"ok\":true,\"kind\":\"quit\"}".to_string()
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("robopt: {msg}\n\n{USAGE}");
    EXIT_USAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_loop_answers_a_scripted_session() {
        let script = concat!(
            r#"{"op":"optimize","workload":{"kind":"wordcount","scale":1e7}}"#,
            "\n",
            r#"{"op":"optimize","workload":{"kind":"wordcount","scale":1e7}}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"quit"}"#,
            "\n",
        );
        let mut opt = Optimizer::named();
        let mut out = Vec::new();
        let quit = serve_lines(&mut opt, script.as_bytes(), &mut out);
        assert!(quit, "script ends with quit");
        let text = String::from_utf8(out).expect("utf-8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one response per request");
        assert!(lines[0].contains("\"ok\":true"));
        assert_eq!(lines[0], lines[1], "cache hit is byte-identical");
        assert!(
            lines[2].contains("\"hits\":1"),
            "stats sees the hit: {}",
            lines[2]
        );
        assert!(lines[3].contains("\"quit\""));
    }

    #[test]
    fn serve_loop_survives_garbage_lines() {
        let script = "this is not json\n{\"op\":\"warp\"}\n{\"op\":\"stats\"}\n";
        let mut opt = Optimizer::named();
        let mut out = Vec::new();
        let quit = serve_lines(&mut opt, script.as_bytes(), &mut out);
        assert!(!quit, "EOF, not quit");
        let text = String::from_utf8(out).expect("utf-8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("\"ok\":false"));
        assert!(lines[2].contains("\"ok\":true"));
    }

    #[test]
    fn serve_loop_answers_an_execute_request() {
        let script = concat!(
            r#"{"op":"execute","workload":{"kind":"wordcount","scale":1e4},"workers":2}"#,
            "\n",
        );
        let mut opt = Optimizer::named();
        let mut out = Vec::new();
        serve_lines(&mut opt, script.as_bytes(), &mut out);
        let text = String::from_utf8(out).expect("utf-8 output");
        assert!(text.contains("\"kind\":\"execute\""), "{text}");
        assert!(text.contains("\"backend\":\"engine\""), "{text}");
        assert!(text.contains("\"measured\":true"), "{text}");
        assert!(text.contains("\"output_digest\":"), "{text}");
    }

    /// Regression test: the TCP daemon must keep serving after a client
    /// disconnects without `quit` — a second client gets a fresh session
    /// against the same optimizer state.
    #[test]
    fn tcp_daemon_accepts_a_second_client_after_the_first_disconnects() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind port 0");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let mut opt = Optimizer::named();
            serve_on_listener(&mut opt, &listener)
        });

        // Client 1: one optimize, then drop the socket (no quit).
        {
            let mut c1 = TcpStream::connect(addr).expect("client 1 connect");
            writeln!(
                c1,
                r#"{{"op":"optimize","workload":{{"kind":"wordcount","scale":1e7}}}}"#
            )
            .expect("client 1 write");
            let mut line = String::new();
            BufReader::new(c1.try_clone().expect("clone"))
                .read_line(&mut line)
                .expect("client 1 read");
            assert!(line.contains("\"ok\":true"), "{line}");
        }

        // Client 2: the daemon must still answer, with state carried over
        // (the stats counter shows client 1's request), then quit.
        let mut c2 = TcpStream::connect(addr).expect("client 2 connect");
        let mut reader = BufReader::new(c2.try_clone().expect("clone"));
        writeln!(c2, r#"{{"op":"stats"}}"#).expect("client 2 write stats");
        let mut line = String::new();
        reader.read_line(&mut line).expect("client 2 read stats");
        assert!(line.contains("\"requests\":1"), "{line}");
        writeln!(c2, r#"{{"op":"quit"}}"#).expect("client 2 write quit");
        line.clear();
        reader.read_line(&mut line).expect("client 2 read quit ack");
        assert!(line.contains("\"quit\""), "{line}");

        assert_eq!(server.join().expect("server thread"), EXIT_OK);
    }

    #[test]
    fn risk_flag_parses_policies_and_rejects_garbage() {
        let flags = parse_flags(&["--risk".to_string(), "sigma1.5".to_string()]).expect("flags");
        assert_eq!(
            risk_from_flags(&flags).expect("parse"),
            Some(RiskPolicy::MeanPlusKSigma(1.5))
        );
        assert_eq!(risk_from_flags(&Flags::default()).expect("absent"), None);
        let bad = parse_flags(&["--risk".to_string(), "wild".to_string()]).expect("flags");
        assert!(
            risk_from_flags(&bad).is_err(),
            "unknown policy is a usage error"
        );
        // End to end: the one-shot verb carries the policy onto the wire.
        let script = concat!(
            r#"{"op":"optimize","workload":{"kind":"wordcount","scale":1e6},"risk":"q0.9"}"#,
            "\n",
        );
        let mut opt = Optimizer::named();
        let mut out = Vec::new();
        serve_lines(&mut opt, script.as_bytes(), &mut out);
        let text = String::from_utf8(out).expect("utf-8 output");
        assert!(text.contains("\"risk_policy\":\"q0.9\""), "{text}");
        assert!(text.contains("\"cost_std\":"), "{text}");
    }

    #[test]
    fn flag_parsing_catches_the_usual_mistakes() {
        assert!(
            parse_flags(&["--rows".to_string()]).is_err(),
            "missing value"
        );
        assert!(parse_flags(&["stray".to_string()]).is_err(), "non-flag arg");
        let flags = parse_flags(&[
            "--workload".to_string(),
            "pipeline".to_string(),
            "--ops".to_string(),
            "24".to_string(),
            "--no-cache".to_string(),
        ])
        .expect("valid flags");
        assert!(flags.has("--no-cache"));
        assert_eq!(
            workload_from_flags(&flags).expect("workload"),
            WorkloadSpec::Pipeline {
                ops: 24,
                scale: 1e7
            }
        );
    }
}
