//! Symbolic workload specifications — the one constructor path from a
//! serializable recipe to a [`LogicalPlan`].
//!
//! Hoisted out of the service crate (ISSUE 8) so the service facade, the
//! fig binaries, and the execution engine all build plans through the same
//! validated entry point instead of each re-wrapping [`crate::workloads`].
//! The spec stays plain `Copy` data so callers can hash it into cache keys
//! and render it over the wire.

use crate::dag::LogicalPlan;
use crate::rng::SplitMix64;
use crate::workloads;

/// A workload *specification* — the recipe for a [`LogicalPlan`], kept
/// symbolic so requests stay hashable and serializable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's running example: map/flatmap/reduce word count.
    WordCount {
        /// Input tuple count.
        scale: f64,
    },
    /// TPC-H Q3 join tree.
    TpchQ3 {
        /// Scale in tuples of the largest input.
        scale: f64,
    },
    /// Linear pipeline of `ops` operators.
    Pipeline {
        /// Operator count (2..=128).
        ops: usize,
        /// Input tuple count.
        scale: f64,
    },
    /// Random connected DAG, reproducible from `seed`.
    RandomDag {
        /// RNG seed for the DAG shape.
        seed: u64,
        /// Operator count (2..=128).
        ops: usize,
        /// Extra-edge probability in `[0, 1]`.
        density: f64,
    },
    /// PageRank over a synthetic edge list (iterative, `RepeatLoop`).
    PageRank {
        /// Edge tuple count.
        scale: f64,
        /// Rank iterations (1..=256).
        iterations: u32,
    },
    /// k-means over synthetic 2-D points (iterative, `RepeatLoop`).
    KMeans {
        /// Point tuple count.
        scale: f64,
        /// Lloyd iterations (1..=256).
        iterations: u32,
    },
}

/// Operator-count bounds for the parameterized workload shapes; keeps
/// callers from building degenerate or exponential plans.
const MIN_OPS: usize = 2;
const MAX_OPS: usize = 128;

/// Loop trip-count bounds for the iterative shapes.
const MAX_ITERATIONS: u32 = 256;

impl WorkloadSpec {
    /// Human-readable workload label used in responses and artifacts,
    /// e.g. `wordcount(1e7)` or `pagerank(1e5,iters=10)`.
    pub fn name(&self) -> String {
        match *self {
            WorkloadSpec::WordCount { scale } => format!("wordcount({scale:e})"),
            WorkloadSpec::TpchQ3 { scale } => format!("tpch_q3({scale:e})"),
            WorkloadSpec::Pipeline { ops, scale } => format!("pipeline(ops={ops},{scale:e})"),
            WorkloadSpec::RandomDag { seed, ops, density } => {
                format!("random_dag(seed={seed},ops={ops},density={density:.2})")
            }
            WorkloadSpec::PageRank { scale, iterations } => {
                format!("pagerank({scale:e},iters={iterations})")
            }
            WorkloadSpec::KMeans { scale, iterations } => {
                format!("kmeans({scale:e},iters={iterations})")
            }
        }
    }

    /// Validate the spec and build its [`LogicalPlan`]. Every constraint a
    /// plan constructor would `assert!` is checked here first and surfaced
    /// as a typed [`SpecError`] — callers never panic on bad input.
    pub fn build(&self) -> Result<LogicalPlan, SpecError> {
        match *self {
            WorkloadSpec::WordCount { scale } => {
                check_scale(scale)?;
                Ok(workloads::wordcount(scale))
            }
            WorkloadSpec::TpchQ3 { scale } => {
                check_scale(scale)?;
                Ok(workloads::tpch_q3(scale))
            }
            WorkloadSpec::Pipeline { ops, scale } => {
                check_scale(scale)?;
                check_ops(ops)?;
                Ok(workloads::synthetic_pipeline(ops, scale))
            }
            WorkloadSpec::RandomDag { seed, ops, density } => {
                check_ops(ops)?;
                if !(0.0..=1.0).contains(&density) {
                    return Err(SpecError::new(format!(
                        "random_dag density {density} outside [0, 1]"
                    )));
                }
                let mut rng = SplitMix64::new(seed);
                Ok(workloads::random_connected_dag(&mut rng, ops, density))
            }
            WorkloadSpec::PageRank { scale, iterations } => {
                check_scale(scale)?;
                check_iterations(iterations)?;
                Ok(workloads::pagerank(scale, iterations))
            }
            WorkloadSpec::KMeans { scale, iterations } => {
                check_scale(scale)?;
                check_iterations(iterations)?;
                Ok(workloads::kmeans(scale, iterations))
            }
        }
    }
}

fn check_scale(scale: f64) -> Result<(), SpecError> {
    if scale.is_finite() && scale > 0.0 && scale <= 1e15 {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "workload scale {scale} outside (0, 1e15]"
        )))
    }
}

fn check_ops(ops: usize) -> Result<(), SpecError> {
    if (MIN_OPS..=MAX_OPS).contains(&ops) {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "operator count {ops} outside [{MIN_OPS}, {MAX_OPS}]"
        )))
    }
}

fn check_iterations(iterations: u32) -> Result<(), SpecError> {
    if (1..=MAX_ITERATIONS).contains(&iterations) {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "loop iterations {iterations} outside [1, {MAX_ITERATIONS}]"
        )))
    }
}

/// A [`WorkloadSpec`] that cannot build: the offending constraint, spelled
/// out. The service layer maps this onto its own typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: String) -> Self {
        SpecError { message }
    }

    /// The human-readable constraint violation.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_validate_before_building() {
        assert!(WorkloadSpec::WordCount { scale: 1e7 }.build().is_ok());
        assert!(WorkloadSpec::WordCount { scale: 0.0 }.build().is_err());
        assert!(WorkloadSpec::WordCount { scale: f64::NAN }.build().is_err());
        assert!(WorkloadSpec::Pipeline { ops: 1, scale: 1e5 }
            .build()
            .is_err());
        assert!(WorkloadSpec::Pipeline {
            ops: 999,
            scale: 1e5,
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::RandomDag {
            seed: 7,
            ops: 24,
            density: 1.5,
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::PageRank {
            scale: 1e5,
            iterations: 0,
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::KMeans {
            scale: 1e5,
            iterations: 999,
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::PageRank {
            scale: 1e5,
            iterations: 10,
        }
        .build()
        .is_ok());
    }

    #[test]
    fn names_are_distinct_per_variant() {
        let specs = [
            WorkloadSpec::WordCount { scale: 1e5 },
            WorkloadSpec::TpchQ3 { scale: 1e5 },
            WorkloadSpec::Pipeline { ops: 8, scale: 1e5 },
            WorkloadSpec::RandomDag {
                seed: 1,
                ops: 8,
                density: 0.3,
            },
            WorkloadSpec::PageRank {
                scale: 1e5,
                iterations: 10,
            },
            WorkloadSpec::KMeans {
                scale: 1e5,
                iterations: 10,
            },
        ];
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
