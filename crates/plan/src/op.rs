//! Logical operator kinds and per-operator metadata.
//!
//! The 24 kinds mirror the Rheem operator algebra the paper enumerates over
//! (Section II). Each kind carries a default selectivity (output/input tuple
//! ratio) and a default tuple width used by cardinality propagation and by
//! the Fig-5 feature vector.

/// Number of logical operator kinds — the `o` dimension of the Fig-5 layout.
pub const N_OPERATOR_KINDS: usize = 24;

/// The logical operator algebra (24 kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OperatorKind {
    TextFileSource = 0,
    CollectionSource = 1,
    TableSource = 2,
    Map = 3,
    FlatMap = 4,
    MapPartitions = 5,
    Filter = 6,
    Sample = 7,
    Distinct = 8,
    ReduceByKey = 9,
    GroupByKey = 10,
    Aggregate = 11,
    GlobalReduce = 12,
    Count = 13,
    Join = 14,
    CartesianProduct = 15,
    Union = 16,
    Intersect = 17,
    Sort = 18,
    ZipWithId = 19,
    Cache = 20,
    Broadcast = 21,
    RepeatLoop = 22,
    LocalCallbackSink = 23,
}

impl OperatorKind {
    /// All kinds, in feature-layout order.
    pub const ALL: [OperatorKind; N_OPERATOR_KINDS] = [
        OperatorKind::TextFileSource,
        OperatorKind::CollectionSource,
        OperatorKind::TableSource,
        OperatorKind::Map,
        OperatorKind::FlatMap,
        OperatorKind::MapPartitions,
        OperatorKind::Filter,
        OperatorKind::Sample,
        OperatorKind::Distinct,
        OperatorKind::ReduceByKey,
        OperatorKind::GroupByKey,
        OperatorKind::Aggregate,
        OperatorKind::GlobalReduce,
        OperatorKind::Count,
        OperatorKind::Join,
        OperatorKind::CartesianProduct,
        OperatorKind::Union,
        OperatorKind::Intersect,
        OperatorKind::Sort,
        OperatorKind::ZipWithId,
        OperatorKind::Cache,
        OperatorKind::Broadcast,
        OperatorKind::RepeatLoop,
        OperatorKind::LocalCallbackSink,
    ];

    /// Position of this kind inside the per-kind feature blocks.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn is_source(self) -> bool {
        matches!(
            self,
            OperatorKind::TextFileSource
                | OperatorKind::CollectionSource
                | OperatorKind::TableSource
        )
    }

    pub fn is_sink(self) -> bool {
        matches!(self, OperatorKind::LocalCallbackSink)
    }

    /// Default output/input tuple ratio used by cardinality propagation.
    pub fn default_selectivity(self) -> f64 {
        match self {
            OperatorKind::TextFileSource
            | OperatorKind::CollectionSource
            | OperatorKind::TableSource => 1.0,
            OperatorKind::Map | OperatorKind::MapPartitions | OperatorKind::ZipWithId => 1.0,
            OperatorKind::FlatMap => 4.0,
            OperatorKind::Filter => 0.4,
            OperatorKind::Sample => 0.1,
            OperatorKind::Distinct => 0.6,
            OperatorKind::ReduceByKey | OperatorKind::GroupByKey => 0.2,
            OperatorKind::Aggregate | OperatorKind::GlobalReduce | OperatorKind::Count => 1e-6,
            OperatorKind::Join => 0.05,
            OperatorKind::CartesianProduct => 10.0,
            OperatorKind::Union => 1.0,
            OperatorKind::Intersect => 0.3,
            OperatorKind::Sort => 1.0,
            OperatorKind::Cache | OperatorKind::Broadcast => 1.0,
            OperatorKind::RepeatLoop => 1.0,
            OperatorKind::LocalCallbackSink => 0.0,
        }
    }

    /// Default tuple width (bytes) of this kind's output.
    pub fn default_tuple_width(self) -> f64 {
        match self {
            OperatorKind::TextFileSource => 120.0,
            OperatorKind::CollectionSource => 32.0,
            OperatorKind::TableSource => 64.0,
            OperatorKind::FlatMap => 24.0,
            OperatorKind::Join | OperatorKind::CartesianProduct => 96.0,
            OperatorKind::Count | OperatorKind::GlobalReduce | OperatorKind::Aggregate => 16.0,
            _ => 48.0,
        }
    }
}

/// A logical operator instance inside a [`crate::LogicalPlan`].
#[derive(Debug, Clone, Copy)]
pub struct Operator {
    pub kind: OperatorKind,
    /// Output tuple width in bytes.
    pub tuple_width: f64,
    /// Output/input tuple ratio.
    pub selectivity: f64,
    /// Estimated output cardinality for source operators; ignored otherwise.
    pub source_cardinality: f64,
    /// Loop trip count for [`OperatorKind::RepeatLoop`]; ignored otherwise.
    ///
    /// `0` (the default) keeps the operator inert — a pass-through with no
    /// per-iteration cost — so plans built before iterative workloads landed
    /// keep bit-identical simulator outputs.
    pub iterations: u32,
}

impl Operator {
    pub fn new(kind: OperatorKind) -> Self {
        Operator {
            kind,
            tuple_width: kind.default_tuple_width(),
            selectivity: kind.default_selectivity(),
            source_cardinality: 0.0,
            iterations: 0,
        }
    }

    /// A source operator producing `cardinality` tuples.
    pub fn source(kind: OperatorKind, cardinality: f64) -> Self {
        debug_assert!(kind.is_source());
        Operator {
            source_cardinality: cardinality,
            ..Operator::new(kind)
        }
    }

    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity;
        self
    }

    pub fn with_tuple_width(mut self, width: f64) -> Self {
        self.tuple_width = width;
        self
    }

    /// Loop trip count; meaningful only on [`OperatorKind::RepeatLoop`].
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }
}
