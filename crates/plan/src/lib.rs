//! `robopt-plan`: the optimizer-facing plan substrate.
//!
//! Logical operators (the 24-kind Rheem/Robopt operator algebra), dataflow
//! DAGs with cardinality propagation, topology analysis, a deterministic
//! seeded RNG (the offline stand-in for `rand`), and workload builders for
//! the paper's plans (WordCount, TPC-H Q3, synthetic pipelines) plus random
//! connected DAGs for property tests. [`WorkloadSpec`] is the validated,
//! serializable recipe shared by the service facade, the fig binaries, and
//! the execution engine.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod dag;
pub mod op;
pub mod rng;
pub mod spec;
pub mod topology;
pub mod workloads;

pub use dag::LogicalPlan;
pub use op::{Operator, OperatorKind, N_OPERATOR_KINDS};
pub use rng::SplitMix64;
pub use spec::{SpecError, WorkloadSpec};
