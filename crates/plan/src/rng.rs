//! Deterministic seeded RNG — the offline stand-in for the `rand` crate.
//!
//! SplitMix64 (Steele et al., "Fast splittable pseudorandom number
//! generators"): tiny state, passes BigCrush when used as a 64-bit stream,
//! and trivially reproducible from a single `u64` seed, which is all the
//! property tests and synthetic generators need.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// One SplitMix64 scrambling round; also used as a standalone mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn gen_range(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
