//! Workload plan builders (Table II subset used by Fig 1) and synthetic
//! plan generators for benchmarks and property tests.

use crate::dag::LogicalPlan;
use crate::op::{Operator, OperatorKind};
use crate::rng::SplitMix64;

/// WordCount: 6 operators (paper Fig 1, "WordCount (6 op.)").
///
/// TextFileSource -> FlatMap(split) -> Map(to pair) -> ReduceByKey ->
/// Map(format) -> LocalCallbackSink.
pub fn wordcount(input_tuples: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let src = p.add_op(Operator::source(OperatorKind::TextFileSource, input_tuples));
    let split = p.add_op(Operator::new(OperatorKind::FlatMap).with_selectivity(8.0));
    let pair = p.add_op(Operator::new(OperatorKind::Map));
    let reduce = p.add_op(Operator::new(OperatorKind::ReduceByKey).with_selectivity(0.1));
    let fmt = p.add_op(Operator::new(OperatorKind::Map));
    let sink = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
    p.connect(src, split);
    p.connect(split, pair);
    p.connect(pair, reduce);
    p.connect(reduce, fmt);
    p.connect(fmt, sink);
    p.seal();
    p
}

/// TPC-H Q3: 17 operators (paper Fig 1, "TPC-H Q3 (17 op.)").
///
/// Three scans (customer, orders, lineitem), per-table filter + projection,
/// two joins, projection, group-by + aggregate, sort, sink.
pub fn tpch_q3(scale_tuples: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let customer = p.add_op(Operator::source(
        OperatorKind::TableSource,
        scale_tuples * 0.1,
    ));
    let c_filter = p.add_op(Operator::new(OperatorKind::Filter).with_selectivity(0.2));
    let c_proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(16.0));
    let orders = p.add_op(Operator::source(OperatorKind::TableSource, scale_tuples));
    let o_filter = p.add_op(Operator::new(OperatorKind::Filter).with_selectivity(0.48));
    let o_proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(32.0));
    let lineitem = p.add_op(Operator::source(
        OperatorKind::TableSource,
        scale_tuples * 4.0,
    ));
    let l_filter = p.add_op(Operator::new(OperatorKind::Filter).with_selectivity(0.54));
    let l_proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(40.0));
    let join_co = p.add_op(Operator::new(OperatorKind::Join).with_selectivity(0.02));
    let co_proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(40.0));
    let join_col = p.add_op(Operator::new(OperatorKind::Join).with_selectivity(0.03));
    let col_proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(48.0));
    let group = p.add_op(Operator::new(OperatorKind::GroupByKey).with_selectivity(0.25));
    let agg = p.add_op(Operator::new(OperatorKind::Aggregate).with_selectivity(1.0));
    let sort = p.add_op(Operator::new(OperatorKind::Sort));
    let sink = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
    p.connect(customer, c_filter);
    p.connect(c_filter, c_proj);
    p.connect(orders, o_filter);
    p.connect(o_filter, o_proj);
    p.connect(lineitem, l_filter);
    p.connect(l_filter, l_proj);
    p.connect(c_proj, join_co);
    p.connect(o_proj, join_co);
    p.connect(join_co, co_proj);
    p.connect(co_proj, join_col);
    p.connect(l_proj, join_col);
    p.connect(join_col, col_proj);
    p.connect(col_proj, group);
    p.connect(group, agg);
    p.connect(agg, sort);
    p.connect(sort, sink);
    p.seal();
    p
}

/// PageRank over a synthetic edge list: 6 operators.
///
/// TextFileSource(edge lines) -> Filter(drop self-loops) -> Map(normalize)
/// -> RepeatLoop(rank iterations) -> Map(format) -> LocalCallbackSink.
///
/// The text-carrying source is what routes the engine's `RepeatLoop` to
/// the PageRank kernel (numeric streams route to k-means). `edge_tuples`
/// sizes the edge scan; the loop's selectivity models the contraction from
/// edges down to one rank row per node (engine kernels derive the node
/// count as roughly edges / 8).
pub fn pagerank(edge_tuples: f64, iterations: u32) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let src = p.add_op(Operator::source(OperatorKind::TextFileSource, edge_tuples));
    let dedup = p.add_op(Operator::new(OperatorKind::Filter).with_selectivity(0.9));
    let norm = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(24.0));
    let loop_op = p.add_op(
        Operator::new(OperatorKind::RepeatLoop)
            .with_selectivity(0.125)
            .with_iterations(iterations),
    );
    let fmt = p.add_op(Operator::new(OperatorKind::Map));
    let sink = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
    p.connect(src, dedup);
    p.connect(dedup, norm);
    p.connect(norm, loop_op);
    p.connect(loop_op, fmt);
    p.connect(fmt, sink);
    p.seal();
    p
}

/// k-means over synthetic 2-D points: 6 operators.
///
/// CollectionSource(points) -> Map(project) -> RepeatLoop(Lloyd iterations)
/// -> GroupByKey(cluster sizes) -> Map(format) -> LocalCallbackSink.
pub fn kmeans(point_tuples: f64, iterations: u32) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let src = p.add_op(Operator::source(
        OperatorKind::CollectionSource,
        point_tuples,
    ));
    let proj = p.add_op(Operator::new(OperatorKind::Map).with_tuple_width(16.0));
    let loop_op = p.add_op(Operator::new(OperatorKind::RepeatLoop).with_iterations(iterations));
    let sizes = p.add_op(Operator::new(OperatorKind::GroupByKey).with_selectivity(1e-3));
    let fmt = p.add_op(Operator::new(OperatorKind::Map));
    let sink = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
    p.connect(src, proj);
    p.connect(proj, loop_op);
    p.connect(loop_op, sizes);
    p.connect(sizes, fmt);
    p.connect(fmt, sink);
    p.seal();
    p
}

/// Synthetic straight pipeline with exactly `n` operators (paper Fig 1,
/// "Synthetic (40 op.)"; also the Table-I pruning-shape plans).
///
/// Source, then `n - 2` alternating unary operators, then a sink.
pub fn synthetic_pipeline(n: usize, input_tuples: f64) -> LogicalPlan {
    assert!(n >= 2, "pipeline needs at least source + sink");
    const BODY: [OperatorKind; 5] = [
        OperatorKind::Map,
        OperatorKind::Filter,
        OperatorKind::FlatMap,
        OperatorKind::Distinct,
        OperatorKind::Sort,
    ];
    let mut p = LogicalPlan::new();
    let mut prev = p.add_op(Operator::source(OperatorKind::TextFileSource, input_tuples));
    for i in 0..n - 2 {
        // Keep cardinalities bounded: follow every FlatMap blow-up with
        // shrinking kinds further along the rotation.
        let kind = BODY[i % BODY.len()];
        let cur = p.add_op(Operator::new(kind).with_selectivity(match kind {
            OperatorKind::FlatMap => 2.0,
            OperatorKind::Filter => 0.5,
            OperatorKind::Distinct => 0.7,
            _ => 1.0,
        }));
        p.connect(prev, cur);
        prev = cur;
    }
    let sink = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
    p.connect(prev, sink);
    p.seal();
    assert_eq!(p.n_ops(), n);
    p
}

/// Random *connected* DAG for property tests: every non-root operator gets
/// one edge from an earlier operator (connectivity), plus extra forward
/// edges with probability `extra_edge_prob`.
pub fn random_connected_dag(rng: &mut SplitMix64, n: usize, extra_edge_prob: f64) -> LogicalPlan {
    assert!(n >= 2);
    const UNARY: [OperatorKind; 8] = [
        OperatorKind::Map,
        OperatorKind::Filter,
        OperatorKind::FlatMap,
        OperatorKind::Distinct,
        OperatorKind::Sort,
        OperatorKind::Sample,
        OperatorKind::ReduceByKey,
        OperatorKind::GroupByKey,
    ];
    const BINARY: [OperatorKind; 3] = [
        OperatorKind::Join,
        OperatorKind::Union,
        OperatorKind::Intersect,
    ];
    let mut p = LogicalPlan::new();
    let card = 1000.0 + rng.next_f64() * 1e6;
    p.add_op(Operator::source(OperatorKind::TextFileSource, card));
    let mut pending_edges: Vec<(u32, u32)> = Vec::new();
    for i in 1..n {
        let two_inputs = i >= 2 && rng.next_f64() < 0.3;
        let kind = if i == n - 1 {
            OperatorKind::LocalCallbackSink
        } else if two_inputs {
            BINARY[rng.gen_range(BINARY.len())]
        } else {
            UNARY[rng.gen_range(UNARY.len())]
        };
        let id = p.add_op(Operator::new(kind));
        let first = rng.gen_range(i) as u32;
        pending_edges.push((first, id));
        if two_inputs {
            let mut second = rng.gen_range(i) as u32;
            if second == first {
                second = (second + 1) % i as u32;
            }
            pending_edges.push((second, id));
        } else if rng.next_f64() < extra_edge_prob {
            let extra = rng.gen_range(i) as u32;
            if extra != first {
                pending_edges.push((extra, id));
            }
        }
    }
    pending_edges.sort_unstable();
    pending_edges.dedup();
    for (u, v) in pending_edges {
        p.connect(u, v);
    }
    p.seal();
    debug_assert!(p.is_connected());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_operator_counts_match_fig1() {
        assert_eq!(wordcount(1e5).n_ops(), 6);
        assert_eq!(tpch_q3(1e5).n_ops(), 17);
        assert_eq!(synthetic_pipeline(40, 1e5).n_ops(), 40);
        assert_eq!(pagerank(1e5, 10).n_ops(), 6);
        assert_eq!(kmeans(1e5, 10).n_ops(), 6);
    }

    #[test]
    fn iterative_workloads_carry_trip_counts() {
        let pr = pagerank(1e4, 7);
        let km = kmeans(1e4, 3);
        let loop_iters = |p: &LogicalPlan| {
            (0..p.n_ops() as u32)
                .map(|i| p.op(i))
                .find(|o| o.kind == OperatorKind::RepeatLoop)
                .map(|o| o.iterations)
        };
        assert_eq!(loop_iters(&pr), Some(7));
        assert_eq!(loop_iters(&km), Some(3));
        // Every other builder leaves iterations at the inert default.
        assert!((0..6u32).all(|i| wordcount(1e4).op(i).iterations == 0));
    }

    #[test]
    fn random_dags_are_connected_and_sealed() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..50 {
            let n = 2 + rng.gen_range(9);
            let p = random_connected_dag(&mut rng, n, 0.3);
            assert!(p.is_connected());
            assert_eq!(p.n_ops(), n);
            assert!(p.out_card().iter().all(|c| c.is_finite()));
        }
    }
}
