//! The logical dataflow DAG (the paper's LOT — logical operator tree,
//! generalized to a DAG) with cardinality propagation.
//!
//! Cardinalities are estimated once, before enumeration, and are
//! assignment-independent: the enumerator and the feature vectors read them
//! as plain `f64` slices.

use crate::op::Operator;

/// Maximum number of operators a plan may hold. Scope bitsets are `u128`.
pub const MAX_OPS: usize = 128;

/// A logical dataflow plan: operators plus directed dataflow edges.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    ops: Vec<Operator>,
    edges: Vec<(u32, u32)>,
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    /// Estimated input tuples per operator (sum of predecessors' outputs;
    /// `source_cardinality` for sources).
    in_tuples: Vec<f64>,
    /// Estimated output cardinality per operator.
    out_card: Vec<f64>,
    sealed: bool,
}

impl LogicalPlan {
    pub fn new() -> Self {
        LogicalPlan::default()
    }

    /// Add an operator and return its id.
    pub fn add_op(&mut self, op: Operator) -> u32 {
        assert!(!self.sealed, "plan is sealed");
        assert!(self.ops.len() < MAX_OPS, "plan exceeds {MAX_OPS} operators");
        let id = self.ops.len() as u32;
        self.ops.push(op);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Add a dataflow edge `from -> to`.
    pub fn connect(&mut self, from: u32, to: u32) {
        assert!(!self.sealed, "plan is sealed");
        assert!(from != to, "self edge");
        assert!((from as usize) < self.ops.len() && (to as usize) < self.ops.len());
        self.edges.push((from, to));
        self.succs[from as usize].push(to);
        self.preds[to as usize].push(from);
    }

    /// Propagate cardinalities and freeze the plan. Panics on cycles.
    pub fn seal(&mut self) {
        assert!(!self.sealed, "plan already sealed");
        let n = self.ops.len();
        let order = self.topo_order();
        self.in_tuples = vec![0.0; n];
        self.out_card = vec![0.0; n];
        for &id in &order {
            let i = id as usize;
            let input = if self.preds[i].is_empty() {
                self.ops[i].source_cardinality
            } else {
                self.preds[i]
                    .iter()
                    .map(|&p| self.out_card[p as usize])
                    .sum()
            };
            self.in_tuples[i] = input;
            self.out_card[i] = input * self.ops[i].selectivity;
        }
        self.sealed = true;
    }

    /// Deterministic Kahn topological order (FIFO, ready operators queued
    /// in ascending id order): the order `seal` propagates cardinalities
    /// in, and the frontier coordinate system the plan splitter
    /// (`robopt_core::split`) cuts over. Panics on cycles.
    pub fn topo_order(&self) -> Vec<u32> {
        let n = self.ops.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &v in &self.succs[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(order.len(), n, "plan contains a cycle");
        order
    }

    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    #[inline]
    pub fn op(&self, id: u32) -> &Operator {
        &self.ops[id as usize]
    }

    #[inline]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    #[inline]
    pub fn preds(&self, id: u32) -> &[u32] {
        &self.preds[id as usize]
    }

    #[inline]
    pub fn succs(&self, id: u32) -> &[u32] {
        &self.succs[id as usize]
    }

    /// Estimated input tuples per operator. Requires [`LogicalPlan::seal`].
    #[inline]
    pub fn in_tuples(&self) -> &[f64] {
        assert!(self.sealed, "plan not sealed");
        &self.in_tuples
    }

    /// Estimated output cardinality per operator. Requires [`LogicalPlan::seal`].
    #[inline]
    pub fn out_card(&self) -> &[f64] {
        assert!(self.sealed, "plan not sealed");
        &self.out_card
    }

    /// A juncture operator has more than one input or more than one output
    /// (the paper's pipeline/juncture topology distinction).
    #[inline]
    pub fn is_juncture(&self, id: u32) -> bool {
        self.preds[id as usize].len() > 1 || self.succs[id as usize].len() > 1
    }

    /// True if the undirected dataflow graph is connected (the enumerator
    /// requires this to contract the enumeration graph to a single unit).
    pub fn is_connected(&self) -> bool {
        let n = self.ops.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        // lint:allow(index-literal) n == 0 returned early above, so operator 0 exists
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.succs[u as usize]
                .iter()
                .chain(self.preds[u as usize].iter())
            {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OperatorKind;

    #[test]
    fn cardinality_propagation_linear_chain() {
        let mut p = LogicalPlan::new();
        let s = p.add_op(Operator::source(OperatorKind::TextFileSource, 1000.0));
        let f = p.add_op(Operator::new(OperatorKind::Filter)); // sel 0.4
        let m = p.add_op(Operator::new(OperatorKind::Map)); // sel 1.0
        p.connect(s, f);
        p.connect(f, m);
        p.seal();
        assert_eq!(p.out_card()[s as usize], 1000.0);
        assert_eq!(p.out_card()[f as usize], 400.0);
        assert_eq!(p.out_card()[m as usize], 400.0);
        assert_eq!(p.in_tuples()[m as usize], 400.0);
        assert!(p.is_connected());
    }

    #[test]
    fn juncture_detection_and_fanin() {
        let mut p = LogicalPlan::new();
        let a = p.add_op(Operator::source(OperatorKind::TableSource, 100.0));
        let b = p.add_op(Operator::source(OperatorKind::TableSource, 200.0));
        let j = p.add_op(Operator::new(OperatorKind::Join)); // sel 0.05
        p.connect(a, j);
        p.connect(b, j);
        p.seal();
        assert!(p.is_juncture(j));
        assert!(!p.is_juncture(a));
        assert_eq!(p.in_tuples()[j as usize], 300.0);
        assert!((p.out_card()[j as usize] - 15.0).abs() < 1e-12);
    }
}
