//! Topology analysis: pipeline vs. juncture structure and DAG depth.
//!
//! Used by enumeration statistics and the synthetic workload builders; the
//! feature vector reads the per-operator juncture flag straight from the
//! plan (see `robopt-core`).

use crate::dag::LogicalPlan;

/// Summary of a plan's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Operators with fan-in or fan-out greater than one.
    pub juncture_ops: usize,
    /// Operators on straight-line pipeline segments (complement of junctures).
    pub pipeline_ops: usize,
    /// Longest path length in operators.
    pub depth: usize,
}

/// Compute the [`Topology`] of a plan.
pub fn analyze(plan: &LogicalPlan) -> Topology {
    let n = plan.n_ops();
    let juncture_ops = (0..n as u32).filter(|&i| plan.is_juncture(i)).count();
    // Longest path via relaxation to fixpoint (op ids are not guaranteed
    // topological; n <= 128 keeps this cheap).
    let mut depth = vec![0usize; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &(u, v) in plan.edges() {
            let cand = depth[u as usize] + 1;
            if cand > depth[v as usize] {
                depth[v as usize] = cand;
                changed = true;
            }
        }
    }
    let best = depth.iter().copied().max().unwrap_or(0);
    Topology {
        juncture_ops,
        pipeline_ops: n - juncture_ops,
        depth: best + usize::from(n > 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Operator, OperatorKind};

    #[test]
    fn pipeline_has_no_junctures_and_full_depth() {
        let mut p = LogicalPlan::new();
        let s = p.add_op(Operator::source(OperatorKind::TextFileSource, 10.0));
        let m = p.add_op(Operator::new(OperatorKind::Map));
        let k = p.add_op(Operator::new(OperatorKind::LocalCallbackSink));
        p.connect(s, m);
        p.connect(m, k);
        p.seal();
        let t = analyze(&p);
        assert_eq!(t.juncture_ops, 0);
        assert_eq!(t.pipeline_ops, 3);
        assert_eq!(t.depth, 3);
    }
}
