//! The service API value types (DESIGN §10).
//!
//! One request/response pair per verb. Requests are plain data — workload
//! *specs*, not built plans — so they can be hashed into cache keys,
//! rendered over the wire, and replayed deterministically. Responses carry
//! only owned data (names, not `PlatformId`s) so they survive the facade
//! they came from.

use robopt_core::{EnumStats, RiskPolicy};
use robopt_plan::LogicalPlan;
use robopt_vector::SigHasher;

// The workload recipe lives in `robopt_plan` since ISSUE 8 (one constructor
// path for service, figs, and engine); re-exported here so service callers
// keep their import path.
pub use robopt_plan::{SpecError, WorkloadSpec};

use crate::cache::CacheStats;

/// How a request's enumeration executes. Split into two groups:
///
/// * `workers` and `hardware_clamp` schedule work but — by the split-driver
///   determinism contract — **cannot change the result**, so they are
///   excluded from the plan-signature cache key;
/// * `split_parts` and `prune` change the merge tree / search shape (and
///   thus [`EnumStats`]), so they are part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPolicy {
    /// Worker threads for split-based enumeration (≥ 1).
    pub workers: usize,
    /// Plan partition count handed to `robopt_core::SplitOptions`.
    /// `1` disables splitting (serial enumeration on the merger).
    pub split_parts: usize,
    /// Cap workers at `available_parallelism` (on by default).
    pub hardware_clamp: bool,
    /// Def-2 lossless boundary pruning (on by default).
    pub prune: bool,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        ExecutionPolicy {
            workers: 1,
            split_parts: 8,
            hardware_clamp: true,
            prune: true,
        }
    }
}

impl ExecutionPolicy {
    /// Default policy with `workers` worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the plan partition count.
    pub fn with_split_parts(mut self, parts: usize) -> Self {
        self.split_parts = parts.max(1);
        self
    }

    /// Toggle the `available_parallelism` worker cap.
    pub fn with_hardware_clamp(mut self, clamp: bool) -> Self {
        self.hardware_clamp = clamp;
        self
    }

    /// Toggle Def-2 pruning.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Fold the result-affecting fields into a signature hasher.
    /// `workers` / `hardware_clamp` deliberately excluded (see type docs).
    pub(crate) fn write_sig(&self, h: &mut SigHasher) {
        h.write_u64(u64::from(self.prune));
        h.write_u64(self.split_parts as u64);
    }
}

/// Validate and build a workload spec, mapping [`SpecError`] onto the
/// service's typed error — the service never panics on bad input.
pub(crate) fn build_workload(spec: &WorkloadSpec) -> Result<LogicalPlan, ServiceError> {
    spec.build()
        .map_err(|e| ServiceError::InvalidRequest(e.message().to_string()))
}

/// Fold the spec into a signature hasher. A leading per-variant tag keeps
/// e.g. `WordCount{1e7}` and `TpchQ3{1e7}` distinct. Lives here (not on the
/// hoisted spec) because `SigHasher` is a `robopt_vector` type the plan
/// crate does not depend on.
pub(crate) fn write_workload_sig(spec: &WorkloadSpec, h: &mut SigHasher) {
    match *spec {
        WorkloadSpec::WordCount { scale } => {
            h.write_u64(1);
            h.write_f64_bits(scale);
        }
        WorkloadSpec::TpchQ3 { scale } => {
            h.write_u64(2);
            h.write_f64_bits(scale);
        }
        WorkloadSpec::Pipeline { ops, scale } => {
            h.write_u64(3);
            h.write_u64(ops as u64);
            h.write_f64_bits(scale);
        }
        WorkloadSpec::RandomDag { seed, ops, density } => {
            h.write_u64(4);
            h.write_u64(seed);
            h.write_u64(ops as u64);
            h.write_f64_bits(density);
        }
        WorkloadSpec::PageRank { scale, iterations } => {
            h.write_u64(5);
            h.write_f64_bits(scale);
            h.write_u64(u64::from(iterations));
        }
        WorkloadSpec::KMeans { scale, iterations } => {
            h.write_u64(6);
            h.write_f64_bits(scale);
            h.write_u64(u64::from(iterations));
        }
    }
}

/// Optimize one workload under a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeRequest {
    /// What to optimize.
    pub workload: WorkloadSpec,
    /// How to run the enumeration.
    pub policy: ExecutionPolicy,
    /// [`RiskPolicy`] ranking candidate plans (DESIGN §12). `None` means
    /// "use the facade's default" (itself `ExpectedCost` unless `robopt
    /// serve --risk` overrode it); the effective policy is part of the
    /// cache key via [`OptimizeRequest::signature`].
    pub risk: Option<RiskPolicy>,
}

impl OptimizeRequest {
    /// Request with the default [`ExecutionPolicy`].
    pub fn new(workload: WorkloadSpec) -> Self {
        OptimizeRequest {
            workload,
            policy: ExecutionPolicy::default(),
            risk: None,
        }
    }

    /// Override the execution policy.
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Pin a risk policy for this request (overrides the facade default).
    pub fn with_risk(mut self, risk: RiskPolicy) -> Self {
        self.risk = Some(risk);
        self
    }

    /// The plan-signature cache key: a pure function of the workload spec,
    /// the result-affecting policy fields, and the risk policy, built on
    /// the same mixing primitive as Def-2 footprint hashing
    /// ([`SigHasher`]). `risk: None` hashes as `ExpectedCost` — they are
    /// the same computation, so they *should* share a cache line — while
    /// any other policy gets a distinct key: a `MeanPlusKSigma` hit must
    /// never serve an `ExpectedCost` entry.
    pub fn signature(&self) -> u64 {
        let mut h = SigHasher::new();
        write_workload_sig(&self.workload, &mut h);
        self.policy.write_sig(&mut h);
        let (tag, param) = self.risk.unwrap_or(RiskPolicy::ExpectedCost).sig_parts();
        h.write_u64(tag);
        h.write_f64_bits(param);
        h.finish()
    }
}

/// The optimized plan for one [`OptimizeRequest`].
///
/// `PartialEq` compares `cost` by bit pattern, so `==` *is* the
/// bit-identity the cache contract promises ("a cached response equals the
/// cold response"), not an epsilon comparison.
#[derive(Debug, Clone)]
pub struct OptimizeResponse {
    /// Workload label ([`WorkloadSpec::name`]).
    pub workload: String,
    /// The request's plan signature (also the cache key).
    pub signature: u64,
    /// Chosen platform per operator, in op-id order, as registry names.
    pub assignments: Vec<String>,
    /// Number of distinct platforms in the winning plan.
    pub distinct_platforms: usize,
    /// Canonical re-cost of the winning assignment under the active oracle.
    /// Always the distribution *mean* — risk policies change which plan
    /// wins, never how its cost is quoted (DESIGN §12).
    pub cost: f64,
    /// Standard deviation of the winner's cost distribution (zero under a
    /// point-estimate oracle).
    pub cost_std: f64,
    /// 10th-percentile cost of the winner's distribution.
    pub cost_q10: f64,
    /// 90th-percentile cost of the winner's distribution.
    pub cost_q90: f64,
    /// The risk policy that ranked this answer, echoed as its wire label
    /// (`expected`, `sigma<k>`, `q<q>`).
    pub risk_policy: String,
    /// Enumeration counters (invariant across worker counts).
    pub stats: EnumStats,
}

impl PartialEq for OptimizeResponse {
    fn eq(&self, other: &Self) -> bool {
        self.workload == other.workload
            && self.signature == other.signature
            && self.assignments == other.assignments
            && self.distinct_platforms == other.distinct_platforms
            && self.cost.to_bits() == other.cost.to_bits()
            && self.cost_std.to_bits() == other.cost_std.to_bits()
            && self.cost_q10.to_bits() == other.cost_q10.to_bits()
            && self.cost_q90.to_bits() == other.cost_q90.to_bits()
            && self.risk_policy == other.risk_policy
            && self.stats == other.stats
    }
}

/// Where training rows come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainSource {
    /// Direct labelling: one simulator call per row.
    Simulator {
        /// Simulator seed.
        seed: u64,
        /// Multiplicative noise amplitude in `[0, 1)`.
        noise: f64,
    },
    /// TDGEN interpolated generation (many rows per simulator call).
    Tdgen {
        /// Generator seed.
        seed: u64,
    },
}

/// Train a random forest and install it as the facade's cost oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainRequest {
    /// Training-row source.
    pub source: TrainSource,
    /// Number of labelled rows to draw.
    pub rows: usize,
    /// Trees in the forest.
    pub n_trees: usize,
    /// Forest master seed.
    pub forest_seed: u64,
}

impl TrainRequest {
    /// Defaults matching the ml-crate test setup: simulator source
    /// (seed 41, 5 % noise), 24 trees, the forest's default seed.
    pub fn new(rows: usize) -> Self {
        TrainRequest {
            source: TrainSource::Simulator {
                seed: 41,
                noise: 0.05,
            },
            rows,
            n_trees: 24,
            forest_seed: 0x0b5e_55ed,
        }
    }
}

/// Outcome of a [`TrainRequest`]: the model is now the active oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResponse {
    /// Rows actually trained on.
    pub rows: usize,
    /// Trees fitted.
    pub n_trees: usize,
    /// Feature width of the installed model.
    pub width: usize,
    /// Mean squared error on the training rows (fit sanity, not accuracy).
    pub train_mse: f64,
}

/// Simulate a workload under an explicit (or optimized) assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateRequest {
    /// What to run.
    pub workload: WorkloadSpec,
    /// Platform name per operator; empty means "optimize first, then
    /// simulate the winning assignment".
    pub assignments: Vec<String>,
    /// Simulator seed.
    pub seed: u64,
    /// Simulator noise amplitude in `[0, 1)`.
    pub noise: f64,
}

/// Simulated runtime for one assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateResponse {
    /// Workload label.
    pub workload: String,
    /// The assignment that was simulated (resolved names).
    pub assignments: Vec<String>,
    /// Simulated wall seconds (`infinite` ⇒ infeasible, see `feasible`).
    pub seconds: f64,
    /// Whether the assignment was executable (finite runtime).
    pub feasible: bool,
}

/// Which [`robopt_platforms::ExecutionBackend`] answers an
/// [`ExecuteRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendChoice {
    /// The real multi-threaded in-memory engine: measured wall-clock
    /// compute plus deterministically modeled overheads.
    Engine {
        /// Worker threads for partition-parallel operators (≥ 1).
        workers: usize,
    },
    /// The analytic runtime simulator (PR-2): fully deterministic.
    Simulator {
        /// Simulator seed.
        seed: u64,
        /// Multiplicative noise amplitude in `[0, 1)`.
        noise: f64,
    },
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::Engine { workers: 2 }
    }
}

/// Execute a workload on a backend under an explicit (or optimized)
/// assignment — the `execute` service verb (DESIGN §11).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteRequest {
    /// What to run.
    pub workload: WorkloadSpec,
    /// Platform name per operator; empty means "optimize first, then
    /// execute the winning assignment".
    pub assignments: Vec<String>,
    /// Which backend runs the plan.
    pub backend: BackendChoice,
}

impl ExecuteRequest {
    /// Execute on the default backend (engine, 2 workers), optimizing
    /// first to pick the assignment.
    pub fn new(workload: WorkloadSpec) -> Self {
        ExecuteRequest {
            workload,
            assignments: Vec::new(),
            backend: BackendChoice::default(),
        }
    }

    /// Pin an explicit assignment (one platform name per operator).
    pub fn with_assignments(mut self, assignments: Vec<String>) -> Self {
        self.assignments = assignments;
        self
    }

    /// Pick the backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }
}

/// Execution outcome for one assignment — the service rendering of
/// [`robopt_platforms::ExecutionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteResponse {
    /// Workload label.
    pub workload: String,
    /// Backend that produced the numbers (`engine` or `simulator`).
    pub backend: String,
    /// The assignment that was executed (resolved names).
    pub assignments: Vec<String>,
    /// Total runtime in seconds (`infinite` ⇒ infeasible, see `feasible`).
    pub seconds: f64,
    /// Seconds spent in operator work (measured for the engine, modeled
    /// for the simulator).
    pub compute_seconds: f64,
    /// Seconds charged to startup, per-operator fixed costs, conversions,
    /// and loop synchronization — always deterministically modeled.
    pub overhead_seconds: f64,
    /// Whether the assignment was executable on its platforms.
    pub feasible: bool,
    /// `true` when `compute_seconds` came from a wall clock (engine);
    /// `false` when fully modeled (simulator).
    pub measured: bool,
    /// Records delivered to terminal operators (sinks).
    pub output_rows: u64,
    /// Deterministic digest of the terminal output records; `0` for
    /// backends that move no data.
    pub output_digest: u64,
    /// Per-operator seconds, in op-id order.
    pub op_seconds: Vec<f64>,
    /// Per-operator output cardinalities, in op-id order.
    pub op_output_rows: Vec<u64>,
}

/// Optimize a workload, then pit the mixed-platform winner against every
/// single-platform execution (the Fig-2 experiment as a service verb).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareRequest {
    /// What to compare.
    pub workload: WorkloadSpec,
    /// Enumeration policy for the mixed optimization.
    pub policy: ExecutionPolicy,
    /// Seed for the runtime simulation of every plan.
    pub sim_seed: u64,
}

/// One single-platform contender in a [`CompareResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePlatformPlan {
    /// Platform name.
    pub platform: String,
    /// Oracle cost, or `None` if the platform cannot run the whole plan.
    pub cost: Option<f64>,
    /// Simulated seconds, or `None` if infeasible.
    pub sim_seconds: Option<f64>,
}

/// Mixed-vs-single-platform comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareResponse {
    /// Workload label.
    pub workload: String,
    /// The mixed-platform optimum.
    pub mixed: OptimizeResponse,
    /// Platform mix of the winner, e.g. `flink:3+postgres:2`.
    pub mix: String,
    /// Simulated seconds of the mixed plan.
    pub mixed_sim_seconds: f64,
    /// Every single-platform contender, in registry order.
    pub singles: Vec<SinglePlatformPlan>,
    /// Cheapest feasible single-platform oracle cost, if any.
    pub best_single_cost: Option<f64>,
    /// Whether the mixed plan strictly beats every single platform.
    pub mixed_wins: bool,
}

/// Service telemetry snapshot (the `stats` wire verb).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsResponse {
    /// Requests served since construction.
    pub requests: u64,
    /// Plan-signature cache counters.
    pub cache: CacheStats,
    /// Cumulative wall-clock telemetry in microseconds. Reported only —
    /// never feeds optimization, caching, or any other response field.
    pub total_micros: u64,
}

/// Every way a service request can fail. The facade returns these instead
/// of panicking; the wire layer renders them as `{"ok":false,...}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Request parameters outside their documented domain.
    InvalidRequest(String),
    /// An assignment named a platform the registry does not have.
    UnknownPlatform(String),
    /// An explicit assignment's length does not match the plan.
    AssignmentLength {
        /// Operators in the plan.
        expected: usize,
        /// Names supplied.
        got: usize,
    },
    /// A model could not be installed (wrong width, failed validation).
    BadModel(String),
    /// A wire-level request could not be parsed.
    Parse(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::UnknownPlatform(name) => write!(f, "unknown platform: {name}"),
            ServiceError::AssignmentLength { expected, got } => {
                write!(
                    f,
                    "assignment length {got} != plan operator count {expected}"
                )
            }
            ServiceError::BadModel(msg) => write!(f, "bad model: {msg}"),
            ServiceError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_ignores_workers_and_clamp_but_not_prune_or_split() {
        let base = OptimizeRequest::new(WorkloadSpec::WordCount { scale: 1e7 });
        let sig = base.signature();
        let workers = base.with_policy(ExecutionPolicy::default().with_workers(8));
        let clamp = base.with_policy(ExecutionPolicy::default().with_hardware_clamp(false));
        assert_eq!(sig, workers.signature(), "workers must not change the key");
        assert_eq!(sig, clamp.signature(), "clamp must not change the key");
        let noprune = base.with_policy(ExecutionPolicy::default().with_prune(false));
        let resplit = base.with_policy(ExecutionPolicy::default().with_split_parts(3));
        assert_ne!(sig, noprune.signature(), "prune is part of the key");
        assert_ne!(sig, resplit.signature(), "split_parts is part of the key");
    }

    #[test]
    fn signature_distinguishes_workloads_sharing_field_values() {
        let wc = OptimizeRequest::new(WorkloadSpec::WordCount { scale: 1e6 });
        let q3 = OptimizeRequest::new(WorkloadSpec::TpchQ3 { scale: 1e6 });
        assert_ne!(wc.signature(), q3.signature());
        let a = OptimizeRequest::new(WorkloadSpec::Pipeline { ops: 8, scale: 1e5 });
        let b = OptimizeRequest::new(WorkloadSpec::Pipeline { ops: 9, scale: 1e5 });
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn workload_specs_validate_before_building() {
        assert!(WorkloadSpec::WordCount { scale: 1e7 }.build().is_ok());
        assert!(WorkloadSpec::WordCount { scale: 0.0 }.build().is_err());
        assert!(WorkloadSpec::WordCount { scale: f64::NAN }.build().is_err());
        assert!(WorkloadSpec::Pipeline { ops: 1, scale: 1e5 }
            .build()
            .is_err());
        assert!(WorkloadSpec::Pipeline {
            ops: 999,
            scale: 1e5
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::RandomDag {
            seed: 7,
            ops: 24,
            density: 1.5
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::RandomDag {
            seed: 7,
            ops: 24,
            density: 0.3
        }
        .build()
        .is_ok());
    }

    #[test]
    fn optimize_response_equality_is_bitwise_on_cost() {
        let mk = |cost: f64, std: f64| OptimizeResponse {
            workload: "w".to_string(),
            signature: 1,
            assignments: vec!["p".to_string()],
            distinct_platforms: 1,
            cost,
            cost_std: std,
            cost_q10: cost,
            cost_q90: cost,
            risk_policy: "expected".to_string(),
            stats: EnumStats::default(),
        };
        assert_eq!(mk(1.5, 0.0), mk(1.5, 0.0));
        assert_ne!(mk(0.0, 0.0), mk(-0.0, 0.0), "0.0 and -0.0 differ bitwise");
        assert_ne!(mk(1.5, 0.0), mk(1.5, -0.0), "cost_std is bitwise too");
    }

    #[test]
    fn signature_separates_risk_policies_but_not_the_default_spelling() {
        let base = OptimizeRequest::new(WorkloadSpec::WordCount { scale: 1e7 });
        // `None` and an explicit `ExpectedCost` are the same computation —
        // one cache line.
        assert_eq!(
            base.signature(),
            base.with_risk(RiskPolicy::ExpectedCost).signature()
        );
        // Every other policy (and parameter) is a distinct key.
        let sigma = base.with_risk(RiskPolicy::MeanPlusKSigma(1.5));
        let sigma2 = base.with_risk(RiskPolicy::MeanPlusKSigma(2.0));
        let q90 = base.with_risk(RiskPolicy::Quantile(0.9));
        assert_ne!(base.signature(), sigma.signature());
        assert_ne!(sigma.signature(), sigma2.signature());
        assert_ne!(sigma.signature(), q90.signature());
        assert_ne!(base.signature(), q90.signature());
    }
}
