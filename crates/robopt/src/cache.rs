//! Plan-signature memoization (DESIGN §10).
//!
//! [`PlanCache`] maps [`crate::api::OptimizeRequest::signature`] keys to
//! finished [`OptimizeResponse`]s with the same open-addressing scheme as
//! `robopt_vector::FootprintTable`: a power-of-two slot array of
//! entry-index-plus-one handles over an insertion-ordered entry vector.
//! Slots are sized at twice capacity up front, so the load factor never
//! exceeds ½ and probes always terminate at an empty slot.
//!
//! # Eviction
//!
//! When full, the entry with the smallest **benefit score** is evicted:
//!
//! ```text
//! score(e) = work(e) × (last_tick(e) + 1)
//! ```
//!
//! where `work` is the enumeration's `generated` counter — a deterministic
//! proxy for the cost a hit saves — and `last_tick` is the facade's logical
//! request counter at the entry's last touch. Wall-clock time never enters
//! the score, so eviction order is a pure function of the request stream
//! (ties break toward the oldest entry index). "Cheap and cold" falls out
//! first; "expensive or hot" survives.

use robopt_plan::rng::mix64;

use crate::api::OptimizeResponse;

/// Counter snapshot reported by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached response.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by benefit-weighted eviction.
    pub evictions: u64,
    /// Fresh insertions (replacements of an existing key not included).
    pub insertions: u64,
    /// Live entries.
    pub len: usize,
    /// Maximum live entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: u64,
    value: OptimizeResponse,
    /// Deterministic recompute-cost proxy (enumeration `generated`).
    work: u64,
    /// Logical tick of the last touch (insert or hit).
    last_tick: u64,
}

/// Deterministic plan-signature → response cache. See the module docs.
#[derive(Debug, Clone)]
pub struct PlanCache {
    /// `slots[i] == 0` means empty, else `entry index + 1`.
    slots: Vec<u32>,
    entries: Vec<Entry>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl PlanCache {
    /// Default entry capacity for the service facade.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A cache holding at most `capacity` responses. `0` disables storage
    /// (every lookup misses, inserts are dropped) while keeping counters.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            slots: vec![0; slot_len(capacity)],
            entries: Vec::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Maximum live entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry (model swap, explicit flush); counters survive so
    /// telemetry spans flushes.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.slots.fill(0);
    }

    /// Zero the hit/miss/eviction/insertion counters.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.insertions = 0;
    }

    /// Look up `key`, touching its recency to `tick` on a hit.
    pub fn lookup(&mut self, key: u64, tick: u64) -> Option<OptimizeResponse> {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.get_mut(i)?;
                entry.last_tick = tick;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key → value`. `work` is the deterministic
    /// recompute-cost proxy; `tick` stamps recency. Evicts the minimum
    /// benefit-score entry when at capacity.
    pub fn insert(&mut self, key: u64, value: OptimizeResponse, work: u64, tick: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.find(key) {
            if let Some(entry) = self.entries.get_mut(i) {
                entry.value = value;
                entry.work = work;
                entry.last_tick = tick;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            self.evict_min();
        }
        let idx = self.entries.len() as u32;
        self.entries.push(Entry {
            key,
            value,
            work,
            last_tick: tick,
        });
        self.seat(key, idx);
        self.insertions += 1;
    }

    /// Entry index for `key`, probing from its home slot.
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut slot = mix64(key) as usize & mask;
        loop {
            let handle = *self.slots.get(slot)?;
            if handle == 0 {
                return None;
            }
            let i = handle as usize - 1;
            if self.entries.get(i).map(|e| e.key) == Some(key) {
                return Some(i);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Seat `entry index + 1` in the first free probe slot for `key`.
    fn seat(&mut self, key: u64, idx: u32) {
        let mask = self.slots.len() - 1;
        let mut slot = mix64(key) as usize & mask;
        loop {
            match self.slots.get_mut(slot) {
                Some(handle) if *handle == 0 => {
                    *handle = idx + 1;
                    return;
                }
                Some(_) => slot = (slot + 1) & mask,
                // Unreachable — load factor ≤ ½ guarantees a free slot —
                // but degrade to a dropped seat rather than spin.
                None => return,
            }
        }
    }

    /// Evict the entry with the minimum benefit score (ties → lowest
    /// entry index, i.e. the oldest insertion still alive).
    fn evict_min(&mut self) {
        let mut victim = 0usize;
        let mut best = u128::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            let score = u128::from(e.work) * (u128::from(e.last_tick) + 1);
            if score < best {
                best = score;
                victim = i;
            }
        }
        self.entries.swap_remove(victim);
        self.evictions += 1;
        // swap_remove renumbered the moved tail entry; rebuild the slot
        // array from scratch (rare: once per eviction, O(capacity)).
        self.slots.fill(0);
        for i in 0..self.entries.len() {
            let key = self.entries.get(i).map(|e| e.key);
            if let Some(key) = key {
                self.seat(key, i as u32);
            }
        }
    }
}

/// Slot-array length: next power of two ≥ `2 × capacity`, floored at 16.
fn slot_len(capacity: usize) -> usize {
    capacity.saturating_mul(2).next_power_of_two().max(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_core::EnumStats;

    fn resp(tag: &str, cost: f64) -> OptimizeResponse {
        OptimizeResponse {
            workload: tag.to_string(),
            signature: 0,
            assignments: vec![tag.to_string()],
            distinct_platforms: 1,
            cost,
            cost_std: 0.0,
            cost_q10: cost,
            cost_q90: cost,
            risk_policy: "expected".to_string(),
            stats: EnumStats::default(),
        }
    }

    #[test]
    fn hit_and_miss_counters_are_exact() {
        let mut cache = PlanCache::new(8);
        assert!(cache.lookup(1, 1).is_none());
        cache.insert(1, resp("a", 1.0), 10, 1);
        assert!(cache.lookup(1, 2).is_some());
        assert!(cache.lookup(1, 3).is_some());
        assert!(cache.lookup(2, 4).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.len), (2, 2, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn colliding_keys_in_one_bucket_stay_distinct() {
        let mut cache = PlanCache::new(8);
        let mask = cache.slots.len() - 1;
        let home = mix64(11) as usize & mask;
        // Find a second key that probes from the same home slot.
        let other = (12..)
            .find(|&k| (mix64(k) as usize & mask) == home)
            .unwrap_or(11);
        assert_ne!(other, 11);
        cache.insert(11, resp("first", 1.0), 1, 1);
        cache.insert(other, resp("second", 2.0), 1, 2);
        let a = cache.lookup(11, 3).expect("first key present");
        let b = cache.lookup(other, 4).expect("second key present");
        assert_eq!(a.workload, "first");
        assert_eq!(b.workload, "second");
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn eviction_removes_minimum_benefit_and_counts_it() {
        let mut cache = PlanCache::new(2);
        // work × (tick + 1): a → 100×2, b → 10×3 (minimum), insert c.
        cache.insert(1, resp("a", 1.0), 100, 1);
        cache.insert(2, resp("b", 2.0), 10, 2);
        cache.insert(3, resp("c", 3.0), 50, 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(2, 4).is_none(), "b had the lowest score");
        assert!(cache.lookup(1, 5).is_some());
        assert!(cache.lookup(3, 6).is_some());
    }

    #[test]
    fn a_hit_refreshes_recency_and_saves_the_entry() {
        let mut cache = PlanCache::new(2);
        cache.insert(1, resp("a", 1.0), 10, 1);
        cache.insert(2, resp("b", 2.0), 10, 2);
        // Touch a far later: its score now dwarfs b's despite equal work.
        assert!(cache.lookup(1, 50).is_some());
        cache.insert(3, resp("c", 3.0), 10, 51);
        assert!(cache.lookup(1, 52).is_some(), "refreshed entry survives");
        assert!(cache.lookup(2, 53).is_none(), "stale entry evicted");
    }

    #[test]
    fn reinserting_a_key_replaces_without_growing() {
        let mut cache = PlanCache::new(4);
        cache.insert(7, resp("old", 1.0), 1, 1);
        cache.insert(7, resp("new", 2.0), 1, 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats().insertions,
            1,
            "replacement is not an insertion"
        );
        assert_eq!(cache.lookup(7, 3).map(|r| r.workload), Some("new".into()));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = PlanCache::new(0);
        cache.insert(1, resp("a", 1.0), 1, 1);
        assert!(cache.lookup(1, 2).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut cache = PlanCache::new(4);
        cache.insert(1, resp("a", 1.0), 1, 1);
        assert!(cache.lookup(1, 2).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.lookup(1, 3).is_none());
    }
}
