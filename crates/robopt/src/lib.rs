//! `robopt`: the optimizer-as-a-service umbrella crate (DESIGN §10).
//!
//! Everything underneath — plan building, Fig-5 vectorization, lossless
//! enumeration, split-based parallelism, the learned forest — stays in its
//! own crate; this crate owns the *service contract* that callers (the CLI
//! daemon, the fig benchmarks, the integration tests) speak:
//!
//! * [`api`] — the request/response value types ([`OptimizeRequest`] /
//!   [`OptimizeResponse`] and friends) plus [`ExecutionPolicy`] and
//!   [`WorkloadSpec`], replacing ad-hoc `EnumOptions` + enumerator + oracle
//!   plumbing at every call site;
//! * [`optimizer`] — the [`Optimizer`] facade: owns the registry, the cost
//!   model (analytic or trained forest behind `&dyn CostOracle`), the
//!   warmed per-part matrix pools of one [`robopt_core::ParallelEnumerator`],
//!   and the plan-signature cache; batches forest inference across
//!   concurrent requests via `cost_batch`;
//! * [`cache`] — [`PlanCache`], deterministic open-addressed plan-signature
//!   memoization with benefit-weighted eviction and hit/miss counters;
//! * [`json`] — a dependency-free JSON value/parser pair for the wire
//!   protocol and model persistence (numbers kept as raw text so `u64` bit
//!   patterns survive exactly);
//! * [`persist`] — hand-rendered JSON round-trip for the random forest
//!   (`f64`s stored as bit-pattern integers: save → load → `predict_batch`
//!   is bit-identical);
//! * [`wire`] — line-delimited request parsing and response rendering for
//!   `robopt serve` and the one-shot CLI subcommands.
//!
//! # Determinism
//!
//! A cached response is the *same bytes* as a cold one: responses compare
//! cost by `f64::to_bits`, the cache key excludes knobs that cannot change
//! the result (worker count, hardware clamp), and enumeration always runs
//! through the split-based driver whose output is bit-identical across
//! thread counts. `tests/determinism.rs` digests cache-on and cache-off
//! streams and asserts equality.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod api;
pub mod cache;
pub mod json;
pub mod optimizer;
pub mod persist;
pub mod wire;

pub use api::{
    BackendChoice, CompareRequest, CompareResponse, ExecuteRequest, ExecuteResponse,
    ExecutionPolicy, OptimizeRequest, OptimizeResponse, ServiceError, SimulateRequest,
    SimulateResponse, SinglePlatformPlan, StatsResponse, TrainRequest, TrainResponse, TrainSource,
    WorkloadSpec,
};
pub use cache::{CacheStats, PlanCache};
pub use optimizer::Optimizer;
pub use persist::{forest_from_json, forest_to_json, PersistError};
pub use robopt_core::{CostDistribution, RiskPolicy};
pub use wire::{parse_request, render_response, Request, Response};
