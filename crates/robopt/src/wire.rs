//! Line-delimited wire protocol for `robopt serve` (DESIGN §10).
//!
//! One JSON object per line in, one per line out. Requests name a verb via
//! `"op"`; responses always carry `"ok"` plus `"kind"` echoing the verb.
//! Rendering is hand-rolled and deterministic: fields appear in struct
//! declaration order, `f64`s use Rust's shortest-round-trip formatting
//! (which `crate::json` parses back to the same bits), and `cost` is
//! additionally mirrored as a `cost_bits` integer so bit-identity survives
//! any JSON intermediary.
//!
//! The `response-serialize-total` lint rule checks this module: every
//! public field of every `*Response` type must appear as a quoted key in
//! some renderer here, so a field added to the API cannot silently vanish
//! from the wire.

use crate::api::{
    BackendChoice, CompareRequest, CompareResponse, ExecuteRequest, ExecuteResponse,
    ExecutionPolicy, OptimizeRequest, OptimizeResponse, ServiceError, SimulateRequest,
    SimulateResponse, StatsResponse, TrainRequest, TrainResponse, TrainSource, WorkloadSpec,
};
use crate::json::{self, escape_into, JsonValue};
use robopt_core::RiskPolicy;

/// A parsed service request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op":"optimize", "workload":{...}, "policy":{...}}`
    Optimize(OptimizeRequest),
    /// `{"op":"train", ...}`
    Train(TrainRequest),
    /// `{"op":"simulate", ...}`
    Simulate(SimulateRequest),
    /// `{"op":"execute", "workload":{...}, "backend":"engine", ...}`
    Execute(ExecuteRequest),
    /// `{"op":"compare", ...}`
    Compare(CompareRequest),
    /// `{"op":"stats"}`
    Stats,
    /// `{"op":"quit"}` — ends a serve session.
    Quit,
}

/// A response ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Optimization result.
    Optimize(OptimizeResponse),
    /// Training result.
    Train(TrainResponse),
    /// Simulation result.
    Simulate(SimulateResponse),
    /// Execution result.
    Execute(ExecuteResponse),
    /// Comparison result.
    Compare(CompareResponse),
    /// Telemetry snapshot.
    Stats(StatsResponse),
    /// Any failure.
    Error(ServiceError),
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let doc = json::parse(line).map_err(|e| ServiceError::Parse(e.to_string()))?;
    let op = doc
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServiceError::Parse("missing \"op\" field".to_string()))?;
    match op {
        "optimize" => Ok(Request::Optimize(OptimizeRequest {
            workload: parse_workload(&doc)?,
            policy: parse_policy(&doc),
            risk: match doc.get("risk").and_then(JsonValue::as_str) {
                Some(text) => Some(RiskPolicy::parse(text).map_err(ServiceError::Parse)?),
                None => None,
            },
        })),
        "train" => {
            let defaults = TrainRequest::new(field_usize(&doc, "rows").unwrap_or(512));
            let source = match doc.get("source").and_then(JsonValue::as_str) {
                None | Some("simulator") => TrainSource::Simulator {
                    seed: field_u64(&doc, "seed").unwrap_or(41),
                    noise: field_f64(&doc, "noise").unwrap_or(0.05),
                },
                Some("tdgen") => TrainSource::Tdgen {
                    seed: field_u64(&doc, "seed").unwrap_or(41),
                },
                Some(other) => {
                    return Err(ServiceError::Parse(format!(
                        "unknown training source {other:?}"
                    )))
                }
            };
            Ok(Request::Train(TrainRequest {
                source,
                rows: defaults.rows,
                n_trees: field_usize(&doc, "n_trees").unwrap_or(defaults.n_trees),
                forest_seed: field_u64(&doc, "forest_seed").unwrap_or(defaults.forest_seed),
            }))
        }
        "simulate" => Ok(Request::Simulate(SimulateRequest {
            workload: parse_workload(&doc)?,
            assignments: parse_assignments(&doc),
            seed: field_u64(&doc, "seed").unwrap_or(42),
            noise: field_f64(&doc, "noise").unwrap_or(0.0),
        })),
        "execute" => Ok(Request::Execute(ExecuteRequest {
            workload: parse_workload(&doc)?,
            assignments: parse_assignments(&doc),
            backend: match doc.get("backend").and_then(JsonValue::as_str) {
                None | Some("engine") => BackendChoice::Engine {
                    workers: field_usize(&doc, "workers").unwrap_or(2),
                },
                Some("simulator") => BackendChoice::Simulator {
                    seed: field_u64(&doc, "seed").unwrap_or(42),
                    noise: field_f64(&doc, "noise").unwrap_or(0.0),
                },
                Some(other) => {
                    return Err(ServiceError::Parse(format!("unknown backend {other:?}")))
                }
            },
        })),
        "compare" => Ok(Request::Compare(CompareRequest {
            workload: parse_workload(&doc)?,
            policy: parse_policy(&doc),
            sim_seed: field_u64(&doc, "sim_seed").unwrap_or(42),
        })),
        "stats" => Ok(Request::Stats),
        "quit" => Ok(Request::Quit),
        other => Err(ServiceError::Parse(format!("unknown op {other:?}"))),
    }
}

/// Render one response as a single JSON line (no trailing newline).
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Optimize(r) => {
            let mut s = String::from("{\"ok\":true,\"kind\":\"optimize\",");
            push_optimize_fields(&mut s, r);
            s.push('}');
            s
        }
        Response::Train(r) => format!(
            "{{\"ok\":true,\"kind\":\"train\",\"rows\":{},\"n_trees\":{},\"width\":{},\
             \"train_mse\":{}}}",
            r.rows,
            r.n_trees,
            r.width,
            num(r.train_mse)
        ),
        Response::Simulate(r) => {
            let mut s = String::from("{\"ok\":true,\"kind\":\"simulate\",\"workload\":");
            push_str_value(&mut s, &r.workload);
            s.push_str(",\"assignments\":");
            push_str_array(&mut s, &r.assignments);
            s.push_str(&format!(
                ",\"seconds\":{},\"feasible\":{}}}",
                num(r.seconds),
                r.feasible
            ));
            s
        }
        Response::Execute(r) => {
            let mut s = String::from("{\"ok\":true,\"kind\":\"execute\",\"workload\":");
            push_str_value(&mut s, &r.workload);
            s.push_str(",\"backend\":");
            push_str_value(&mut s, &r.backend);
            s.push_str(",\"assignments\":");
            push_str_array(&mut s, &r.assignments);
            s.push_str(&format!(
                ",\"seconds\":{},\"compute_seconds\":{},\"overhead_seconds\":{},\
                 \"feasible\":{},\"measured\":{},\"output_rows\":{},\"output_digest\":{}",
                num(r.seconds),
                num(r.compute_seconds),
                num(r.overhead_seconds),
                r.feasible,
                r.measured,
                r.output_rows,
                r.output_digest
            ));
            s.push_str(",\"op_seconds\":");
            push_num_array(&mut s, &r.op_seconds);
            s.push_str(",\"op_output_rows\":");
            push_u64_array(&mut s, &r.op_output_rows);
            s.push('}');
            s
        }
        Response::Compare(r) => {
            let mut s = String::from("{\"ok\":true,\"kind\":\"compare\",\"workload\":");
            push_str_value(&mut s, &r.workload);
            s.push_str(",\"mixed\":{");
            push_optimize_fields(&mut s, &r.mixed);
            s.push_str("},\"mix\":");
            push_str_value(&mut s, &r.mix);
            s.push_str(&format!(
                ",\"mixed_sim_seconds\":{}",
                num(r.mixed_sim_seconds)
            ));
            s.push_str(",\"singles\":[");
            for (i, single) in r.singles.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"platform\":");
                push_str_value(&mut s, &single.platform);
                s.push_str(&format!(
                    ",\"cost\":{},\"sim_seconds\":{}}}",
                    opt_num(single.cost),
                    opt_num(single.sim_seconds)
                ));
            }
            s.push_str(&format!(
                "],\"best_single_cost\":{},\"mixed_wins\":{}}}",
                opt_num(r.best_single_cost),
                r.mixed_wins
            ));
            s
        }
        Response::Stats(r) => format!(
            "{{\"ok\":true,\"kind\":\"stats\",\"requests\":{},\"cache\":{{\
             \"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{},\
             \"len\":{},\"capacity\":{},\"hit_rate\":{}}},\"total_micros\":{}}}",
            r.requests,
            r.cache.hits,
            r.cache.misses,
            r.cache.evictions,
            r.cache.insertions,
            r.cache.len,
            r.cache.capacity,
            num(r.cache.hit_rate()),
            r.total_micros
        ),
        Response::Error(e) => {
            let mut s = String::from("{\"ok\":false,\"error\":");
            push_str_value(&mut s, &e.to_string());
            s.push('}');
            s
        }
    }
}

/// The shared body of an optimize response (also nested in `compare`).
/// `cost` is mirrored as `cost_bits` so consumers that must preserve
/// bit-identity never depend on decimal formatting.
fn push_optimize_fields(s: &mut String, r: &OptimizeResponse) {
    s.push_str("\"workload\":");
    push_str_value(s, &r.workload);
    s.push_str(&format!(",\"signature\":{}", r.signature));
    s.push_str(",\"assignments\":");
    push_str_array(s, &r.assignments);
    s.push_str(&format!(
        ",\"distinct_platforms\":{},\"cost\":{},\"cost_bits\":{},\
         \"cost_std\":{},\"cost_q10\":{},\"cost_q90\":{}",
        r.distinct_platforms,
        num(r.cost),
        r.cost.to_bits(),
        num(r.cost_std),
        num(r.cost_q10),
        num(r.cost_q90)
    ));
    s.push_str(",\"risk_policy\":");
    push_str_value(s, &r.risk_policy);
    s.push_str(&format!(
        ",\"stats\":{{\"generated\":{},\"kept\":{},\"merges\":{},\"peak_rows\":{}}}",
        r.stats.generated, r.stats.kept, r.stats.merges, r.stats.peak_rows
    ));
}

/// Shortest-round-trip JSON number for a finite `f64`, `null` otherwise.
/// Rust's `{:?}` float formatting is guaranteed to re-parse to the same
/// bits, so finite values survive the wire exactly.
fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` may omit the exponent form JSON requires nothing of, but
        // always yields a valid JSON number for finite values.
        s
    } else {
        "null".to_string()
    }
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(x) => num(x),
        None => "null".to_string(),
    }
}

fn push_str_value(s: &mut String, text: &str) {
    s.push('"');
    escape_into(s, text);
    s.push('"');
}

fn push_str_array(s: &mut String, items: &[String]) {
    s.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_str_value(s, item);
    }
    s.push(']');
}

fn push_num_array(s: &mut String, items: &[f64]) {
    s.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&num(*item));
    }
    s.push(']');
}

fn push_u64_array(s: &mut String, items: &[u64]) {
    s.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&item.to_string());
    }
    s.push(']');
}

fn parse_workload(doc: &JsonValue) -> Result<WorkloadSpec, ServiceError> {
    let w = doc
        .get("workload")
        .ok_or_else(|| ServiceError::Parse("missing \"workload\" object".to_string()))?;
    let kind = w
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServiceError::Parse("workload missing \"kind\"".to_string()))?;
    match kind {
        "wordcount" => Ok(WorkloadSpec::WordCount {
            scale: field_f64(w, "scale").unwrap_or(1e7),
        }),
        "tpch_q3" => Ok(WorkloadSpec::TpchQ3 {
            scale: field_f64(w, "scale").unwrap_or(1e6),
        }),
        "pipeline" => Ok(WorkloadSpec::Pipeline {
            ops: field_usize(w, "ops").unwrap_or(16),
            scale: field_f64(w, "scale").unwrap_or(1e5),
        }),
        "random_dag" => Ok(WorkloadSpec::RandomDag {
            seed: field_u64(w, "seed").unwrap_or(1),
            ops: field_usize(w, "ops").unwrap_or(16),
            density: field_f64(w, "density").unwrap_or(0.3),
        }),
        "pagerank" => Ok(WorkloadSpec::PageRank {
            scale: field_f64(w, "scale").unwrap_or(1e5),
            iterations: field_u32(w, "iterations").unwrap_or(10),
        }),
        "kmeans" => Ok(WorkloadSpec::KMeans {
            scale: field_f64(w, "scale").unwrap_or(1e5),
            iterations: field_u32(w, "iterations").unwrap_or(10),
        }),
        other => Err(ServiceError::Parse(format!(
            "unknown workload kind {other:?}"
        ))),
    }
}

fn parse_policy(doc: &JsonValue) -> ExecutionPolicy {
    let mut policy = ExecutionPolicy::default();
    if let Some(p) = doc.get("policy") {
        if let Some(workers) = field_usize(p, "workers") {
            policy = policy.with_workers(workers);
        }
        if let Some(parts) = field_usize(p, "split_parts") {
            policy = policy.with_split_parts(parts);
        }
        if let Some(prune) = p.get("prune").and_then(JsonValue::as_bool) {
            policy = policy.with_prune(prune);
        }
        if let Some(clamp) = p.get("hardware_clamp").and_then(JsonValue::as_bool) {
            policy = policy.with_hardware_clamp(clamp);
        }
    }
    policy
}

fn field_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_u64)
}

fn field_usize(v: &JsonValue, key: &str) -> Option<usize> {
    v.get(key).and_then(JsonValue::as_usize)
}

fn field_u32(v: &JsonValue, key: &str) -> Option<u32> {
    field_u64(v, key).and_then(|n| u32::try_from(n).ok())
}

/// The optional `"assignments"` string array shared by simulate/execute.
fn parse_assignments(doc: &JsonValue) -> Vec<String> {
    doc.get("assignments")
        .and_then(JsonValue::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_request_round_trips_through_the_wire() {
        let req = parse_request(
            r#"{"op":"optimize","workload":{"kind":"wordcount","scale":1e7},"policy":{"workers":4,"split_parts":8,"prune":true}}"#,
        )
        .expect("parse");
        assert_eq!(
            req,
            Request::Optimize(OptimizeRequest {
                workload: WorkloadSpec::WordCount { scale: 1e7 },
                policy: ExecutionPolicy::default()
                    .with_workers(4)
                    .with_split_parts(8),
                risk: None,
            })
        );
    }

    #[test]
    fn risk_policies_parse_from_the_wire_and_garbage_is_rejected() {
        let req = parse_request(
            r#"{"op":"optimize","workload":{"kind":"wordcount","scale":1e6},"risk":"sigma1.5"}"#,
        )
        .expect("parse risk");
        assert_eq!(
            req,
            Request::Optimize(
                OptimizeRequest {
                    workload: WorkloadSpec::WordCount { scale: 1e6 },
                    policy: ExecutionPolicy::default(),
                    risk: None,
                }
                .with_risk(RiskPolicy::MeanPlusKSigma(1.5))
            )
        );
        for bad in [
            r#"{"op":"optimize","workload":{"kind":"wordcount"},"risk":"wild"}"#,
            r#"{"op":"optimize","workload":{"kind":"wordcount"},"risk":"q1.5"}"#,
            r#"{"op":"optimize","workload":{"kind":"wordcount"},"risk":"sigma-3"}"#,
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Parse(_))),
                "{bad:?} should be a parse error"
            );
        }
    }

    #[test]
    fn malformed_requests_yield_parse_errors() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"optimize"}"#,
            r#"{"op":"optimize","workload":{"kind":"mystery"}}"#,
            r#"{"op":"train","source":"oracle"}"#,
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Parse(_))),
                "{bad:?} should be a parse error"
            );
        }
    }

    #[test]
    fn rendered_responses_are_valid_json_and_carry_cost_bits() {
        let resp = Response::Optimize(OptimizeResponse {
            workload: "wordcount(1e7)".to_string(),
            signature: 123,
            assignments: vec!["java".to_string(), "spark".to_string()],
            distinct_platforms: 2,
            cost: 0.1 + 0.2,
            cost_std: 0.25,
            cost_q10: 0.2,
            cost_q90: 0.4,
            risk_policy: "sigma1.5".to_string(),
            stats: Default::default(),
        });
        let line = render_response(&resp);
        let doc = crate::json::parse(&line).expect("renderer must emit valid JSON");
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        let bits = doc
            .get("cost_bits")
            .and_then(JsonValue::as_u64)
            .expect("cost_bits");
        assert_eq!(bits, (0.1f64 + 0.2).to_bits(), "bit-exact cost transport");
        let cost = doc.get("cost").and_then(JsonValue::as_f64).expect("cost");
        assert_eq!(cost.to_bits(), bits, "shortest-round-trip decimal agrees");
        // The uncertainty fields ride the same line (lint rule 15: every
        // public response field must be wire-rendered).
        assert_eq!(
            doc.get("cost_std").and_then(JsonValue::as_f64),
            Some(0.25),
            "cost_std on the wire"
        );
        assert_eq!(doc.get("cost_q10").and_then(JsonValue::as_f64), Some(0.2));
        assert_eq!(doc.get("cost_q90").and_then(JsonValue::as_f64), Some(0.4));
        assert_eq!(
            doc.get("risk_policy").and_then(JsonValue::as_str),
            Some("sigma1.5")
        );
    }

    #[test]
    fn execute_request_parses_backends_and_iterative_workloads() {
        let engine = parse_request(
            r#"{"op":"execute","workload":{"kind":"pagerank","scale":2e4,"iterations":5},"workers":4}"#,
        )
        .expect("parse engine execute");
        assert_eq!(
            engine,
            Request::Execute(ExecuteRequest {
                workload: WorkloadSpec::PageRank {
                    scale: 2e4,
                    iterations: 5,
                },
                assignments: Vec::new(),
                backend: BackendChoice::Engine { workers: 4 },
            })
        );
        let sim = parse_request(
            r#"{"op":"execute","workload":{"kind":"kmeans","scale":1e4},"backend":"simulator","seed":7,"noise":0.1,"assignments":["java","java"]}"#,
        )
        .expect("parse simulator execute");
        assert_eq!(
            sim,
            Request::Execute(ExecuteRequest {
                workload: WorkloadSpec::KMeans {
                    scale: 1e4,
                    iterations: 10,
                },
                assignments: vec!["java".to_string(), "java".to_string()],
                backend: BackendChoice::Simulator {
                    seed: 7,
                    noise: 0.1,
                },
            })
        );
        assert!(matches!(
            parse_request(r#"{"op":"execute","workload":{"kind":"wordcount"},"backend":"abacus"}"#),
            Err(ServiceError::Parse(_))
        ));
    }

    #[test]
    fn execute_response_renders_every_field_exactly() {
        let resp = Response::Execute(ExecuteResponse {
            workload: "pagerank(1e5,iters=10)".to_string(),
            backend: "engine".to_string(),
            assignments: vec!["java".to_string()],
            seconds: 1.25,
            compute_seconds: 1.0,
            overhead_seconds: 0.25,
            feasible: true,
            measured: true,
            output_rows: 64,
            output_digest: u64::MAX - 1,
            op_seconds: vec![0.5, 0.75],
            op_output_rows: vec![100, 64],
        });
        let line = render_response(&resp);
        let doc = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some("execute"));
        // The digest is a full-width u64 and must survive exactly.
        assert_eq!(
            doc.get("output_digest").and_then(JsonValue::as_u64),
            Some(u64::MAX - 1)
        );
        assert_eq!(doc.get("measured").and_then(JsonValue::as_bool), Some(true));
        for key in [
            "workload",
            "backend",
            "assignments",
            "seconds",
            "compute_seconds",
            "overhead_seconds",
            "feasible",
            "measured",
            "output_rows",
            "output_digest",
            "op_seconds",
            "op_output_rows",
        ] {
            assert!(doc.get(key).is_some(), "missing wire field {key:?}");
        }
    }

    #[test]
    fn error_rendering_escapes_the_message() {
        let line = render_response(&Response::Error(ServiceError::Parse(
            "quote \" and \\ backslash".to_string(),
        )));
        let doc = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert!(doc
            .get("error")
            .and_then(JsonValue::as_str)
            .is_some_and(|s| s.contains('"')));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let resp = Response::Simulate(SimulateResponse {
            workload: "w".to_string(),
            assignments: vec![],
            seconds: f64::INFINITY,
            feasible: false,
        });
        let line = render_response(&resp);
        let doc = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("seconds"), Some(&JsonValue::Null));
        assert_eq!(
            doc.get("feasible").and_then(JsonValue::as_bool),
            Some(false)
        );
    }
}
