//! The [`Optimizer`] facade — the one object behind every service verb.
//!
//! Owns the [`PlatformRegistry`], the Fig-5 [`FeatureLayout`], the active
//! cost model (analytic, or a trained forest behind the same
//! `&dyn CostOracle` the enumerators already speak), the warmed per-part
//! matrix pools of one [`ParallelEnumerator`], and the plan-signature
//! [`PlanCache`]. Callers that used to wire `EnumOptions` + oracle +
//! enumerator by hand now send [`OptimizeRequest`]s; the raw plumbing
//! stays inside `robopt_core` (with [`Optimizer::enum_options`] as the
//! escape hatch for baselines that genuinely need it).
//!
//! # Cache soundness
//!
//! The cache key ([`OptimizeRequest::signature`]) covers everything the
//! response depends on *except* the active model — so every model swap
//! ([`Optimizer::train`], [`Optimizer::install_forest`]) flushes the
//! cache. Worker count and hardware clamp are excluded from the key
//! because enumeration always runs through the split driver, whose result
//! is bit-identical across thread counts.

use robopt_core::vectorize::vectorize_assignment;
use robopt_core::{
    AnalyticOracle, CostDistribution, CostOracle, EnumOptions, ParallelEnumerator, RiskPolicy,
    SplitOptions,
};
use robopt_engine::Engine;
use robopt_ml::{
    mse, simulator_training_set, ForestConfig, Model, ModelOracle, RandomForest, SamplerConfig,
};
use robopt_plan::{LogicalPlan, N_OPERATOR_KINDS};
use robopt_platforms::{
    ExecutionBackend, ExecutionReport, PlatformId, PlatformRegistry, RuntimeSimulator,
};
use robopt_tdgen::{tdgen_training_set, TdgenConfig};
use robopt_vector::{FeatureLayout, RowsView};

use crate::api::{
    build_workload, BackendChoice, CompareRequest, CompareResponse, ExecuteRequest,
    ExecuteResponse, OptimizeRequest, OptimizeResponse, ServiceError, SimulateRequest,
    SimulateResponse, SinglePlatformPlan, StatsResponse, TrainRequest, TrainResponse, TrainSource,
};
use crate::cache::{CacheStats, PlanCache};

/// The active cost model. Both arms serve enumeration through
/// `&dyn CostOracle`; the forest arm additionally exposes its model for
/// persistence.
#[derive(Debug)]
enum OracleKind {
    Analytic(AnalyticOracle),
    Forest(ModelOracle<RandomForest>),
}

impl OracleKind {
    fn as_dyn(&self) -> &dyn CostOracle {
        match self {
            OracleKind::Analytic(o) => o,
            OracleKind::Forest(o) => o,
        }
    }
}

/// The optimizer-as-a-service facade. See the module docs.
#[derive(Debug)]
pub struct Optimizer {
    registry: PlatformRegistry,
    layout: FeatureLayout,
    oracle: OracleKind,
    parallel: ParallelEnumerator,
    cache: PlanCache,
    cache_enabled: bool,
    /// Session-wide risk policy applied to requests that don't carry one
    /// (`robopt serve --risk`). Folded into the *effective* request before
    /// the signature is computed, so the cache stays policy-sound.
    default_risk: Option<RiskPolicy>,
    /// Logical request clock: drives cache recency, never wall time.
    tick: u64,
    requests: u64,
    total_micros: u64,
    /// Scratch buffers for batched re-costing (`optimize_batch`) and
    /// single-platform costing (`compare`); reused across requests.
    feats: Vec<f64>,
    costs: Vec<f64>,
    /// Scratch distribution for the one-row winner re-cost that fills
    /// `cost_std` / `cost_q10` / `cost_q90`; reused across requests.
    dist: CostDistribution,
}

impl Optimizer {
    /// A facade over `registry` with the analytic oracle and the default
    /// cache capacity.
    pub fn new(registry: PlatformRegistry) -> Self {
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        let oracle = OracleKind::Analytic(AnalyticOracle::for_registry(&registry, &layout));
        Optimizer {
            registry,
            layout,
            oracle,
            parallel: ParallelEnumerator::new(1),
            cache: PlanCache::new(PlanCache::DEFAULT_CAPACITY),
            cache_enabled: true,
            default_risk: None,
            tick: 0,
            requests: 0,
            total_micros: 0,
            feats: Vec::new(),
            costs: Vec::new(),
            dist: CostDistribution::new(),
        }
    }

    /// Facade over the five named heterogeneous platforms.
    pub fn named() -> Self {
        Optimizer::new(PlatformRegistry::named())
    }

    /// The owned platform registry.
    pub fn registry(&self) -> &PlatformRegistry {
        &self.registry
    }

    /// The Fig-5 feature layout derived from the registry.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// The trained forest, if one is installed.
    pub fn forest(&self) -> Option<&RandomForest> {
        match &self.oracle {
            OracleKind::Forest(m) => Some(m.model()),
            OracleKind::Analytic(_) => None,
        }
    }

    /// Install a loaded forest as the active oracle (flushes the cache).
    pub fn install_forest(&mut self, forest: RandomForest) -> Result<(), ServiceError> {
        if forest.width() != self.layout.width {
            return Err(ServiceError::BadModel(format!(
                "forest width {} does not match the registry layout width {}",
                forest.width(),
                self.layout.width
            )));
        }
        self.oracle = OracleKind::Forest(ModelOracle::new(forest));
        self.cache.clear();
        Ok(())
    }

    /// Raw enumeration options over the facade's registry and active
    /// oracle — the escape hatch for baselines (exhaustive search, the
    /// object-graph enumerator) that predate the request API. Service
    /// callers never need this.
    pub fn enum_options(&self) -> EnumOptions<'_> {
        EnumOptions::new(&self.registry).with_oracle(self.oracle.as_dyn())
    }

    /// A raw [`RuntimeSimulator`] over the facade's registry — the escape
    /// hatch (like [`Optimizer::enum_options`]) for calibration sweeps and
    /// noise-envelope studies that need the simulator *object*, not a
    /// runtime number. Service callers use [`Optimizer::simulate`] /
    /// [`Optimizer::execute`], which run every backend through the
    /// [`ExecutionBackend`] seam; going around the seam forfeits the
    /// per-operator report and the digest contract.
    pub fn simulator(&self, seed: u64, noise: f64) -> RuntimeSimulator<'_> {
        RuntimeSimulator::new(&self.registry, seed).with_noise(noise)
    }

    /// A raw [`Engine`] over the facade's registry — escape hatch for
    /// callers (fig binaries, byte-identity tests) that need
    /// `execute_collect`'s actual output records rather than the
    /// [`ExecuteResponse`] rendering.
    pub fn engine(&self, workers: usize) -> Engine<'_> {
        Engine::new(&self.registry).with_workers(workers)
    }

    /// Toggle plan-signature memoization (on by default).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Session-wide default risk policy for requests that don't carry one
    /// (`robopt serve --risk`). `None` restores [`RiskPolicy::ExpectedCost`]
    /// behavior. The default is folded into the effective request *before*
    /// its signature is computed, so a sigma-default session and an
    /// expected-cost session never share cache entries.
    pub fn set_default_risk(&mut self, risk: Option<RiskPolicy>) {
        self.default_risk = risk;
    }

    /// The request as actually optimized: an explicit per-request risk
    /// policy wins, otherwise the session default fills in.
    fn effective(&self, req: &OptimizeRequest) -> OptimizeRequest {
        OptimizeRequest {
            risk: req.risk.or(self.default_risk),
            ..*req
        }
    }

    /// Replace the cache with an empty one of `capacity` entries.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache = PlanCache::new(capacity);
    }

    /// Drop every cached response (counters survive).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Service telemetry snapshot.
    pub fn service_stats(&self) -> StatsResponse {
        StatsResponse {
            requests: self.requests,
            cache: self.cache.stats(),
            total_micros: self.total_micros,
        }
    }

    /// Optimize one workload. Cache hits return the memoized response,
    /// which is bit-identical to what the cold path would produce
    /// (`tests/service_api.rs` and `tests/determinism.rs` assert this).
    // lint:surface(deterministic, no-panic)
    pub fn optimize(&mut self, req: &OptimizeRequest) -> Result<OptimizeResponse, ServiceError> {
        let started = now();
        self.requests += 1;
        self.tick += 1;
        let req = &self.effective(req);
        if let Some(risk) = req.risk {
            risk.validate().map_err(ServiceError::InvalidRequest)?;
        }
        let sig = req.signature();
        if self.cache_enabled {
            if let Some(hit) = self.cache.lookup(sig, self.tick) {
                self.total_micros += elapsed_micros(started);
                return Ok(hit);
            }
        }
        let resp = self.optimize_cold(req, sig)?;
        if self.cache_enabled {
            let work = resp.stats.generated.max(1);
            self.cache.insert(sig, resp.clone(), work, self.tick);
        }
        self.total_micros += elapsed_micros(started);
        Ok(resp)
    }

    /// Optimize a batch of requests, deduplicating by plan signature and
    /// re-costing every distinct winner through **one**
    /// [`CostOracle::cost_batch`] call — with a forest installed this is
    /// batched tree inference across concurrent requests, not one dispatch
    /// per request. Responses come back in request order and are
    /// bit-identical to issuing [`Optimizer::optimize`] sequentially.
    // lint:surface(deterministic, no-panic)
    pub fn optimize_batch(
        &mut self,
        reqs: &[OptimizeRequest],
    ) -> Result<Vec<OptimizeResponse>, ServiceError> {
        let started = now();
        // Slot per request: a cache hit resolved immediately, or an index
        // into the freshly-enumerated distinct plans.
        enum Slot {
            Hit(OptimizeResponse),
            Fresh(usize),
        }
        let mut slots = Vec::with_capacity(reqs.len());
        let mut fresh: Vec<(u64, LogicalPlan, OptimizeResponse)> = Vec::new();
        for req in reqs {
            self.requests += 1;
            self.tick += 1;
            let req = &self.effective(req);
            if let Some(risk) = req.risk {
                risk.validate().map_err(ServiceError::InvalidRequest)?;
            }
            let sig = req.signature();
            if self.cache_enabled {
                if let Some(hit) = self.cache.lookup(sig, self.tick) {
                    slots.push(Slot::Hit(hit));
                    continue;
                }
            }
            if let Some(i) = fresh.iter().position(|(s, _, _)| *s == sig) {
                // In-batch duplicate of a plan still being assembled.
                slots.push(Slot::Fresh(i));
                continue;
            }
            let plan = build_workload(&req.workload)?;
            let resp = self.enumerate_response(req, sig, &plan)?;
            fresh.push((sig, plan, resp));
            slots.push(Slot::Fresh(fresh.len() - 1));
        }

        if !fresh.is_empty() {
            // One flat feature matrix over every distinct winner, one
            // cost_batch call. The canonical per-plan cost in `finish` used
            // cost_row on exactly these vectors, and every in-tree oracle's
            // batch path is bit-identical to its row path, so this only
            // *asserts* — it cannot change the responses.
            let Optimizer {
                registry,
                oracle,
                layout,
                feats,
                costs,
                ..
            } = self;
            feats.clear();
            let mut row = Vec::new();
            for (_, plan, resp) in fresh.iter() {
                let raw = raw_assignments(registry, resp)?;
                vectorize_assignment(plan, layout, &raw, &mut row);
                feats.extend_from_slice(&row);
            }
            oracle
                .as_dyn()
                .cost_batch(RowsView::new(feats, layout.width), costs);
            debug_assert!(
                fresh
                    .iter()
                    .zip(costs.iter())
                    .all(|((_, _, resp), batched)| resp.cost.to_bits() == batched.to_bits()),
                "batched re-cost diverged from the canonical per-plan cost"
            );
            for ((_, _, resp), &batched) in fresh.iter_mut().zip(costs.iter()) {
                resp.cost = batched;
            }
        }

        if self.cache_enabled {
            for (sig, _, resp) in &fresh {
                let work = resp.stats.generated.max(1);
                self.cache.insert(*sig, resp.clone(), work, self.tick);
            }
        }
        let out = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(resp) => resp,
                Slot::Fresh(i) => fresh
                    .get(i)
                    .map(|(_, _, resp)| resp.clone())
                    .unwrap_or_else(|| OptimizeResponse {
                        workload: String::new(),
                        signature: 0,
                        assignments: Vec::new(),
                        distinct_platforms: 0,
                        cost: f64::INFINITY,
                        cost_std: 0.0,
                        cost_q10: f64::INFINITY,
                        cost_q90: f64::INFINITY,
                        risk_policy: String::new(),
                        stats: Default::default(),
                    }),
            })
            .collect();
        self.total_micros += elapsed_micros(started);
        Ok(out)
    }

    /// Train a forest per `req` and install it as the active oracle.
    // lint:surface(deterministic, no-panic)
    pub fn train(&mut self, req: &TrainRequest) -> Result<TrainResponse, ServiceError> {
        if req.rows < 8 || req.rows > 1_000_000 {
            return Err(ServiceError::InvalidRequest(format!(
                "training rows {} outside [8, 1000000]",
                req.rows
            )));
        }
        if req.n_trees < 1 || req.n_trees > 1024 {
            return Err(ServiceError::InvalidRequest(format!(
                "n_trees {} outside [1, 1024]",
                req.n_trees
            )));
        }
        let set = match req.source {
            TrainSource::Simulator { seed, noise } => {
                check_noise(noise)?;
                let cfg = SamplerConfig::new().with_seed(seed).with_noise(noise);
                simulator_training_set(&self.registry, &self.layout, &cfg, req.rows)
            }
            TrainSource::Tdgen { seed } => {
                let cfg = TdgenConfig::new().with_seed(seed);
                tdgen_training_set(&self.registry, &self.layout, &cfg, req.rows)
            }
        };
        let cfg = ForestConfig {
            n_trees: req.n_trees,
            seed: req.forest_seed,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit_on(&cfg, &set);
        let mut preds = Vec::new();
        forest.predict_batch(set.rows_view(), &mut preds);
        let train_mse = mse(&preds, &set.labels);
        let rows = set.len();
        self.oracle = OracleKind::Forest(ModelOracle::new(forest));
        // Every cached cost came from the previous model: flush.
        self.cache.clear();
        Ok(TrainResponse {
            rows,
            n_trees: req.n_trees,
            width: self.layout.width,
            train_mse,
        })
    }

    /// Simulate a workload under an explicit assignment, or — when
    /// `req.assignments` is empty — under the optimizer's winning plan.
    ///
    /// Since DESIGN §11 this verb runs through the
    /// [`ExecutionBackend`] seam (the simulator is just one backend), so
    /// `seconds` is bit-identical to the pre-seam direct
    /// `RuntimeSimulator::simulate` path. Callers that need the raw
    /// simulator object — calibration sweeps, noise-envelope studies —
    /// use the [`Optimizer::simulator`] escape hatch instead of this verb.
    // lint:surface(deterministic, no-panic)
    pub fn simulate(&mut self, req: &SimulateRequest) -> Result<SimulateResponse, ServiceError> {
        check_noise(req.noise)?;
        let plan = build_workload(&req.workload)?;
        let names = self.resolve_or_optimize(&plan, &req.workload, &req.assignments)?;
        let ids = self.resolve_platform_ids(&names)?;
        let sim = RuntimeSimulator::new(&self.registry, req.seed).with_noise(req.noise);
        let backend: &dyn ExecutionBackend = &sim;
        let report = backend.execute(&plan, &ids);
        Ok(SimulateResponse {
            workload: req.workload.name(),
            assignments: names,
            seconds: report.seconds,
            feasible: report.feasible,
        })
    }

    /// Execute a workload on a backend — the `execute` service verb
    /// (DESIGN §11). With [`BackendChoice::Engine`] the plan *actually
    /// runs*: seeded generators feed the multi-threaded executor,
    /// WordCount counts real words, and `seconds` is measured wall clock
    /// plus modeled platform overheads. With [`BackendChoice::Simulator`]
    /// this is `simulate` with the full per-operator breakdown. Empty
    /// `req.assignments` optimizes first and executes the winner.
    // lint:surface(no-panic)
    pub fn execute(&mut self, req: &ExecuteRequest) -> Result<ExecuteResponse, ServiceError> {
        let plan = build_workload(&req.workload)?;
        let names = self.resolve_or_optimize(&plan, &req.workload, &req.assignments)?;
        let ids = self.resolve_platform_ids(&names)?;
        let report = match req.backend {
            BackendChoice::Engine { workers } => {
                if workers == 0 || workers > 256 {
                    return Err(ServiceError::InvalidRequest(format!(
                        "engine workers {workers} outside [1, 256]"
                    )));
                }
                let engine = Engine::new(&self.registry).with_workers(workers);
                let backend: &dyn ExecutionBackend = &engine;
                backend.execute(&plan, &ids)
            }
            BackendChoice::Simulator { seed, noise } => {
                check_noise(noise)?;
                let sim = RuntimeSimulator::new(&self.registry, seed).with_noise(noise);
                let backend: &dyn ExecutionBackend = &sim;
                backend.execute(&plan, &ids)
            }
        };
        Ok(render_execute_response(&req.workload, names, &report))
    }

    /// Resolve the assignment names to run: the request's own when given,
    /// otherwise the optimizer's winning plan for `spec`.
    fn resolve_or_optimize(
        &mut self,
        plan: &LogicalPlan,
        spec: &crate::api::WorkloadSpec,
        assignments: &[String],
    ) -> Result<Vec<String>, ServiceError> {
        let names: Vec<String> = if assignments.is_empty() {
            self.optimize(&OptimizeRequest::new(*spec))?.assignments
        } else {
            assignments.to_vec()
        };
        if names.len() != plan.n_ops() {
            return Err(ServiceError::AssignmentLength {
                expected: plan.n_ops(),
                got: names.len(),
            });
        }
        Ok(names)
    }

    /// Map platform names to registry ids, failing on unknown names.
    fn resolve_platform_ids(&self, names: &[String]) -> Result<Vec<PlatformId>, ServiceError> {
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            ids.push(
                self.registry
                    .by_name(name)
                    .ok_or_else(|| ServiceError::UnknownPlatform(name.clone()))?,
            );
        }
        Ok(ids)
    }

    /// The Fig-2 experiment as a verb: optimize, then pit the mixed winner
    /// against every single-platform execution under oracle cost *and*
    /// simulated runtime.
    // lint:surface(deterministic, no-panic)
    pub fn compare(&mut self, req: &CompareRequest) -> Result<CompareResponse, ServiceError> {
        let plan = build_workload(&req.workload)?;
        let mixed = self.optimize(&OptimizeRequest::new(req.workload).with_policy(req.policy))?;
        let mixed_raw = raw_assignments(&self.registry, &mixed)?;
        let Optimizer {
            registry,
            layout,
            oracle,
            feats,
            ..
        } = self;
        // Runtime numbers flow through the ExecutionBackend seam; for the
        // simulator backend `seconds` is bit-identical to `simulate_raw`.
        let sim = RuntimeSimulator::new(registry, req.sim_seed);
        let backend: &dyn ExecutionBackend = &sim;
        let mixed_sim_seconds = backend.execute_raw(&plan, &mixed_raw).seconds;

        let mut singles = Vec::with_capacity(registry.len());
        let mut best_single_cost: Option<f64> = None;
        for id in registry.ids().collect::<Vec<_>>() {
            let single =
                single_platform_plan(registry, layout, oracle.as_dyn(), feats, &plan, id, backend);
            if let Some(cost) = single.cost {
                best_single_cost = Some(match best_single_cost {
                    Some(best) if best <= cost => best,
                    _ => cost,
                });
            }
            singles.push(single);
        }
        let mixed_wins = match best_single_cost {
            Some(best) => mixed.cost < best,
            None => true,
        };
        Ok(CompareResponse {
            workload: req.workload.name(),
            mix: mix_label(&mixed),
            mixed,
            mixed_sim_seconds,
            singles,
            best_single_cost,
            mixed_wins,
        })
    }

    /// Cold path: build the plan and enumerate.
    fn optimize_cold(
        &mut self,
        req: &OptimizeRequest,
        sig: u64,
    ) -> Result<OptimizeResponse, ServiceError> {
        let plan = build_workload(&req.workload)?;
        self.enumerate_response(req, sig, &plan)
    }

    /// Run split-based enumeration under the request's policy and shape
    /// the result into a response. Always goes through the parallel
    /// driver — its output is bit-identical across worker counts, which is
    /// what lets the cache key ignore `workers`.
    // lint:allow(index-literal) one-row winner distribution by construction: finish() asserts a non-empty enumeration, and the debug_assert below checks the mean against the canonical cost
    fn enumerate_response(
        &mut self,
        req: &OptimizeRequest,
        sig: u64,
        plan: &LogicalPlan,
    ) -> Result<OptimizeResponse, ServiceError> {
        let Optimizer {
            registry,
            layout,
            oracle,
            parallel,
            feats,
            dist,
            ..
        } = self;
        let risk = req.risk.unwrap_or_default();
        parallel.set_threads(req.policy.workers);
        parallel.set_split(SplitOptions::new(req.policy.split_parts.max(1)));
        parallel.set_hardware_clamp(req.policy.hardware_clamp);
        let opts = EnumOptions::new(registry)
            .with_oracle(oracle.as_dyn())
            .with_prune(req.policy.prune)
            .with_risk(risk);
        let (exec, stats) = parallel.enumerate(plan, layout, opts);
        // One-row distribution over the winner fills the uncertainty
        // fields. The distribution's mean is bit-identical to the
        // canonical `cost_row` mean the enumerator reported (both sum the
        // same members in the same order), so `cost` itself is untouched.
        let raw: Vec<u8> = exec.assignments.iter().map(|&id| id.raw()).collect();
        vectorize_assignment(plan, layout, &raw, feats);
        oracle
            .as_dyn()
            .cost_batch_dist(RowsView::new(feats, layout.width), dist);
        let _winner_mean = dist.mean[0];
        debug_assert_eq!(
            _winner_mean.to_bits(),
            exec.cost.to_bits(),
            "winner distribution mean diverged from the canonical cost"
        );
        Ok(OptimizeResponse {
            workload: req.workload.name(),
            signature: sig,
            assignments: exec
                .assignments
                .iter()
                .map(|&id| registry.platform(id).name.clone())
                .collect(),
            distinct_platforms: exec.distinct_platforms(),
            cost: exec.cost,
            cost_std: dist.std[0],
            cost_q10: dist.q10[0],
            cost_q90: dist.q90[0],
            risk_policy: risk.label(),
            stats,
        })
    }
}

/// Cost + run a plan pinned entirely onto `id`, if feasible. Free
/// function (not a method) so `compare` can call it with the facade's
/// fields individually borrowed while the backend holds the registry.
fn single_platform_plan(
    registry: &PlatformRegistry,
    layout: &FeatureLayout,
    oracle: &dyn CostOracle,
    feats: &mut Vec<f64>,
    plan: &LogicalPlan,
    id: PlatformId,
    backend: &dyn ExecutionBackend,
) -> SinglePlatformPlan {
    let name = registry.platform(id).name.clone();
    let feasible = (0..plan.n_ops() as u32).all(|op| registry.is_available(plan.op(op).kind, id));
    if !feasible {
        return SinglePlatformPlan {
            platform: name,
            cost: None,
            sim_seconds: None,
        };
    }
    let raw = vec![id.raw(); plan.n_ops()];
    vectorize_assignment(plan, layout, &raw, feats);
    let cost = oracle.cost_row(feats);
    let report = backend.execute_raw(plan, &raw);
    SinglePlatformPlan {
        platform: name,
        cost: Some(cost),
        sim_seconds: report.feasible.then_some(report.seconds),
    }
}

/// Shape an [`ExecutionReport`] into the wire-facing [`ExecuteResponse`].
fn render_execute_response(
    spec: &crate::api::WorkloadSpec,
    assignments: Vec<String>,
    report: &ExecutionReport,
) -> ExecuteResponse {
    ExecuteResponse {
        workload: spec.name(),
        backend: report.backend.to_string(),
        assignments,
        seconds: report.seconds,
        compute_seconds: report.compute_seconds,
        overhead_seconds: report.overhead_seconds,
        feasible: report.feasible,
        measured: report.measured,
        output_rows: report.output_rows,
        output_digest: report.output_digest,
        op_seconds: report.per_op.iter().map(|o| o.seconds).collect(),
        op_output_rows: report.per_op.iter().map(|o| o.output_rows).collect(),
    }
}

/// Resolve a response's platform names back to raw assignment bytes.
fn raw_assignments(
    registry: &PlatformRegistry,
    resp: &OptimizeResponse,
) -> Result<Vec<u8>, ServiceError> {
    resp.assignments
        .iter()
        .map(|name| {
            registry
                .by_name(name)
                .map(|id| id.raw())
                .ok_or_else(|| ServiceError::UnknownPlatform(name.clone()))
        })
        .collect()
}

/// `flink:3+postgres:2`-style mix label, platforms in first-use order.
fn mix_label(resp: &OptimizeResponse) -> String {
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for name in &resp.assignments {
        match counts.iter_mut().find(|(n, _)| *n == name.as_str()) {
            Some((_, c)) => *c += 1,
            None => counts.push((name.as_str(), 1)),
        }
    }
    counts
        .iter()
        .map(|(n, c)| format!("{n}:{c}"))
        .collect::<Vec<_>>()
        .join("+")
}

fn check_noise(noise: f64) -> Result<(), ServiceError> {
    if (0.0..1.0).contains(&noise) {
        Ok(())
    } else {
        Err(ServiceError::InvalidRequest(format!(
            "noise amplitude {noise} outside [0, 1)"
        )))
    }
}

/// Wall-clock start mark for service telemetry. The reading feeds only
/// `StatsResponse::total_micros` — never optimization, caching, eviction,
/// or any deterministic response field.
// lint:allow(wall-clock) service telemetry only: values land in StatsResponse::total_micros and never influence optimization, cache decisions, or response payloads
fn now() -> std::time::Instant {
    std::time::Instant::now()
}

/// Microseconds since `started`, saturated into `u64`.
// lint:allow(wall-clock) telemetry-only: reads back the mark taken by now()
fn elapsed_micros(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ExecutionPolicy, WorkloadSpec};

    fn wc() -> WorkloadSpec {
        WorkloadSpec::WordCount { scale: 1e7 }
    }

    #[test]
    fn cached_response_is_bit_identical_to_cold() {
        let mut opt = Optimizer::named();
        let req = OptimizeRequest::new(wc());
        let cold = opt.optimize(&req).expect("cold optimize");
        let cached = opt.optimize(&req).expect("cached optimize");
        assert_eq!(cold, cached, "OptimizeResponse eq is bitwise on cost");
        let stats = opt.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // Cache off must reproduce the same bytes from scratch.
        let mut fresh = Optimizer::named();
        fresh.set_cache_enabled(false);
        let recomputed = fresh.optimize(&req).expect("cache-off optimize");
        assert_eq!(cold, recomputed);
        assert_eq!(fresh.cache_stats().hits, 0);
    }

    #[test]
    fn worker_count_and_clamp_share_one_cache_line_soundly() {
        let mut opt = Optimizer::named();
        let one = opt
            .optimize(
                &OptimizeRequest::new(wc()).with_policy(
                    ExecutionPolicy::default()
                        .with_workers(1)
                        .with_hardware_clamp(false),
                ),
            )
            .expect("1 worker");
        // Recompute with 4 workers on a cache-disabled facade: the split
        // driver's determinism contract makes it bit-identical, which is
        // exactly why `workers` is excluded from the signature.
        let mut fresh = Optimizer::named();
        fresh.set_cache_enabled(false);
        let four = fresh
            .optimize(
                &OptimizeRequest::new(wc()).with_policy(
                    ExecutionPolicy::default()
                        .with_workers(4)
                        .with_hardware_clamp(false),
                ),
            )
            .expect("4 workers");
        assert_eq!(one, four);
    }

    #[test]
    fn optimize_batch_matches_sequential_and_dedupes() {
        let reqs: Vec<OptimizeRequest> = vec![
            OptimizeRequest::new(wc()),
            OptimizeRequest::new(WorkloadSpec::TpchQ3 { scale: 1e6 }),
            OptimizeRequest::new(wc()),
            OptimizeRequest::new(WorkloadSpec::Pipeline {
                ops: 12,
                scale: 1e5,
            }),
        ];
        let mut seq = Optimizer::named();
        seq.set_cache_enabled(false);
        let expected: Vec<OptimizeResponse> = reqs
            .iter()
            .map(|r| seq.optimize(r).expect("sequential"))
            .collect();
        let mut batched = Optimizer::named();
        let got = batched.optimize_batch(&reqs).expect("batch");
        assert_eq!(got, expected);
        // Two wordcount requests, one enumeration.
        assert_eq!(batched.cache_stats().insertions, 3);
    }

    #[test]
    fn default_risk_fills_unlabelled_requests_and_keys_the_cache() {
        let mut opt = Optimizer::named();
        let plain = opt.optimize(&OptimizeRequest::new(wc())).expect("expected");
        assert_eq!(plain.risk_policy, "expected");
        assert!(plain.cost_q10 <= plain.cost_q90);
        opt.set_default_risk(Some(RiskPolicy::MeanPlusKSigma(2.0)));
        let robust = opt
            .optimize(&OptimizeRequest::new(wc()))
            .expect("sigma default");
        assert_eq!(robust.risk_policy, "sigma2");
        // The sigma-default request missed: the default is folded into the
        // effective request before the signature is computed, so it cannot
        // replay the expected-cost entry.
        assert_eq!(opt.cache_stats().misses, 2);
        // An explicit per-request policy beats the session default — and
        // explicit ExpectedCost shares the unlabelled request's cache line.
        let explicit = opt
            .optimize(&OptimizeRequest::new(wc()).with_risk(RiskPolicy::ExpectedCost))
            .expect("explicit expected");
        assert_eq!(explicit, plain);
        assert_eq!(opt.cache_stats().hits, 1);
        // Invalid policies surface typed errors before touching the cache.
        assert!(matches!(
            opt.optimize(&OptimizeRequest::new(wc()).with_risk(RiskPolicy::Quantile(1.5))),
            Err(ServiceError::InvalidRequest(_))
        ));
    }

    #[test]
    fn train_swaps_the_oracle_and_flushes_the_cache() {
        let mut opt = Optimizer::named();
        let req = OptimizeRequest::new(wc());
        let analytic = opt.optimize(&req).expect("analytic optimize");
        assert!(opt.forest().is_none());
        let trained = opt
            .train(&TrainRequest {
                rows: 64,
                n_trees: 4,
                ..TrainRequest::new(64)
            })
            .expect("train");
        assert_eq!(trained.width, opt.layout().width);
        assert!(opt.forest().is_some());
        assert!(trained.train_mse.is_finite());
        // The cache was flushed: same request now recomputes under the
        // forest (a hit here would replay an analytic-era cost).
        let hits_before = opt.cache_stats().hits;
        let learned = opt.optimize(&req).expect("forest optimize");
        assert_eq!(opt.cache_stats().hits, hits_before);
        assert_eq!(learned.assignments.len(), analytic.assignments.len());
    }

    #[test]
    fn simulate_and_compare_round_trip_names() {
        let mut opt = Optimizer::named();
        let sim = opt
            .simulate(&SimulateRequest {
                workload: wc(),
                assignments: Vec::new(),
                seed: 42,
                noise: 0.0,
            })
            .expect("simulate the optimum");
        assert!(sim.feasible, "optimal plan must be executable");
        assert!(sim.seconds > 0.0);

        let cmp = opt
            .compare(&CompareRequest {
                workload: wc(),
                policy: ExecutionPolicy::default(),
                sim_seed: 42,
            })
            .expect("compare");
        assert_eq!(cmp.singles.len(), opt.registry().len());
        assert!(!cmp.mix.is_empty());
        if let Some(best) = cmp.best_single_cost {
            assert!(
                cmp.mixed.cost <= best,
                "the optimum cannot lose to a single"
            );
        }
    }

    #[test]
    fn execute_on_the_engine_really_runs_the_plan() {
        let mut opt = Optimizer::named();
        let req = ExecuteRequest::new(WorkloadSpec::WordCount { scale: 1e4 });
        let resp = opt.execute(&req).expect("engine execute");
        assert_eq!(resp.backend, "engine");
        assert!(resp.feasible && resp.measured);
        assert!(resp.seconds.is_finite() && resp.seconds > 0.0);
        assert!(resp.output_rows > 0, "wordcount must deliver counts");
        assert_ne!(resp.output_digest, 0);
        let n_ops = resp.assignments.len();
        assert_eq!(resp.op_seconds.len(), n_ops);
        assert_eq!(resp.op_output_rows.len(), n_ops);

        // Engine outputs are invariant across worker counts; only the
        // measured timings may move.
        let wide = opt
            .execute(
                &req.clone()
                    .with_backend(BackendChoice::Engine { workers: 4 }),
            )
            .expect("4-worker execute");
        assert_eq!(resp.output_digest, wide.output_digest);
        assert_eq!(resp.output_rows, wide.output_rows);
        assert_eq!(resp.op_output_rows, wide.op_output_rows);
    }

    #[test]
    fn execute_on_the_simulator_matches_the_simulate_verb() {
        let mut opt = Optimizer::named();
        let spec = WorkloadSpec::TpchQ3 { scale: 1e5 };
        let sim = opt
            .simulate(&SimulateRequest {
                workload: spec,
                assignments: Vec::new(),
                seed: 13,
                noise: 0.2,
            })
            .expect("simulate");
        let exec = opt
            .execute(
                &ExecuteRequest::new(spec)
                    .with_backend(BackendChoice::Simulator {
                        seed: 13,
                        noise: 0.2,
                    })
                    .with_assignments(sim.assignments.clone()),
            )
            .expect("execute via simulator backend");
        assert_eq!(exec.backend, "simulator");
        assert!(!exec.measured);
        assert_eq!(sim.seconds.to_bits(), exec.seconds.to_bits());
    }

    #[test]
    fn bad_requests_surface_typed_errors_not_panics() {
        let mut opt = Optimizer::named();
        assert!(matches!(
            opt.optimize(&OptimizeRequest::new(WorkloadSpec::WordCount {
                scale: -1.0
            })),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            opt.simulate(&SimulateRequest {
                workload: wc(),
                assignments: vec!["no-such-engine".to_string(); 6],
                seed: 1,
                noise: 0.0,
            }),
            Err(ServiceError::UnknownPlatform(_))
        ));
        assert!(matches!(
            opt.simulate(&SimulateRequest {
                workload: wc(),
                assignments: vec!["flink".to_string()],
                seed: 1,
                noise: 0.0,
            }),
            Err(ServiceError::AssignmentLength { .. })
        ));
        assert!(matches!(
            opt.train(&TrainRequest {
                rows: 2,
                ..TrainRequest::new(2)
            }),
            Err(ServiceError::InvalidRequest(_))
        ));
    }
}
