//! Forest persistence: hand-rendered JSON round-trip (DESIGN §10).
//!
//! Every `f64` (split thresholds, leaf values) is stored as its `u64` bit
//! pattern rendered as a JSON integer, and [`crate::json`] keeps numbers as
//! raw text until the accessor parses them — so **save → load →
//! `predict_batch` is bit-identical**, not merely close. Loading validates
//! through [`RegressionTree::from_parts`] / [`RandomForest::from_trees`],
//! so a malformed or hand-edited file is rejected with a typed error and
//! can never install a tree that loops or indexes out of range.

use robopt_ml::tree::ModelImportError;
use robopt_ml::{Model, RandomForest, RegressionTree};

use crate::json::{self, JsonValue};

/// Format tag stamped into every saved model.
pub const FOREST_FORMAT: &str = "robopt-forest-v1";

/// Why a model file failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Not valid JSON.
    Json(json::JsonError),
    /// Valid JSON, wrong shape (missing field, wrong type, bad format tag).
    Schema(String),
    /// Well-formed arrays that fail tree/forest structural validation.
    Model(ModelImportError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "model file is not valid JSON: {e}"),
            PersistError::Schema(msg) => write!(f, "model file schema error: {msg}"),
            PersistError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<json::JsonError> for PersistError {
    fn from(e: json::JsonError) -> Self {
        PersistError::Json(e)
    }
}

impl From<ModelImportError> for PersistError {
    fn from(e: ModelImportError) -> Self {
        PersistError::Model(e)
    }
}

/// Render a fitted forest as a self-describing JSON document.
pub fn forest_to_json(forest: &RandomForest) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"format\":\"");
    out.push_str(FOREST_FORMAT);
    out.push_str("\",\"width\":");
    out.push_str(&forest.width().to_string());
    out.push_str(",\"n_trees\":");
    out.push_str(&forest.n_trees().to_string());
    out.push_str(",\"trees\":[");
    for (t, tree) in forest.trees().iter().enumerate() {
        if t > 0 {
            out.push(',');
        }
        let (split_col, threshold, left, right, value) = tree.parts();
        out.push_str("{\"split_col\":");
        push_u32_array(&mut out, split_col);
        out.push_str(",\"threshold_bits\":");
        push_bits_array(&mut out, threshold);
        out.push_str(",\"left\":");
        push_u32_array(&mut out, left);
        out.push_str(",\"right\":");
        push_u32_array(&mut out, right);
        out.push_str(",\"value_bits\":");
        push_bits_array(&mut out, value);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parse and validate a forest saved by [`forest_to_json`].
pub fn forest_from_json(text: &str) -> Result<RandomForest, PersistError> {
    let doc = json::parse(text)?;
    let format = doc
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| PersistError::Schema("missing \"format\" tag".to_string()))?;
    if format != FOREST_FORMAT {
        return Err(PersistError::Schema(format!(
            "format {format:?} is not {FOREST_FORMAT:?}"
        )));
    }
    let width = doc
        .get("width")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| PersistError::Schema("missing or non-integer \"width\"".to_string()))?;
    let tree_docs = doc
        .get("trees")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| PersistError::Schema("missing \"trees\" array".to_string()))?;
    let mut trees = Vec::with_capacity(tree_docs.len());
    for (t, td) in tree_docs.iter().enumerate() {
        let split_col = u32_array(td, "split_col", t)?;
        let threshold = f64_bits_array(td, "threshold_bits", t)?;
        let left = u32_array(td, "left", t)?;
        let right = u32_array(td, "right", t)?;
        let value = f64_bits_array(td, "value_bits", t)?;
        trees.push(RegressionTree::from_parts(
            width, split_col, threshold, left, right, value,
        )?);
    }
    Ok(RandomForest::from_trees(width, trees)?)
}

fn push_u32_array(out: &mut String, xs: &[u32]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

fn push_bits_array(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_bits().to_string());
    }
    out.push(']');
}

fn u32_array(tree: &JsonValue, key: &str, t: usize) -> Result<Vec<u32>, PersistError> {
    let items = tree
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| PersistError::Schema(format!("tree {t}: missing {key:?} array")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| PersistError::Schema(format!("tree {t}: non-u32 value in {key:?}")))
        })
        .collect()
}

fn f64_bits_array(tree: &JsonValue, key: &str, t: usize) -> Result<Vec<f64>, PersistError> {
    let items = tree
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| PersistError::Schema(format!("tree {t}: missing {key:?} array")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64().map(f64::from_bits).ok_or_else(|| {
                PersistError::Schema(format!("tree {t}: non-u64 bit pattern in {key:?}"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_ml::ForestConfig;
    use robopt_plan::SplitMix64;
    use robopt_vector::RowsView;

    fn fitted_forest() -> (RandomForest, Vec<f64>) {
        let width = 5;
        let mut rng = SplitMix64::new(97);
        let n = 256;
        let mut feats = Vec::with_capacity(n * width);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..width).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            labels.push(x[0].abs() + 0.5 * x[1] + 0.05 * rng.next_f64());
            feats.extend_from_slice(&x);
        }
        let cfg = ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&cfg, RowsView::new(&feats, width), &labels);
        (forest, feats)
    }

    #[test]
    fn save_load_predict_batch_is_bit_identical() {
        let (forest, feats) = fitted_forest();
        let text = forest_to_json(&forest);
        let loaded = forest_from_json(&text).expect("round trip");
        let rows = RowsView::new(&feats, 5);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        forest.predict_batch(rows, &mut a);
        loaded.predict_batch(rows, &mut b);
        assert_eq!(a.len(), b.len());
        for (r, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "row {r} diverges after reload");
        }
        // And the re-render is byte-identical: persistence is a fixpoint.
        assert_eq!(text, forest_to_json(&loaded));
    }

    #[test]
    fn malformed_model_files_are_rejected_with_typed_errors() {
        assert!(matches!(
            forest_from_json("not json at all"),
            Err(PersistError::Json(_))
        ));
        assert!(matches!(
            forest_from_json("{\"format\":\"other-v9\"}"),
            Err(PersistError::Schema(_))
        ));
        assert!(matches!(
            forest_from_json(&format!("{{\"format\":\"{FOREST_FORMAT}\",\"width\":3}}")),
            Err(PersistError::Schema(_))
        ));
        // Structurally invalid tree: self-referential child.
        let bad = format!(
            "{{\"format\":\"{FOREST_FORMAT}\",\"width\":2,\"trees\":[{{\
             \"split_col\":[0],\"threshold_bits\":[{}],\"left\":[0],\"right\":[0],\
             \"value_bits\":[0]}}]}}",
            0.5f64.to_bits()
        );
        assert!(matches!(
            forest_from_json(&bad),
            Err(PersistError::Model(_))
        ));
    }

    #[test]
    fn tampered_arrays_cannot_smuggle_in_nonsense() {
        let (forest, _) = fitted_forest();
        let good = forest_to_json(&forest);
        // Truncate one array: length mismatch must surface as Model error.
        let tampered = good.replacen("\"left\":[", "\"left\":[9999999,", 1);
        assert!(forest_from_json(&tampered).is_err());
    }
}
