//! Minimal hand-rolled JSON for the wire protocol and model persistence.
//!
//! The workspace is dependency-free by construction, so this is the whole
//! stack: a recursive-descent parser with a hard depth cap (panic-free on
//! arbitrary input — `tests` feed it garbage) and a value tree whose
//! numbers are kept as **raw source text** ([`JsonValue::Num`]). Parsing a
//! number into `f64` or `u64` happens at the accessor, so `u64` bit
//! patterns round-trip exactly — the property `persist` relies on to make
//! a reloaded forest bit-identical.

/// A parsed JSON value. Object fields keep their source order (rendering
/// is deterministic) and duplicate keys resolve to the first occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (see module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a number as `f64` (accepts any JSON number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Parse a number as `u64` — integer text only, so 64-bit bit patterns
    /// survive without a lossy trip through `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// [`JsonValue::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting cap: deeper input is rejected, not recursed into, so a
/// `[[[[…` bomb cannot blow the stack of a serving daemon.
const MAX_DEPTH: usize = 64;

/// Parse one complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogates are rejected rather than paired; the
                        // protocol never emits them.
                        match char::from_u32(cp) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte:
                    // the input is a &str, so the bytes are already valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    for _ in 1..len {
                        self.bump();
                    }
                    match std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(b"")) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(b""))
            .map_err(|_| self.err("invalid number"))?;
        Ok(JsonValue::Num(raw.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_usual_shapes() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(v.get("c").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn u64_bit_patterns_round_trip_exactly() {
        for bits in [0u64, 1, u64::MAX, 0x7ff8_dead_beef_0001, f64::to_bits(0.1)] {
            let v = parse(&format!("{{\"x\":{bits}}}")).unwrap();
            assert_eq!(v.get("x").and_then(JsonValue::as_u64), Some(bits));
        }
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"unterminated",
            "[1] junk",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_recursed() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let mut s = String::from("\"");
        escape_into(&mut s, nasty);
        s.push('"');
        assert_eq!(parse(&s).unwrap().as_str(), Some(nasty));
    }
}
