//! `robopt-vector`: the vectorized enumeration representation.
//!
//! The paper's core contribution is running the *entire* plan enumeration
//! over flat feature vectors: a (sub)plan *is* a row of primitive `f64`
//! cells, so ML costing needs no plan-to-vector conversion and the hot loop
//! is array arithmetic. This crate provides:
//!
//! * [`layout::FeatureLayout`] — the Fig-5 cell layout for `k` platforms;
//! * [`matrix::EnumMatrix`] — row-major flat `Vec<f64>` storage with reused
//!   buffers and an allocation-event counter for the zero-alloc guarantee;
//! * [`merge`] — the fused add-with-max-cells merge kernel;
//! * [`footprint`] — scope bitsets, Def-2 pruning footprints hashed to
//!   `u64`, and the deterministic insertion-ordered
//!   [`footprint::FootprintTable`] the pruning pass keys on.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod footprint;
pub mod layout;
pub mod matrix;
pub mod merge;

pub use footprint::{footprint_hash, FootprintTable, Scope, SigHasher};
pub use layout::FeatureLayout;
pub use matrix::{alloc_events, EnumMatrix, RowsView, NO_PLATFORM};
