//! `EnumMatrix`: row-major flat storage for plan-vector enumerations.
//!
//! One matrix holds every candidate (sub)plan of one enumeration unit:
//! `rows × width` feature cells in a single `Vec<f64>`, a parallel flat
//! `Vec<u8>` of per-operator platform assignments (the part `unvectorize`
//! reads; never fed to the ML model), and per-row costs.
//!
//! Zero-allocation discipline: matrices are pooled and reused by the
//! enumerator; every capacity growth bumps a global counter
//! ([`alloc_events`]) so tests can assert that a warmed-up enumeration
//! performs **no** per-subplan heap allocation on the merge/prune hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "operator not in this subplan's scope".
pub const NO_PLATFORM: u8 = u8::MAX;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Number of `EnumMatrix` buffer growth events since process start.
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

#[inline]
fn note_growth(before: usize, after: usize) {
    if after > before {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A flat, row-major enumeration matrix.
#[derive(Debug, Default)]
pub struct EnumMatrix {
    width: usize,
    n_ops: usize,
    rows: usize,
    feats: Vec<f64>,
    assign: Vec<u8>,
    costs: Vec<f64>,
}

impl EnumMatrix {
    pub fn new() -> Self {
        EnumMatrix::default()
    }

    /// Reset dimensions and drop all rows, keeping allocated capacity.
    pub fn reset(&mut self, width: usize, n_ops: usize) {
        self.width = width;
        self.n_ops = n_ops;
        self.rows = 0;
        self.feats.clear();
        self.assign.clear();
        self.costs.clear();
    }

    /// Pre-reserve space for `rows` additional rows. Growth is counted.
    pub fn reserve_rows(&mut self, rows: usize) {
        let (bf, ba, bc) = (
            self.feats.capacity(),
            self.assign.capacity(),
            self.costs.capacity(),
        );
        self.feats.reserve(rows * self.width);
        self.assign.reserve(rows * self.n_ops);
        self.costs.reserve(rows);
        note_growth(bf, self.feats.capacity());
        note_growth(ba, self.assign.capacity());
        note_growth(bc, self.costs.capacity());
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current feature-buffer capacity in cells (pool best-fit uses this).
    #[inline]
    pub fn feat_capacity(&self) -> usize {
        self.feats.capacity()
    }

    #[inline]
    pub fn n_ops(&self) -> usize {
        self.n_ops
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.feats[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.feats[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    pub fn assignments(&self, r: usize) -> &[u8] {
        &self.assign[r * self.n_ops..(r + 1) * self.n_ops]
    }

    #[inline]
    pub fn cost(&self, r: usize) -> f64 {
        self.costs[r]
    }

    /// Append a row; returns its index. Growth (if capacity was not
    /// pre-reserved) is counted as an allocation event.
    pub fn push_row(&mut self, feats: &[f64], assign: &[u8], cost: f64) -> usize {
        debug_assert_eq!(feats.len(), self.width);
        debug_assert_eq!(assign.len(), self.n_ops);
        let (bf, ba, bc) = (
            self.feats.capacity(),
            self.assign.capacity(),
            self.costs.capacity(),
        );
        self.feats.extend_from_slice(feats);
        self.assign.extend_from_slice(assign);
        self.costs.push(cost);
        note_growth(bf, self.feats.capacity());
        note_growth(ba, self.assign.capacity());
        note_growth(bc, self.costs.capacity());
        let r = self.rows;
        self.rows += 1;
        r
    }

    /// Set the cost of row `r` (used after a batched oracle call costs the
    /// staged candidate rows in one pass).
    #[inline]
    pub fn set_cost(&mut self, r: usize, cost: f64) {
        debug_assert!(r < self.rows);
        self.costs[r] = cost;
    }

    /// Borrow all feature rows as a [`RowsView`] — the input of
    /// `CostOracle::cost_batch`.
    #[inline]
    pub fn rows_view(&self) -> RowsView<'_> {
        RowsView::new(&self.feats[..self.rows * self.width], self.width)
    }

    /// Overwrite row `r` in place (the keep-min side of `prune`).
    pub fn overwrite_row(&mut self, r: usize, feats: &[f64], assign: &[u8], cost: f64) {
        debug_assert!(r < self.rows);
        self.feats[r * self.width..(r + 1) * self.width].copy_from_slice(feats);
        self.assign[r * self.n_ops..(r + 1) * self.n_ops].copy_from_slice(assign);
        self.costs[r] = cost;
    }

    /// Index of the minimum-cost row, if any.
    pub fn min_cost_row(&self) -> Option<usize> {
        (0..self.rows).min_by(|&a, &b| self.costs[a].total_cmp(&self.costs[b]))
    }
}

/// A borrowed view of contiguous row-major feature rows — the batched
/// cost-oracle input. Decouples oracles from [`EnumMatrix`]: any flat
/// `&[f64]` whose length is a multiple of `width` can be costed in one
/// batch (the object-graph baseline builds such buffers from scratch on
/// every merge; the ML forest will consume whole batches per inference).
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'a> {
    feats: &'a [f64],
    width: usize,
}

impl<'a> RowsView<'a> {
    /// View over `feats` as rows of `width` cells. `feats.len()` must be a
    /// multiple of `width`.
    #[inline]
    pub fn new(feats: &'a [f64], width: usize) -> Self {
        assert!(width > 0, "zero-width rows");
        debug_assert_eq!(feats.len() % width, 0, "ragged row buffer");
        RowsView { feats, width }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.feats.len() / self.width
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        &self.feats[r * self.width..(r + 1) * self.width]
    }

    /// The whole backing buffer (`rows() * width()` cells, row-major) —
    /// lets batched oracles run one flat pass instead of `rows()` slices.
    #[inline]
    pub fn flat(&self) -> &'a [f64] {
        self.feats
    }

    /// Value of cell `(row, col)` — strided single-cell access for
    /// column-wise consumers (the CART split search in `robopt_ml` reads one
    /// feature across a node's rows without materializing a column buffer).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> f64 {
        debug_assert!(col < self.width, "column {col} out of range");
        self.feats[row * self.width + col]
    }

    /// Iterator over column `col` (one value per row, in row order) — the
    /// column view variance-reduction split search scans.
    #[inline]
    pub fn col(&self, col: usize) -> impl Iterator<Item = f64> + 'a {
        assert!(col < self.width, "column {col} out of range");
        self.feats
            .get(col..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.width)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_view_exposes_rows_and_flat_buffer() {
        let mut m = EnumMatrix::new();
        m.reset(2, 1);
        m.push_row(&[1.0, 2.0], &[0], 0.0);
        m.push_row(&[3.0, 4.0], &[1], 0.0);
        let v = m.rows_view();
        assert_eq!((v.rows(), v.width()), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        assert_eq!(v.flat(), &[1.0, 2.0, 3.0, 4.0]);
        m.set_cost(1, 9.0);
        assert_eq!(m.cost(1), 9.0);
    }

    #[test]
    fn rows_view_column_access_is_strided() {
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = RowsView::new(&buf, 3);
        assert_eq!(v.value(0, 2), 3.0);
        assert_eq!(v.value(1, 0), 4.0);
        assert_eq!(v.col(1).collect::<Vec<_>>(), vec![2.0, 5.0]);
        let empty = RowsView::new(&[], 3);
        assert_eq!(empty.col(2).count(), 0);
    }

    #[test]
    fn push_and_overwrite_roundtrip() {
        let mut m = EnumMatrix::new();
        m.reset(3, 2);
        m.reserve_rows(2);
        let r0 = m.push_row(&[1.0, 2.0, 3.0], &[0, NO_PLATFORM], 9.0);
        let r1 = m.push_row(&[4.0, 5.0, 6.0], &[NO_PLATFORM, 1], 2.0);
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.assignments(1), &[NO_PLATFORM, 1]);
        assert_eq!(m.min_cost_row(), Some(1));
        m.overwrite_row(1, &[7.0, 8.0, 9.0], &[NO_PLATFORM, 0], 1.0);
        assert_eq!(m.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(m.cost(1), 1.0);
    }

    #[test]
    fn reset_keeps_capacity_and_prereserved_pushes_do_not_allocate() {
        let mut m = EnumMatrix::new();
        m.reset(4, 3);
        m.reserve_rows(16);
        for _ in 0..16 {
            m.push_row(&[0.0; 4], &[NO_PLATFORM; 3], 0.0);
        }
        m.reset(4, 3);
        let before = alloc_events();
        m.reserve_rows(16);
        for _ in 0..16 {
            m.push_row(&[1.0; 4], &[0; 3], 1.0);
        }
        assert_eq!(alloc_events(), before, "warm reuse must not grow buffers");
    }
}
