//! The `merge` kernel (paper Section IV-D; DESIGN §5).
//!
//! Merging two subplan vectors is one fused loop of `f64` adds over the
//! whole row followed by patching the two exception cells, which combine by
//! `max` instead of `+` (maximum output cardinality and maximum tuple
//! width). Assignment arrays combine by taking whichever side covers each
//! operator; merged scopes are disjoint by construction.
//!
//! # SIMD-lane layout
//!
//! The fused add is written at explicit SIMD width instead of relying on
//! the auto-vectorizer seeing through iterator adaptors:
//!
//! * an 8-lane main loop over `chunks_exact(8)` triples — each chunk is a
//!   fixed-size window, so the `d[i] = x[i] + y[i]` body carries no bounds
//!   checks and lowers to two 512-bit (or four 256-bit) vector adds;
//! * one optional 4-lane step when `width % 8 >= 4`;
//! * a scalar tail for the final `width % 4` cells.
//!
//! The Fig-5 width is `4 + 3·kinds + k·kinds + 3·k`, never a lane
//! multiple, so the tail path is always exercised.
//!
//! [`merge_feats_many`] is the batched form the enumerator's cross-product
//! inner loop uses: one left row against *every* row of the right matrix in
//! a single call, so slice bounds are hoisted once per left row instead of
//! re-checked per candidate pair.

use crate::layout::FeatureLayout;
use crate::matrix::{RowsView, NO_PLATFORM};

/// Main fused-add width: matches one AVX-512 register or two AVX2 ops.
const LANES: usize = 8;
/// Half-width step taken at most once before the scalar tail.
const HALF: usize = 4;

/// `dst = a + b` cell-wise: 8-lane unrolled main loop, optional 4-lane
/// step, scalar tail. All three slices must have equal length.
#[inline]
fn fused_add(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let n = dst.len();
    let wide = n - n % LANES;
    for ((d, x), y) in dst[..wide]
        .chunks_exact_mut(LANES)
        .zip(a[..wide].chunks_exact(LANES))
        .zip(b[..wide].chunks_exact(LANES))
    {
        for i in 0..LANES {
            d[i] = x[i] + y[i];
        }
    }
    let mut at = wide;
    if n - at >= HALF {
        for i in at..at + HALF {
            dst[i] = a[i] + b[i];
        }
        at += HALF;
    }
    for i in at..n {
        dst[i] = a[i] + b[i];
    }
}

/// Patch the two exception cells of one merged row: they combine by `max`,
/// not `+` (maximum output cardinality, maximum tuple width).
#[inline]
fn patch_max_cells(dst: &mut [f64], a: &[f64], b: &[f64]) {
    dst[FeatureLayout::MAX_OUT_CARD] =
        a[FeatureLayout::MAX_OUT_CARD].max(b[FeatureLayout::MAX_OUT_CARD]);
    dst[FeatureLayout::MAX_TUPLE_WIDTH] =
        a[FeatureLayout::MAX_TUPLE_WIDTH].max(b[FeatureLayout::MAX_TUPLE_WIDTH]);
}

/// `dst = a + b` cell-wise, with the two max cells taking `max(a, b)`.
#[inline]
pub fn merge_feats(dst: &mut [f64], a: &[f64], b: &[f64]) {
    fused_add(dst, a, b);
    patch_max_cells(dst, a, b);
}

/// Batched merge: `a` against every row of `b`, written to `dst` (cleared
/// and resized to `b.rows() × b.width()` row-major cells). Row `r` of the
/// output is bit-identical to `merge_feats(out_r, a, b.row(r))` — the
/// batching only amortizes bounds checks and keeps the destination block
/// contiguous for the staged oracle call that follows.
pub fn merge_feats_many(dst: &mut Vec<f64>, a: &[f64], b: RowsView<'_>) {
    let width = b.width();
    debug_assert_eq!(a.len(), width);
    dst.clear();
    dst.resize(b.rows() * width, 0.0);
    for (drow, brow) in dst
        .chunks_exact_mut(width)
        .zip(b.flat().chunks_exact(width))
    {
        fused_add(drow, a, brow);
        patch_max_cells(drow, a, brow);
    }
}

/// Combine disjoint assignment arrays: each operator is covered by at most
/// one side.
#[inline]
pub fn merge_assignments(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        debug_assert!(x == NO_PLATFORM || y == NO_PLATFORM, "overlapping scopes");
        *d = if x != NO_PLATFORM { x } else { y };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_cells_and_maxes_exception_cells() {
        let l = FeatureLayout::new(2, 4);
        let mut a = vec![1.0; l.width];
        let mut b = vec![2.0; l.width];
        a[FeatureLayout::MAX_OUT_CARD] = 100.0;
        b[FeatureLayout::MAX_OUT_CARD] = 7.0;
        a[FeatureLayout::MAX_TUPLE_WIDTH] = 8.0;
        b[FeatureLayout::MAX_TUPLE_WIDTH] = 64.0;
        let mut d = vec![0.0; l.width];
        merge_feats(&mut d, &a, &b);
        assert_eq!(d[FeatureLayout::OP_COUNT], 3.0);
        assert_eq!(d[FeatureLayout::MAX_OUT_CARD], 100.0);
        assert_eq!(d[FeatureLayout::MAX_TUPLE_WIDTH], 64.0);
        assert!(d[4..].iter().all(|&c| c == 3.0));
    }

    #[test]
    fn assignments_take_the_covering_side() {
        let a = [0, NO_PLATFORM, NO_PLATFORM];
        let b = [NO_PLATFORM, 1, NO_PLATFORM];
        let mut d = [0u8; 3];
        merge_assignments(&mut d, &a, &b);
        assert_eq!(d, [0, 1, NO_PLATFORM]);
    }

    /// Reference scalar kernel the lane-structured one must match bitwise.
    fn scalar_merge(dst: &mut [f64], a: &[f64], b: &[f64]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x + y;
        }
        patch_max_cells(dst, a, b);
    }

    #[test]
    fn lane_structured_kernel_matches_scalar_bitwise_at_every_tail_width() {
        // Widths covering every `% 8` residue, including sub-lane rows.
        for width in 4..=27usize {
            let a: Vec<f64> = (0..width).map(|i| (i as f64) * 1.25 + 0.1).collect();
            let b: Vec<f64> = (0..width).map(|i| (i as f64) * -0.75 + 9.0).collect();
            let mut fast = vec![0.0; width];
            let mut slow = vec![0.0; width];
            merge_feats(&mut fast, &a, &b);
            scalar_merge(&mut slow, &a, &b);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits(), "width {width}");
            }
        }
    }

    #[test]
    fn batched_merge_matches_per_row_merge_bitwise() {
        let width = 13;
        let rows = 5;
        let a: Vec<f64> = (0..width).map(|i| i as f64 * 0.5).collect();
        let mut flat = vec![0.0; rows * width];
        for (i, cell) in flat.iter_mut().enumerate() {
            *cell = ((i * 7919) % 97) as f64 * 0.25;
        }
        let view = RowsView::new(&flat, width);
        let mut batched = Vec::new();
        merge_feats_many(&mut batched, &a, view);
        assert_eq!(batched.len(), rows * width);
        let mut single = vec![0.0; width];
        for r in 0..rows {
            merge_feats(&mut single, &a, view.row(r));
            for (c, (x, y)) in batched[r * width..(r + 1) * width]
                .iter()
                .zip(&single)
                .enumerate()
            {
                assert_eq!(x.to_bits(), y.to_bits(), "row {r} cell {c}");
            }
        }
    }

    #[test]
    fn batched_merge_with_zero_rows_is_empty() {
        let width = 9;
        let a = vec![1.0; width];
        let mut out = vec![42.0; 3];
        merge_feats_many(&mut out, &a, RowsView::new(&[], width));
        assert!(out.is_empty());
    }
}
