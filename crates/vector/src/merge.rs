//! The `merge` kernel (paper Section IV-D; DESIGN §5).
//!
//! Merging two subplan vectors is one fused loop of `f64` adds over the
//! whole row — auto-vectorizable — followed by patching the two exception
//! cells, which combine by `max` instead of `+` (maximum output cardinality
//! and maximum tuple width). Assignment arrays combine by taking whichever
//! side covers each operator; merged scopes are disjoint by construction.

use crate::layout::FeatureLayout;
use crate::matrix::NO_PLATFORM;

/// `dst = a + b` cell-wise, with the two max cells taking `max(a, b)`.
#[inline]
pub fn merge_feats(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x + y;
    }
    dst[FeatureLayout::MAX_OUT_CARD] =
        a[FeatureLayout::MAX_OUT_CARD].max(b[FeatureLayout::MAX_OUT_CARD]);
    dst[FeatureLayout::MAX_TUPLE_WIDTH] =
        a[FeatureLayout::MAX_TUPLE_WIDTH].max(b[FeatureLayout::MAX_TUPLE_WIDTH]);
}

/// Combine disjoint assignment arrays: each operator is covered by at most
/// one side.
#[inline]
pub fn merge_assignments(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        debug_assert!(x == NO_PLATFORM || y == NO_PLATFORM, "overlapping scopes");
        *d = if x != NO_PLATFORM { x } else { y };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_cells_and_maxes_exception_cells() {
        let l = FeatureLayout::new(2, 4);
        let mut a = vec![1.0; l.width];
        let mut b = vec![2.0; l.width];
        a[FeatureLayout::MAX_OUT_CARD] = 100.0;
        b[FeatureLayout::MAX_OUT_CARD] = 7.0;
        a[FeatureLayout::MAX_TUPLE_WIDTH] = 8.0;
        b[FeatureLayout::MAX_TUPLE_WIDTH] = 64.0;
        let mut d = vec![0.0; l.width];
        merge_feats(&mut d, &a, &b);
        assert_eq!(d[FeatureLayout::OP_COUNT], 3.0);
        assert_eq!(d[FeatureLayout::MAX_OUT_CARD], 100.0);
        assert_eq!(d[FeatureLayout::MAX_TUPLE_WIDTH], 64.0);
        assert!(d[4..].iter().all(|&c| c == 3.0));
    }

    #[test]
    fn assignments_take_the_covering_side() {
        let a = [0, NO_PLATFORM, NO_PLATFORM];
        let b = [NO_PLATFORM, 1, NO_PLATFORM];
        let mut d = [0u8; 3];
        merge_assignments(&mut d, &a, &b);
        assert_eq!(d, [0, 1, NO_PLATFORM]);
    }
}
