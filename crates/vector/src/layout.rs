//! The Fig-5 plan-vector layout, parameterized by platform count and
//! operator-kind count.
//!
//! Cell blocks (all additive under subplan merge unless noted):
//!
//! | block | cells | content |
//! |---|---|---|
//! | global | 4 | op count, juncture count, max output cardinality (**max**), max tuple width (**max**) |
//! | per kind | 3·K | instance count, sum of input tuples, sum of output tuples |
//! | per kind × platform | K·k | instance count on that platform |
//! | per platform conversion | 2·k | conversion count into platform, converted tuples |
//! | per platform input | k | effective input tuples processed on platform |
//!
//! The two **max** cells are the merge kernel's exception cells (DESIGN §5).

/// Layout of one plan-vector row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureLayout {
    pub n_platforms: usize,
    pub n_kinds: usize,
    pub width: usize,
}

impl FeatureLayout {
    /// Cell 0: number of operators in the subplan.
    pub const OP_COUNT: usize = 0;
    /// Cell 1: number of juncture operators (fan-in/out > 1).
    pub const JUNCTURE_COUNT: usize = 1;
    /// Cell 2: maximum output cardinality over the subplan (**max** cell).
    pub const MAX_OUT_CARD: usize = 2;
    /// Cell 3: maximum tuple width over the subplan (**max** cell).
    pub const MAX_TUPLE_WIDTH: usize = 3;
    const GLOBAL_CELLS: usize = 4;

    pub fn new(n_platforms: usize, n_kinds: usize) -> Self {
        assert!((1..=8).contains(&n_platforms));
        let width = Self::GLOBAL_CELLS + 3 * n_kinds + n_kinds * n_platforms + 3 * n_platforms;
        FeatureLayout {
            n_platforms,
            n_kinds,
            width,
        }
    }

    /// Instance count of operator kind `kind`.
    #[inline]
    pub fn kind_count(&self, kind: usize) -> usize {
        Self::GLOBAL_CELLS + kind * 3
    }

    /// Sum of input tuples over operators of `kind`.
    #[inline]
    pub fn kind_in_tuples(&self, kind: usize) -> usize {
        Self::GLOBAL_CELLS + kind * 3 + 1
    }

    /// Sum of output tuples over operators of `kind`.
    #[inline]
    pub fn kind_out_tuples(&self, kind: usize) -> usize {
        Self::GLOBAL_CELLS + kind * 3 + 2
    }

    /// Instance count of `kind` assigned to `platform`.
    #[inline]
    // lint:allow(platform-id) robopt-vector sits below robopt-platforms in the dependency graph; callers derive this index from PlatformId::index()
    pub fn kind_platform_count(&self, kind: usize, platform: usize) -> usize {
        Self::GLOBAL_CELLS + 3 * self.n_kinds + kind * self.n_platforms + platform
    }

    /// Number of data-movement conversions *into* `platform`.
    #[inline]
    // lint:allow(platform-id) robopt-vector sits below robopt-platforms in the dependency graph; callers derive this index from PlatformId::index()
    pub fn conversion_count(&self, platform: usize) -> usize {
        Self::GLOBAL_CELLS + 3 * self.n_kinds + self.n_kinds * self.n_platforms + 2 * platform
    }

    /// Tuples moved by conversions *into* `platform`.
    #[inline]
    // lint:allow(platform-id) robopt-vector sits below robopt-platforms in the dependency graph; callers derive this index from PlatformId::index()
    pub fn conversion_tuples(&self, platform: usize) -> usize {
        self.conversion_count(platform) + 1
    }

    /// Effective input tuples processed on `platform`.
    #[inline]
    // lint:allow(platform-id) robopt-vector sits below robopt-platforms in the dependency graph; callers derive this index from PlatformId::index()
    pub fn platform_input_tuples(&self, platform: usize) -> usize {
        Self::GLOBAL_CELLS
            + 3 * self.n_kinds
            + self.n_kinds * self.n_platforms
            + 2 * self.n_platforms
            + platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_disjoint_and_cover_width() {
        let l = FeatureLayout::new(3, 24);
        let mut seen = vec![false; l.width];
        let mut mark = |i: usize| {
            assert!(!seen[i], "cell {i} assigned twice");
            seen[i] = true;
        };
        for c in 0..4 {
            mark(c);
        }
        for kind in 0..24 {
            mark(l.kind_count(kind));
            mark(l.kind_in_tuples(kind));
            mark(l.kind_out_tuples(kind));
            for p in 0..3 {
                mark(l.kind_platform_count(kind, p));
            }
        }
        for p in 0..3 {
            mark(l.conversion_count(p));
            mark(l.conversion_tuples(p));
            mark(l.platform_input_tuples(p));
        }
        assert!(seen.iter().all(|&s| s), "layout leaves unused cells");
    }
}
