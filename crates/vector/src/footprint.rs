//! Scope bitsets and Def-2 pruning footprints.
//!
//! A subplan's *pruning footprint* is the multiset of (boundary operator,
//! platform) pairs — boundary operators are the operators of the scope with
//! a dataflow edge to an operator outside the scope. Two subplans with equal
//! footprints interact identically with the rest of the plan, so `prune`
//! keeps only the cheapest row per footprint (lossless, Lemma 1). The
//! footprint is hashed to a `u64` key with a SplitMix-style mixer; `prune`
//! is then one hash-map pass.

/// A subplan scope over at most 128 operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Scope(pub u128);

impl Scope {
    #[inline]
    pub fn singleton(op: u32) -> Self {
        Scope(1u128 << op)
    }

    #[inline]
    pub fn contains(self, op: u32) -> bool {
        self.0 & (1u128 << op) != 0
    }

    #[inline]
    pub fn union(self, other: Scope) -> Scope {
        Scope(self.0 | other.0)
    }

    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash the footprint of a row: `boundary_ops` must be in ascending op-id
/// order (canonical form — Def. 2's sorted pair list) and `assign` is the
/// row's full per-operator assignment array.
#[inline]
pub fn footprint_hash(boundary_ops: &[u32], assign: &[u8]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &op in boundary_ops {
        debug_assert!((op as usize) < assign.len());
        let pair = ((op as u64) << 8) | assign[op as usize] as u64;
        h = mix(h ^ pair).rotate_left(17) ^ h;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_ops() {
        let s = Scope::singleton(3).union(Scope::singleton(100));
        assert!(s.contains(3) && s.contains(100) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Scope::default().is_empty());
    }

    #[test]
    fn footprint_depends_on_boundary_assignments_only() {
        // Same boundary assignments, different interior assignment -> equal.
        let a1 = [0u8, 1, 0, 1];
        let a2 = [0u8, 0, 0, 1];
        let boundary = [0u32, 3];
        assert_eq!(
            footprint_hash(&boundary, &a1),
            footprint_hash(&boundary, &a2)
        );
        // Different boundary assignment -> different (w.h.p.).
        let a3 = [1u8, 1, 0, 1];
        assert_ne!(
            footprint_hash(&boundary, &a1),
            footprint_hash(&boundary, &a3)
        );
        // Order/identity of boundary ops matters.
        assert_ne!(footprint_hash(&[0, 3], &a1), footprint_hash(&[0, 2], &a1));
    }
}
