//! Scope bitsets and Def-2 pruning footprints.
//!
//! A subplan's *pruning footprint* is the multiset of (boundary operator,
//! platform) pairs — boundary operators are the operators of the scope with
//! a dataflow edge to an operator outside the scope. Two subplans with equal
//! footprints interact identically with the rest of the plan, so `prune`
//! keeps only the cheapest row per footprint (lossless, Lemma 1). The
//! footprint is hashed to a `u64` key with a SplitMix-style mixer; `prune`
//! is then one hash-map pass.

/// A subplan scope over at most 128 operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Scope(pub u128);

impl Scope {
    #[inline]
    pub fn singleton(op: u32) -> Self {
        Scope(1u128 << op)
    }

    #[inline]
    pub fn contains(self, op: u32) -> bool {
        self.0 & (1u128 << op) != 0
    }

    #[inline]
    pub fn union(self, other: Scope) -> Scope {
        Scope(self.0 | other.0)
    }

    /// The scope containing every operator of an `n`-operator plan.
    #[inline]
    pub fn full(n: usize) -> Self {
        debug_assert!(n <= 128, "scope bitsets hold at most 128 operators");
        if n >= 128 {
            Scope(u128::MAX)
        } else {
            Scope((1u128 << n) - 1)
        }
    }

    /// Lowest operator id in the scope — the canonical union-find root the
    /// enumerator anchors a pre-built unit at. `None` for the empty scope.
    #[inline]
    pub fn min_op(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash the footprint of a row: `boundary_ops` must be in ascending op-id
/// order (canonical form — Def. 2's sorted pair list) and `assign` is the
/// row's full per-operator assignment array.
#[inline]
pub fn footprint_hash(boundary_ops: &[u32], assign: &[u8]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &op in boundary_ops {
        debug_assert!((op as usize) < assign.len());
        let pair = ((op as u64) << 8) | assign[op as usize] as u64;
        h = mix(h ^ pair).rotate_left(17) ^ h;
    }
    h
}

/// Incremental plan-signature hasher over the footprint mixer.
///
/// The service layer's memoization cache keys requests by a `u64`
/// signature; deriving it here keeps the key construction on the same
/// SplitMix-style mixer (and the same avalanche guarantees) as
/// [`footprint_hash`], so cache keys and pruning footprints share one
/// hashing discipline. Feed words with [`SigHasher::write_u64`] /
/// [`SigHasher::write_f64_bits`] — `f64` inputs hash by bit pattern, so
/// two requests collide only when they are bit-identical — and take the
/// finalized key with [`SigHasher::finish`]. Pure function of the write
/// sequence: no per-process seed, no addresses, no time.
#[derive(Debug, Clone)]
pub struct SigHasher {
    h: u64,
}

impl Default for SigHasher {
    fn default() -> Self {
        SigHasher::new()
    }
}

impl SigHasher {
    pub fn new() -> Self {
        SigHasher {
            h: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Absorb one word. Same combine step as [`footprint_hash`].
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.h = mix(self.h ^ v).rotate_left(17) ^ self.h;
    }

    /// Absorb an `f64` by bit pattern (`-0.0` and `0.0` hash differently;
    /// every NaN payload is its own value — bit-identity is the contract).
    #[inline]
    pub fn write_f64_bits(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Finalized signature for everything written so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        mix(self.h)
    }
}

/// A deterministic `u64 -> u32` map for pruning footprints.
///
/// Open addressing (linear probing) over a power-of-two slot table keyed by
/// a SplitMix64-finalized hash, with entries kept in a side `Vec` in
/// **insertion order** — iteration order is a pure function of the insert
/// sequence, never of a per-process hasher seed. This replaces the
/// `std::collections::HashMap<u64, _>` footprint tables the enumerators
/// used: `std`'s map is seeded per process (`RandomState`), so any code
/// path that ever iterates it is a latent cross-run nondeterminism bug the
/// `robopt-lint` `hash-container` rule now rejects outright in
/// determinism-critical crates.
///
/// `clear` keeps both allocations, so a warmed table serves the
/// enumeration hot loop without growing (same pooling discipline as
/// [`crate::EnumMatrix`]).
#[derive(Debug, Clone, Default)]
pub struct FootprintTable {
    /// Slot table: 0 = empty, else entry index + 1. Length is a power of
    /// two; `mask = slots.len() - 1`.
    slots: Vec<u32>,
    /// `(key, value)` pairs in insertion order.
    entries: Vec<(u64, u32)>,
}

impl FootprintTable {
    const MIN_SLOTS: usize = 16;

    pub fn new() -> Self {
        FootprintTable::default()
    }

    /// Remove every entry, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(0);
        self.entries.clear();
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probe start for `key` in the current slot table.
    #[inline]
    fn start(&self, key: u64) -> usize {
        mix(key) as usize & (self.slots.len() - 1)
    }

    /// Value stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.start(key);
        loop {
            match self.slots.get(i).copied() {
                None | Some(0) => return None,
                Some(slot) => {
                    if let Some(&(k, v)) = self.entries.get(slot as usize - 1) {
                        if k == key {
                            return Some(v);
                        }
                    }
                }
            }
            i = (i + 1) & (self.slots.len() - 1);
        }
    }

    /// Insert `key -> value`, replacing any previous value for `key`.
    pub fn insert(&mut self, key: u64, value: u32) {
        if self.entries.len() + 1 > self.slots.len() / 8 * 7 {
            self.grow();
        }
        let mut i = self.start(key);
        loop {
            match self.slots.get(i).copied() {
                None | Some(0) => break,
                Some(slot) => {
                    if let Some(e) = self.entries.get_mut(slot as usize - 1) {
                        if e.0 == key {
                            e.1 = value;
                            return;
                        }
                    }
                }
            }
            i = (i + 1) & (self.slots.len() - 1);
        }
        self.entries.push((key, value));
        if let Some(s) = self.slots.get_mut(i) {
            *s = self.entries.len() as u32;
        }
    }

    /// Double the slot table and re-seat every entry (values untouched,
    /// insertion order preserved by construction).
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(Self::MIN_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, 0);
        let mask = new_len - 1;
        for (idx, &(key, _)) in self.entries.iter().enumerate() {
            let mut i = mix(key) as usize & mask;
            loop {
                match self.slots.get(i).copied() {
                    None | Some(0) => break,
                    Some(_) => i = (i + 1) & mask,
                }
            }
            if let Some(s) = self.slots.get_mut(i) {
                *s = idx as u32 + 1;
            }
        }
    }

    /// Entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_ops() {
        let s = Scope::singleton(3).union(Scope::singleton(100));
        assert!(s.contains(3) && s.contains(100) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Scope::default().is_empty());
    }

    #[test]
    fn footprint_depends_on_boundary_assignments_only() {
        // Same boundary assignments, different interior assignment -> equal.
        let a1 = [0u8, 1, 0, 1];
        let a2 = [0u8, 0, 0, 1];
        let boundary = [0u32, 3];
        assert_eq!(
            footprint_hash(&boundary, &a1),
            footprint_hash(&boundary, &a2)
        );
        // Different boundary assignment -> different (w.h.p.).
        let a3 = [1u8, 1, 0, 1];
        assert_ne!(
            footprint_hash(&boundary, &a1),
            footprint_hash(&boundary, &a3)
        );
        // Order/identity of boundary ops matters.
        assert_ne!(footprint_hash(&[0, 3], &a1), footprint_hash(&[0, 2], &a1));
    }

    #[test]
    fn footprint_table_get_insert_replace() {
        let mut t = FootprintTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(42), None);
        t.insert(42, 7);
        t.insert(43, 8);
        assert_eq!(t.get(42), Some(7));
        assert_eq!(t.get(43), Some(8));
        assert_eq!(t.get(44), None);
        t.insert(42, 9); // replace, not duplicate
        assert_eq!(t.get(42), Some(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn footprint_table_survives_growth_and_adversarial_keys() {
        let mut t = FootprintTable::new();
        // Sequential keys and keys colliding in the low bits both force
        // probing and several rehashes.
        for i in 0..1000u64 {
            t.insert(i << 32, i as u32);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(t.get(i << 32), Some(i as u32), "key {i}");
        }
        assert_eq!(t.get(1000u64 << 32), None);
    }

    #[test]
    fn footprint_table_iterates_in_insertion_order_and_clear_reuses() {
        let mut t = FootprintTable::new();
        let keys = [99u64, 3, 500, 1, 77];
        for (v, &k) in keys.iter().enumerate() {
            t.insert(k, v as u32);
        }
        let got: Vec<(u64, u32)> = t.iter().collect();
        let want: Vec<(u64, u32)> = keys
            .iter()
            .enumerate()
            .map(|(v, &k)| (k, v as u32))
            .collect();
        assert_eq!(got, want, "iteration must follow insertion order");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(99), None);
        t.insert(5, 1);
        assert_eq!(t.get(5), Some(1));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(5, 1)]);
    }

    #[test]
    fn sig_hasher_is_deterministic_and_order_sensitive() {
        let mut a = SigHasher::new();
        let mut b = SigHasher::new();
        for v in [1u64, 2, 3] {
            a.write_u64(v);
            b.write_u64(v);
        }
        assert_eq!(a.finish(), b.finish(), "same writes, same signature");

        let mut rev = SigHasher::new();
        for v in [3u64, 2, 1] {
            rev.write_u64(v);
        }
        assert_ne!(a.finish(), rev.finish(), "write order must matter");

        // f64 inputs hash by bit pattern: 0.0 and -0.0 are distinct keys.
        let mut pos = SigHasher::new();
        pos.write_f64_bits(0.0);
        let mut neg = SigHasher::new();
        neg.write_f64_bits(-0.0);
        assert_ne!(pos.finish(), neg.finish());

        // Empty-prefix sensitivity: writing a zero word changes the key.
        let mut zero = SigHasher::new();
        zero.write_u64(0);
        assert_ne!(zero.finish(), SigHasher::new().finish());
    }

    #[test]
    fn scope_full_and_min_op() {
        assert_eq!(Scope::full(0), Scope::default());
        assert_eq!(Scope::full(3).len(), 3);
        assert_eq!(Scope::full(128).len(), 128);
        assert!(Scope::full(5).contains(4));
        assert!(!Scope::full(5).contains(5));
        assert_eq!(Scope::default().min_op(), None);
        assert_eq!(Scope::singleton(7).min_op(), Some(7));
        assert_eq!(
            Scope::singleton(9).union(Scope::singleton(2)).min_op(),
            Some(2)
        );
    }
}
