//! `robopt-engine`: a small single-process dataflow executor (the "Java
//! platform" made real) plus synthetic data generators, proving logical
//! plans are runnable end to end (WordCount really counts words).
//!
//! **Stub** — lands in a later PR (see ROADMAP.md "Open items").

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

/// Placeholder so dependents can reference the crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct Placeholder;
