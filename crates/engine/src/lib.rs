//! `robopt-engine`: the real multi-threaded in-memory dataflow executor —
//! the "Java platform" made real (ISSUE 8, ROADMAP item 2).
//!
//! [`Engine`] implements the [`robopt_platforms::ExecutionBackend`] seam
//! next to the analytic simulator: WordCount really counts generated
//! words, GroupBy really groups, and `RepeatLoop` runs PageRank / k-means
//! kernels with per-iteration loop overheads. Module map:
//!
//! * [`data`] — records, seeded per-row generators, canonical per-record
//!   operator semantics, and the output digest;
//! * [`exec`] — the partition-parallel executor (`std::thread::scope`,
//!   order-preserving chunking, sort-based keyed operators) and the
//!   iterative kernels;
//! * [`reference`] — the independent single-threaded reference executor
//!   the byte-identity tests compare against.
//!
//! Determinism contract (DESIGN §11): output records and digests are pure
//! functions of `(plan, seed, row cap)` — invariant across worker counts,
//! chunkings, and processes. Measured timings are wall clock, surfaced
//! only through [`robopt_platforms::ExecutionReport`], and never digested.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod data;
pub mod exec;
pub mod reference;

pub use data::{digest_records, digest_terminals, Record};
pub use exec::{Engine, ExecutionOutput, DEFAULT_MAX_SOURCE_ROWS, OVERHEAD_SCALE};
pub use reference::execute_reference;
