//! The multi-threaded in-memory dataflow executor — the "Java platform"
//! made real.
//!
//! [`Engine`] really moves [`Record`]s: WordCount counts actual generated
//! words, GroupBy groups them, and `RepeatLoop` runs PageRank or k-means
//! kernels with per-iteration loop overheads. Parallelism is
//! order-preserving by construction, so **outputs are byte-identical
//! across worker counts**:
//!
//! * map-side operators process contiguous input chunks and concatenate
//!   results in chunk order — identical to the sequential pass;
//! * every keyed operator is sort-based under the total order
//!   [`record_cmp`]; parallel chunk-sort + k-way merge reproduces the full
//!   sort byte-for-byte because equal elements are fully identical;
//! * all floating-point accumulation happens sequentially in canonical
//!   (sorted or stream) order — threads never race on a sum;
//! * sources seed each record by row index, never by partition.
//!
//! Timings are the one non-deterministic output: `compute_seconds` is
//! measured wall clock, while startup/fixed/conversion/loop-sync overheads
//! are deterministically modeled on the simulator's calibration
//! ([`C_FIXED`]) scaled by [`OVERHEAD_SCALE`] (one process stands in for a
//! cluster). Timings land only in the [`ExecutionReport`] — they are
//! **never** digested.

use robopt_plan::{rng::mix64, LogicalPlan, OperatorKind};
use robopt_platforms::simulator::C_FIXED;
use robopt_platforms::{
    ExecutionBackend, ExecutionReport, OperatorReport, PlatformId, PlatformRegistry,
};

use crate::data::{
    assign_point, digest_terminals, flat_map_record, keep_record, map_record, point_of, record_cmp,
    source_record, Record, FILTER_SALT, PAGERANK_DST_SALT, SAMPLE_SALT,
};

/// Default cap on generated source rows — bounds memory and wall time for
/// plans whose specs claim cluster-scale cardinalities.
pub const DEFAULT_MAX_SOURCE_ROWS: u64 = 200_000;

/// Scale applied to modeled overheads: one process stands in for the
/// simulated 10-node cluster, so startup/fixed/conversion charges shrink
/// to stay commensurate with single-node measured compute while still
/// dominating the platform ranking.
pub const OVERHEAD_SCALE: f64 = 0.02;

/// Per-iteration loop-synchronization surcharge on a `RepeatLoop`'s fixed
/// cost (matches the simulator's iterate term).
const LOOP_SYNC_FACTOR: f64 = 0.25;

/// Caps keeping pair-producing operators polynomial: per-key join fanout
/// and per-side cartesian fanout.
pub(crate) const JOIN_GROUP_CAP: usize = 8;
pub(crate) const CARTESIAN_SIDE_CAP: usize = 64;

/// PageRank damping factor.
pub(crate) const PAGERANK_DAMPING: f64 = 0.85;

/// k-means cluster count.
pub(crate) const KMEANS_K: usize = 8;

// Wall-clock sampling for measured operator timings. Isolated here so the
// rest of the crate stays free of time tokens.
// lint:allow(wall-clock) measured engine timings are reported-only telemetry (ExecutionReport), never digested or cached
use std::time::Instant;

#[inline]
fn clock_now() -> Instant {
    // lint:allow(wall-clock) reported-only operator timing, excluded from all determinism digests
    Instant::now()
}

#[inline]
fn clock_elapsed(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

/// The real in-memory execution backend.
#[derive(Debug, Clone)]
pub struct Engine<'a> {
    registry: &'a PlatformRegistry,
    workers: usize,
    seed: u64,
    max_source_rows: u64,
}

/// Everything one engine run produced: the terminal record streams (op-id
/// ascending) plus the timing/cardinality report.
#[derive(Debug, Clone)]
pub struct ExecutionOutput {
    /// `(op id, records)` for every operator with no successors; sinks
    /// capture the records delivered to them.
    pub terminals: Vec<(u32, Vec<Record>)>,
    /// Timings, cardinalities, and the output digest.
    pub report: ExecutionReport,
}

impl<'a> Engine<'a> {
    /// An engine over `registry` with 1 worker and the default row cap.
    pub fn new(registry: &'a PlatformRegistry) -> Self {
        Engine {
            registry,
            workers: 1,
            seed: 0xE6_91_4E,
            max_source_rows: DEFAULT_MAX_SOURCE_ROWS,
        }
    }

    /// Worker threads for partition-parallel operators (≥ 1). Changes wall
    /// time only — never output bytes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Data-generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap on generated rows per source operator (≥ 1).
    pub fn with_max_source_rows(mut self, cap: u64) -> Self {
        self.max_source_rows = cap.max(1);
        self
    }

    /// The registry this engine executes against.
    #[inline]
    pub fn registry(&self) -> &PlatformRegistry {
        self.registry
    }

    /// The data-generation seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-source row cap.
    #[inline]
    pub fn max_source_rows(&self) -> u64 {
        self.max_source_rows
    }

    /// Run `plan` and keep the terminal record streams (the trait method
    /// [`ExecutionBackend::execute`] drops them).
    // lint:surface(deterministic)
    pub fn execute_collect(
        &self,
        plan: &LogicalPlan,
        assignments: &[PlatformId],
    ) -> ExecutionOutput {
        let n = plan.n_ops();
        let infeasible = || ExecutionOutput {
            terminals: Vec::new(),
            report: ExecutionReport::infeasible("engine"),
        };
        if assignments.len() != n {
            return infeasible();
        }
        // Feasibility first: operator availability and conversion paths.
        for op in 0..n as u32 {
            let p = match assignments.get(op as usize) {
                Some(p) => *p,
                None => return infeasible(),
            };
            if !self.registry.is_available(plan.op(op).kind, p) {
                return infeasible();
            }
        }
        for &(u, v) in plan.edges() {
            let (pu, pv) = match (assignments.get(u as usize), assignments.get(v as usize)) {
                (Some(a), Some(b)) => (*a, *b),
                _ => return infeasible(),
            };
            if pu != pv && !self.registry.convertible(pu, pv) {
                return infeasible();
            }
        }

        // Execute in topological order, measuring wall time per operator.
        let mut outputs: Vec<Vec<Record>> = vec![Vec::new(); n];
        let mut measured = vec![0.0f64; n];
        for op in plan.topo_order() {
            let i = op as usize;
            let p = assignments
                .get(i)
                .copied()
                .unwrap_or(PlatformId::from_index(0));
            let w = self.op_workers(p);
            let started = clock_now();
            let out = self.run_op(plan, op, &outputs, w);
            measured[i] = clock_elapsed(started);
            outputs[i] = out;
        }

        // Deterministically modeled overheads on the simulator calibration.
        let mut overhead = 0.0f64;
        let mut per_op_overhead = vec![0.0f64; n];
        let mut used_mask = 0u8;
        for op in 0..n as u32 {
            let i = op as usize;
            let p = assignments
                .get(i)
                .copied()
                .unwrap_or(PlatformId::from_index(0));
            used_mask |= 1u8 << p.index();
            let o = plan.op(op);
            let loop_fixed = if o.kind == OperatorKind::RepeatLoop && o.iterations >= 1 {
                1.0 + LOOP_SYNC_FACTOR * f64::from(o.iterations)
            } else {
                1.0
            };
            let fixed =
                self.registry.platform(p).fixed_cost * C_FIXED * loop_fixed * OVERHEAD_SCALE;
            per_op_overhead[i] = fixed;
            overhead += fixed;
        }
        for p in self.registry.ids() {
            if used_mask & (1u8 << p.index()) != 0 {
                overhead += self.registry.platform(p).startup_s * OVERHEAD_SCALE;
            }
        }
        for &(u, v) in plan.edges() {
            let (pu, pv) = match (assignments.get(u as usize), assignments.get(v as usize)) {
                (Some(a), Some(b)) => (*a, *b),
                _ => continue,
            };
            if pu != pv {
                let rows = outputs.get(u as usize).map(Vec::len).unwrap_or(0);
                let c = self.registry.conversion_cost(pu, pv, rows as f64);
                if c.is_finite() {
                    overhead += c * C_FIXED * OVERHEAD_SCALE;
                }
            }
        }

        let compute: f64 = measured.iter().sum();
        let per_op: Vec<OperatorReport> = (0..n)
            .map(|i| OperatorReport {
                seconds: measured.get(i).copied().unwrap_or(0.0)
                    + per_op_overhead.get(i).copied().unwrap_or(0.0),
                output_rows: outputs.get(i).map(Vec::len).unwrap_or(0) as u64,
            })
            .collect();

        let mut terminals: Vec<(u32, Vec<Record>)> = Vec::new();
        for op in 0..n as u32 {
            if plan.succs(op).is_empty() {
                let records = outputs
                    .get_mut(op as usize)
                    .map(std::mem::take)
                    .unwrap_or_default();
                terminals.push((op, records));
            }
        }
        let output_rows: u64 = terminals.iter().map(|(_, r)| r.len() as u64).sum();
        let output_digest = digest_terminals(&terminals);

        ExecutionOutput {
            terminals,
            report: ExecutionReport {
                backend: "engine",
                seconds: compute + overhead,
                compute_seconds: compute,
                overhead_seconds: overhead,
                feasible: true,
                measured: true,
                output_rows,
                output_digest,
                per_op,
            },
        }
    }

    /// Effective worker count for an operator on platform `p`: the engine's
    /// workers capped by the platform's modeled parallelism (Java streams
    /// run single-threaded, Spark operators fan out).
    fn op_workers(&self, p: PlatformId) -> usize {
        let par = self.registry.platform(p).parallelism.max(1.0) as usize;
        self.workers.min(par.max(1)).max(1)
    }

    fn run_op(
        &self,
        plan: &LogicalPlan,
        op: u32,
        outputs: &[Vec<Record>],
        w: usize,
    ) -> Vec<Record> {
        let o = plan.op(op);
        let preds = plan.preds(op);
        match o.kind {
            OperatorKind::TextFileSource
            | OperatorKind::CollectionSource
            | OperatorKind::TableSource => {
                let rows = clamp_rows(o.source_cardinality, self.max_source_rows);
                let (kind, seed) = (o.kind, self.seed);
                self.par_ranges(w, rows as usize, move |lo, hi, out| {
                    for row in lo..hi {
                        out.push(source_record(kind, seed, op, row as u64, rows));
                    }
                })
            }
            OperatorKind::Map | OperatorKind::MapPartitions => {
                let input = gather(preds, outputs);
                self.par_records(w, &input, |r, out| out.push(map_record(r)))
            }
            OperatorKind::Cache | OperatorKind::Broadcast | OperatorKind::LocalCallbackSink => {
                gather(preds, outputs)
            }
            OperatorKind::FlatMap => {
                let input = gather(preds, outputs);
                self.par_records(w, &input, flat_map_record)
            }
            OperatorKind::Filter => {
                let input = gather(preds, outputs);
                let sel = o.selectivity;
                self.par_records(w, &input, move |r, out| {
                    if keep_record(r, sel, FILTER_SALT) {
                        out.push(r.clone());
                    }
                })
            }
            OperatorKind::Sample => {
                let input = gather(preds, outputs);
                let sel = o.selectivity;
                self.par_records(w, &input, move |r, out| {
                    if keep_record(r, sel, SAMPLE_SALT) {
                        out.push(r.clone());
                    }
                })
            }
            OperatorKind::Sort => self.par_sort(w, gather(preds, outputs)),
            OperatorKind::Distinct => {
                let mut sorted = self.par_sort(w, gather(preds, outputs));
                sorted.dedup_by(|a, b| {
                    a.key == b.key && a.num.to_bits() == b.num.to_bits() && a.text == b.text
                });
                sorted
            }
            OperatorKind::ReduceByKey => {
                fold_groups(self.par_sort(w, gather(preds, outputs)), GroupMode::Sum)
            }
            OperatorKind::GroupByKey => {
                fold_groups(self.par_sort(w, gather(preds, outputs)), GroupMode::Count)
            }
            OperatorKind::Aggregate => aggregate_sum(&gather(preds, outputs)),
            OperatorKind::GlobalReduce => global_max(&gather(preds, outputs)),
            OperatorKind::Count => {
                let input = gather(preds, outputs);
                vec![Record {
                    key: 0,
                    num: input.len() as f64,
                    text: String::new(),
                }]
            }
            OperatorKind::Join => {
                let (a, b) = gather2(preds, outputs);
                join_sorted(self.par_sort(w, a), self.par_sort(w, b))
            }
            OperatorKind::Intersect => {
                let (a, b) = gather2(preds, outputs);
                intersect_sorted(self.par_sort(w, a), self.par_sort(w, b))
            }
            OperatorKind::CartesianProduct => {
                let (a, b) = gather2(preds, outputs);
                cartesian(&a, &b)
            }
            OperatorKind::Union => gather(preds, outputs),
            OperatorKind::ZipWithId => {
                let input = gather(preds, outputs);
                self.par_ranges(w, input.len(), |lo, hi, out| {
                    for (j, r) in input.get(lo..hi).unwrap_or(&[]).iter().enumerate() {
                        out.push(Record {
                            key: (lo + j) as u64,
                            num: r.num,
                            text: r.text.clone(),
                        });
                    }
                })
            }
            OperatorKind::RepeatLoop => {
                let input = gather(preds, outputs);
                if o.iterations == 0 {
                    return input; // inert pass-through, matching the simulator
                }
                let textual = input.first().map(|r| !r.text.is_empty()).unwrap_or(false);
                if textual {
                    self.pagerank(w, &input, o.iterations)
                } else {
                    self.kmeans(w, &input, o.iterations)
                }
            }
        }
    }

    /// Run `f` over contiguous index ranges covering `0..n`, concatenating
    /// outputs in range order (order-preserving by construction).
    fn par_ranges(
        &self,
        w: usize,
        n: usize,
        f: impl Fn(usize, usize, &mut Vec<Record>) + Sync,
    ) -> Vec<Record> {
        let parts = w.max(1);
        let chunks = par_map_chunks(w, parts, |c| {
            let (lo, hi) = bounds(n, parts, c);
            let mut out = Vec::new();
            f(lo, hi, &mut out);
            out
        });
        concat(chunks)
    }

    /// Per-record map-side parallelism over contiguous chunks.
    fn par_records(
        &self,
        w: usize,
        input: &[Record],
        f: impl Fn(&Record, &mut Vec<Record>) + Sync,
    ) -> Vec<Record> {
        let parts = w.max(1);
        let chunks = par_map_chunks(w, parts, |c| {
            let (lo, hi) = bounds(input.len(), parts, c);
            let mut out = Vec::new();
            for r in input.get(lo..hi).unwrap_or(&[]) {
                f(r, &mut out);
            }
            out
        });
        concat(chunks)
    }

    /// Parallel chunk-sort + k-way merge under [`record_cmp`]. Because the
    /// comparator is total and equal elements are identical records, the
    /// merged stream is byte-identical to a full sequential sort.
    fn par_sort(&self, w: usize, mut input: Vec<Record>) -> Vec<Record> {
        if w <= 1 || input.len() < 2 {
            input.sort_by(record_cmp);
            return input;
        }
        let parts = w;
        let n = input.len();
        let slice = input.as_slice();
        let runs = par_map_chunks(w, parts, |c| {
            let (lo, hi) = bounds(n, parts, c);
            let mut run = slice.get(lo..hi).unwrap_or(&[]).to_vec();
            run.sort_by(record_cmp);
            run
        });
        kway_merge(runs)
    }

    /// PageRank kernel: the input stream is an edge list (one record per
    /// edge), node count ≈ edges / 8. Per iteration, per-node rank sums
    /// accumulate in edge-stream order (CSR grouped stably by destination),
    /// so parallel gather matches the reference's sequential scatter.
    fn pagerank(&self, w: usize, input: &[Record], iters: u32) -> Vec<Record> {
        let n_e = input.len();
        if n_e == 0 {
            return Vec::new();
        }
        let n = (n_e / 8).clamp(8, 65_536);
        let nu = n as u64;
        let edges: Vec<(u32, u32)> = input
            .iter()
            .map(|r| {
                (
                    (r.key % nu) as u32,
                    (mix64(r.key ^ PAGERANK_DST_SALT) % nu) as u32,
                )
            })
            .collect();
        let mut outdeg = vec![0u32; n];
        let mut indeg = vec![0u32; n];
        for &(u, v) in &edges {
            outdeg[u as usize] += 1;
            indeg[v as usize] += 1;
        }
        let mut start = vec![0usize; n + 1];
        for v in 0..n {
            start[v + 1] = start[v] + indeg[v] as usize;
        }
        let mut srcs = vec![0u32; n_e];
        let mut fill = start.clone();
        for &(u, v) in &edges {
            srcs[fill[v as usize]] = u;
            fill[v as usize] += 1;
        }
        let base = 0.15 / n as f64;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let contrib: Vec<f64> = rank
                .iter()
                .zip(&outdeg)
                .map(|(r, &d)| if d > 0 { r / f64::from(d) } else { 0.0 })
                .collect();
            let parts = w.max(1);
            let next = par_map_chunks(w, parts, |c| {
                let (lo, hi) = bounds(n, parts, c);
                let mut seg = Vec::with_capacity(hi - lo);
                for v in lo..hi {
                    let mut s = 0.0f64;
                    for &u in srcs.get(start[v]..start[v + 1]).unwrap_or(&[]) {
                        s += contrib.get(u as usize).copied().unwrap_or(0.0);
                    }
                    seg.push(base + PAGERANK_DAMPING * s);
                }
                seg
            });
            rank = next.concat();
        }
        rank.iter()
            .enumerate()
            .map(|(v, r)| Record {
                key: v as u64,
                num: *r,
                text: String::new(),
            })
            .collect()
    }

    /// k-means kernel (Lloyd): parallel nearest-centroid assignment,
    /// sequential canonical centroid update in stream order.
    fn kmeans(&self, w: usize, input: &[Record], iters: u32) -> Vec<Record> {
        let n = input.len();
        if n == 0 {
            return Vec::new();
        }
        let pts: Vec<(f64, f64)> = input.iter().map(point_of).collect();
        let k = KMEANS_K.min(n);
        let mut centroids: Vec<(f64, f64)> = (0..k)
            .map(|j| pts.get(j * n / k).copied().unwrap_or((0.0, 0.0)))
            .collect();
        let mut assign: Vec<usize> = vec![0; n];
        for _ in 0..iters {
            let parts = w.max(1);
            let chunks = par_map_chunks(w, parts, |c| {
                let (lo, hi) = bounds(n, parts, c);
                pts.get(lo..hi)
                    .unwrap_or(&[])
                    .iter()
                    .map(|&(x, y)| assign_point(x, y, &centroids))
                    .collect::<Vec<usize>>()
            });
            assign = chunks.concat();
            let mut sums = vec![(0.0f64, 0.0f64, 0u64); k];
            for (i, &(x, y)) in pts.iter().enumerate() {
                let a = assign.get(i).copied().unwrap_or(0);
                if let Some(s) = sums.get_mut(a) {
                    s.0 += x;
                    s.1 += y;
                    s.2 += 1;
                }
            }
            for (j, &(sx, sy, c)) in sums.iter().enumerate() {
                if c > 0 {
                    if let Some(cent) = centroids.get_mut(j) {
                        *cent = (sx / c as f64, sy / c as f64);
                    }
                }
            }
        }
        input
            .iter()
            .zip(&assign)
            .map(|(r, &a)| Record {
                key: a as u64,
                num: r.num,
                text: String::new(),
            })
            .collect()
    }
}

impl ExecutionBackend for Engine<'_> {
    fn name(&self) -> &'static str {
        "engine"
    }

    // lint:surface(deterministic)
    fn execute(&self, plan: &LogicalPlan, assignments: &[PlatformId]) -> ExecutionReport {
        self.execute_collect(plan, assignments).report
    }
}

/// Clamp a claimed source cardinality to whole rows under the cap.
pub(crate) fn clamp_rows(cardinality: f64, cap: u64) -> u64 {
    let rows = cardinality.round().max(0.0) as u64;
    rows.min(cap)
}

/// Concatenate all predecessor outputs in `preds` order.
fn gather(preds: &[u32], outputs: &[Vec<Record>]) -> Vec<Record> {
    let total: usize = preds
        .iter()
        .map(|&p| outputs.get(p as usize).map(Vec::len).unwrap_or(0))
        .sum();
    let mut out = Vec::with_capacity(total);
    for &p in preds {
        if let Some(stream) = outputs.get(p as usize) {
            out.extend(stream.iter().cloned());
        }
    }
    out
}

/// Binary inputs: first predecessor vs everything after it.
fn gather2(preds: &[u32], outputs: &[Vec<Record>]) -> (Vec<Record>, Vec<Record>) {
    let a = gather(preds.get(..1).unwrap_or(&[]), outputs);
    let b = gather(preds.get(1..).unwrap_or(&[]), outputs);
    (a, b)
}

/// Even contiguous chunk bounds: chunk `i` of `parts` over `0..n`.
pub(crate) fn bounds(n: usize, parts: usize, i: usize) -> (usize, usize) {
    (i * n / parts, (i + 1) * n / parts)
}

fn concat(chunks: Vec<Vec<Record>>) -> Vec<Record> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Run `f(0..n_chunks)` on up to `workers` scoped threads, each owning a
/// contiguous group of result slots — no locks, no join handles, results
/// land in chunk order regardless of scheduling.
fn par_map_chunks<T: Send>(
    workers: usize,
    n_chunks: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if n_chunks == 0 {
        return Vec::new();
    }
    let w = workers.clamp(1, n_chunks);
    if w == 1 {
        return (0..n_chunks).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    let per = n_chunks.div_ceil(w);
    std::thread::scope(|s| {
        for (g, group) in slots.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in group.iter_mut().enumerate() {
                    *slot = Some(f(g * per + j));
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

/// Sequential k-way merge of sorted runs under [`record_cmp`]; ties go to
/// the lowest run index (tied elements are identical records, so any
/// choice yields the same bytes).
fn kway_merge(runs: Vec<Vec<Record>>) -> Vec<Record> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut cursor = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            let at = cursor.get(i).copied().unwrap_or(run.len());
            let Some(candidate) = run.get(at) else {
                continue;
            };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let b_at = cursor.get(b).copied().unwrap_or(0);
                    let beats = runs
                        .get(b)
                        .and_then(|rb| rb.get(b_at))
                        .map(|cur| record_cmp(candidate, cur) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if beats {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        let at = cursor.get(b).copied().unwrap_or(0);
        if let Some(r) = runs.get(b).and_then(|rb| rb.get(at)) {
            out.push(r.clone());
        }
        if let Some(c) = cursor.get_mut(b) {
            *c += 1;
        }
    }
    out
}

/// How [`fold_groups`] reduces each key group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GroupMode {
    /// `ReduceByKey`: sum numeric payloads in sorted order.
    Sum,
    /// `GroupByKey`: count group members.
    Count,
}

/// Fold a sorted stream into one record per key: `(key, sum-or-count,
/// first text of the group)`. Sorted-order accumulation keeps float sums
/// canonical.
pub(crate) fn fold_groups(sorted: Vec<Record>, mode: GroupMode) -> Vec<Record> {
    let mut out = Vec::new();
    let mut iter = sorted.into_iter();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut key = first.key;
    let mut acc = first.num;
    let mut count = 1u64;
    let mut text = first.text;
    let emit = |key: u64, acc: f64, count: u64, text: String, out: &mut Vec<Record>| {
        out.push(Record {
            key,
            num: match mode {
                GroupMode::Sum => acc,
                GroupMode::Count => count as f64,
            },
            text,
        });
    };
    for r in iter {
        if r.key == key {
            acc += r.num;
            count += 1;
        } else {
            emit(key, acc, count, text, &mut out);
            key = r.key;
            acc = r.num;
            count = 1;
            text = r.text;
        }
    }
    emit(key, acc, count, text, &mut out);
    out
}

/// `Aggregate`: one record holding the stream-order sum.
pub(crate) fn aggregate_sum(input: &[Record]) -> Vec<Record> {
    let mut acc = 0.0f64;
    for r in input {
        acc += r.num;
    }
    vec![Record {
        key: 0,
        num: acc,
        text: String::new(),
    }]
}

/// `GlobalReduce`: the maximum numeric payload under `total_cmp`.
pub(crate) fn global_max(input: &[Record]) -> Vec<Record> {
    if input.is_empty() {
        return Vec::new();
    }
    let mut best = f64::NEG_INFINITY;
    for r in input {
        if r.num.total_cmp(&best) == std::cmp::Ordering::Greater {
            best = r.num;
        }
    }
    vec![Record {
        key: 0,
        num: best,
        text: String::new(),
    }]
}

/// Sort-merge join on key with per-key fanout capped at
/// [`JOIN_GROUP_CAP`]²; output order is (a-group, b-group) nested in
/// sorted order.
pub(crate) fn join_sorted(a: Vec<Record>, b: Vec<Record>) -> Vec<Record> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while let (Some(ra), Some(rb)) = (a.get(i), b.get(j)) {
        if ra.key < rb.key {
            i += 1;
        } else if ra.key > rb.key {
            j += 1;
        } else {
            let key = ra.key;
            let a_end = group_end(&a, i);
            let b_end = group_end(&b, j);
            for x in a.get(i..a_end.min(i + JOIN_GROUP_CAP)).unwrap_or(&[]) {
                for y in b.get(j..b_end.min(j + JOIN_GROUP_CAP)).unwrap_or(&[]) {
                    out.push(Record {
                        key,
                        num: x.num + y.num,
                        text: x.text.clone(),
                    });
                }
            }
            i = a_end;
            j = b_end;
        }
    }
    out
}

/// Keys present on both sides; emits the sorted-first record of `a`'s
/// group per common key.
pub(crate) fn intersect_sorted(a: Vec<Record>, b: Vec<Record>) -> Vec<Record> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while let (Some(ra), Some(rb)) = (a.get(i), b.get(j)) {
        if ra.key < rb.key {
            i += 1;
        } else if ra.key > rb.key {
            j += 1;
        } else {
            out.push(ra.clone());
            i = group_end(&a, i);
            j = group_end(&b, j);
        }
    }
    out
}

/// First index past the key group starting at `i` in sorted `v`.
fn group_end(v: &[Record], i: usize) -> usize {
    let Some(key) = v.get(i).map(|r| r.key) else {
        return i;
    };
    let mut e = i;
    while v.get(e).map(|r| r.key) == Some(key) {
        e += 1;
    }
    e
}

/// Capped cross product in stream order.
pub(crate) fn cartesian(a: &[Record], b: &[Record]) -> Vec<Record> {
    let mut out = Vec::new();
    for x in a.iter().take(CARTESIAN_SIDE_CAP) {
        for y in b.iter().take(CARTESIAN_SIDE_CAP) {
            out.push(Record {
                key: mix64(x.key ^ mix64(y.key)),
                num: x.num + y.num,
                text: x.text.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::workloads;

    fn all_java(reg: &PlatformRegistry, n: usize) -> Vec<PlatformId> {
        vec![reg.by_name("java").unwrap(); n]
    }

    #[test]
    fn wordcount_really_counts_words() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(500.0);
        let engine = Engine::new(&reg).with_seed(7);
        let out = engine.execute_collect(&plan, &all_java(&reg, plan.n_ops()));
        assert!(out.report.feasible);
        let (_, sink) = out.terminals.first().expect("one sink");
        // Independently recount the generated words.
        let mut expected = std::collections::BTreeMap::new();
        for row in 0..500u64 {
            let line = source_record(OperatorKind::TextFileSource, 7, 0, row, 500);
            for w in line.text.split_ascii_whitespace() {
                *expected.entry(w.to_string()).or_insert(0u64) += 1;
            }
        }
        assert_eq!(sink.len(), expected.len(), "one record per distinct word");
        let total: f64 = sink.iter().map(|r| r.num).sum();
        let expected_total: u64 = expected.values().sum();
        assert_eq!(
            total as u64, expected_total,
            "counts must sum to the word total"
        );
        for r in sink {
            assert_eq!(
                Some(&(r.num as u64)),
                expected.get(&r.text),
                "count for {}",
                r.text
            );
        }
    }

    #[test]
    fn outputs_are_identical_across_worker_counts() {
        let reg = PlatformRegistry::named();
        for plan in [
            workloads::wordcount(2_000.0),
            workloads::pagerank(4_000.0, 5),
            workloads::kmeans(3_000.0, 4),
            workloads::synthetic_pipeline(12, 2_000.0),
        ] {
            // Spark's modeled parallelism lets multiple workers engage.
            let assign = vec![reg.by_name("spark").unwrap(); plan.n_ops()];
            let digests: Vec<u64> = [1usize, 2, 4]
                .iter()
                .map(|&w| {
                    Engine::new(&reg)
                        .with_workers(w)
                        .with_seed(11)
                        .execute_collect(&plan, &assign)
                        .report
                        .output_digest
                })
                .collect();
            assert_eq!(digests.first(), digests.get(1));
            assert_eq!(digests.first(), digests.get(2));
        }
    }

    #[test]
    fn infeasible_assignments_do_not_run() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(100.0);
        let engine = Engine::new(&reg);
        let pg = vec![reg.by_name("postgres").unwrap(); plan.n_ops()];
        let out = engine.execute_collect(&plan, &pg);
        assert!(!out.report.feasible);
        assert!(out.terminals.is_empty());
    }

    #[test]
    fn source_cap_bounds_generated_rows() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e12);
        let engine = Engine::new(&reg).with_max_source_rows(1_000);
        let out = engine.execute_collect(&plan, &all_java(&reg, plan.n_ops()));
        assert!(out.report.feasible);
        let flat_map_rows = out.report.per_op.get(1).map(|r| r.output_rows).unwrap_or(0);
        assert!(flat_map_rows < 10_000, "cap must bound the pipeline");
    }

    #[test]
    fn repeat_loop_iterations_cost_measured_time() {
        let reg = PlatformRegistry::named();
        let assign_n = workloads::pagerank(20_000.0, 1).n_ops();
        let engine = Engine::new(&reg).with_seed(3);
        let assign = all_java(&reg, assign_n);
        let short = engine.execute_collect(&workloads::pagerank(20_000.0, 1), &assign);
        let long = engine.execute_collect(&workloads::pagerank(20_000.0, 64), &assign);
        assert!(long.report.seconds > short.report.seconds);
        // Rank mass is conserved modulo dangling-node leakage.
        let (_, ranks) = long.terminals.first().expect("sink stream");
        let total: f64 = ranks.iter().map(|r| r.num).sum();
        assert!(total > 0.1 && total <= 1.0 + 1e-9, "rank mass {total}");
    }
}
