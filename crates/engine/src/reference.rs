//! Independent single-threaded reference executor.
//!
//! Applies the canonical operator semantics of [`crate::data`] with the
//! most naive execution strategy available: sequential loops, full
//! `sort_by` instead of parallel chunk-sort + merge, scatter-based
//! PageRank instead of CSR gather. No threads, no chunking, no
//! partitioning. The engine correctness tests assert the multi-threaded
//! [`crate::Engine`] reproduces these outputs **byte-for-byte** at every
//! worker count — any divergence means the parallel execution machinery
//! (not the semantics) is wrong.
//!
//! Platform assignments are irrelevant here: availability is an engine
//! concern; the reference defines what the data looks like when a plan is
//! executable at all.

use robopt_plan::{rng::mix64, LogicalPlan, OperatorKind};

use crate::data::{
    assign_point, digest_terminals, flat_map_record, keep_record, map_record, point_of, record_cmp,
    source_record, Record, FILTER_SALT, PAGERANK_DST_SALT, SAMPLE_SALT,
};
use crate::exec::{
    aggregate_sum, cartesian, clamp_rows, fold_groups, global_max, intersect_sorted, join_sorted,
    GroupMode,
};

/// Execute `plan` sequentially; returns the terminal streams (op-id
/// ascending, sinks capture their input) and the folded output digest.
pub fn execute_reference(
    plan: &LogicalPlan,
    seed: u64,
    max_source_rows: u64,
) -> (Vec<(u32, Vec<Record>)>, u64) {
    let n = plan.n_ops();
    let mut outputs: Vec<Vec<Record>> = vec![Vec::new(); n];
    for op in plan.topo_order() {
        let out = run_op(plan, op, seed, max_source_rows, &outputs);
        if let Some(slot) = outputs.get_mut(op as usize) {
            *slot = out;
        }
    }
    let mut terminals = Vec::new();
    for op in 0..n as u32 {
        if plan.succs(op).is_empty() {
            let records = outputs
                .get_mut(op as usize)
                .map(std::mem::take)
                .unwrap_or_default();
            terminals.push((op, records));
        }
    }
    let digest = digest_terminals(&terminals);
    (terminals, digest)
}

fn run_op(
    plan: &LogicalPlan,
    op: u32,
    seed: u64,
    max_source_rows: u64,
    outputs: &[Vec<Record>],
) -> Vec<Record> {
    let o = plan.op(op);
    let preds = plan.preds(op);
    let gather = |ids: &[u32]| -> Vec<Record> {
        let mut out = Vec::new();
        for &p in ids {
            if let Some(stream) = outputs.get(p as usize) {
                out.extend(stream.iter().cloned());
            }
        }
        out
    };
    match o.kind {
        OperatorKind::TextFileSource
        | OperatorKind::CollectionSource
        | OperatorKind::TableSource => {
            let rows = clamp_rows(o.source_cardinality, max_source_rows);
            (0..rows)
                .map(|row| source_record(o.kind, seed, op, row, rows))
                .collect()
        }
        OperatorKind::Map | OperatorKind::MapPartitions => {
            gather(preds).iter().map(map_record).collect()
        }
        OperatorKind::Cache
        | OperatorKind::Broadcast
        | OperatorKind::LocalCallbackSink
        | OperatorKind::Union => gather(preds),
        OperatorKind::FlatMap => {
            let mut out = Vec::new();
            for r in &gather(preds) {
                flat_map_record(r, &mut out);
            }
            out
        }
        OperatorKind::Filter => {
            let sel = o.selectivity;
            gather(preds)
                .into_iter()
                .filter(|r| keep_record(r, sel, FILTER_SALT))
                .collect()
        }
        OperatorKind::Sample => {
            let sel = o.selectivity;
            gather(preds)
                .into_iter()
                .filter(|r| keep_record(r, sel, SAMPLE_SALT))
                .collect()
        }
        OperatorKind::Sort => {
            let mut v = gather(preds);
            v.sort_by(record_cmp);
            v
        }
        OperatorKind::Distinct => {
            let mut v = gather(preds);
            v.sort_by(record_cmp);
            v.dedup_by(|a, b| {
                a.key == b.key && a.num.to_bits() == b.num.to_bits() && a.text == b.text
            });
            v
        }
        OperatorKind::ReduceByKey => {
            let mut v = gather(preds);
            v.sort_by(record_cmp);
            fold_groups(v, GroupMode::Sum)
        }
        OperatorKind::GroupByKey => {
            let mut v = gather(preds);
            v.sort_by(record_cmp);
            fold_groups(v, GroupMode::Count)
        }
        OperatorKind::Aggregate => aggregate_sum(&gather(preds)),
        OperatorKind::GlobalReduce => global_max(&gather(preds)),
        OperatorKind::Count => {
            vec![Record {
                key: 0,
                num: gather(preds).len() as f64,
                text: String::new(),
            }]
        }
        OperatorKind::Join => {
            let mut a = gather(preds.get(..1).unwrap_or(&[]));
            let mut b = gather(preds.get(1..).unwrap_or(&[]));
            a.sort_by(record_cmp);
            b.sort_by(record_cmp);
            join_sorted(a, b)
        }
        OperatorKind::Intersect => {
            let mut a = gather(preds.get(..1).unwrap_or(&[]));
            let mut b = gather(preds.get(1..).unwrap_or(&[]));
            a.sort_by(record_cmp);
            b.sort_by(record_cmp);
            intersect_sorted(a, b)
        }
        OperatorKind::CartesianProduct => {
            let a = gather(preds.get(..1).unwrap_or(&[]));
            let b = gather(preds.get(1..).unwrap_or(&[]));
            cartesian(&a, &b)
        }
        OperatorKind::ZipWithId => gather(preds)
            .into_iter()
            .enumerate()
            .map(|(i, r)| Record {
                key: i as u64,
                num: r.num,
                text: r.text,
            })
            .collect(),
        OperatorKind::RepeatLoop => {
            let input = gather(preds);
            if o.iterations == 0 {
                return input;
            }
            let textual = input.first().map(|r| !r.text.is_empty()).unwrap_or(false);
            if textual {
                pagerank_scatter(&input, o.iterations)
            } else {
                kmeans_sequential(&input, o.iterations)
            }
        }
    }
}

/// Scatter-based PageRank: one sequential pass over the edge list per
/// iteration, accumulating into the destination. Matches the engine's CSR
/// gather exactly — per destination, contributions arrive in edge-stream
/// order either way.
fn pagerank_scatter(input: &[Record], iters: u32) -> Vec<Record> {
    let n_e = input.len();
    if n_e == 0 {
        return Vec::new();
    }
    let n = (n_e / 8).clamp(8, 65_536);
    let nu = n as u64;
    let edges: Vec<(usize, usize)> = input
        .iter()
        .map(|r| {
            (
                (r.key % nu) as usize,
                (mix64(r.key ^ PAGERANK_DST_SALT) % nu) as usize,
            )
        })
        .collect();
    let mut outdeg = vec![0u32; n];
    for &(u, _) in &edges {
        if let Some(d) = outdeg.get_mut(u) {
            *d += 1;
        }
    }
    let base = 0.15 / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let contrib: Vec<f64> = rank
            .iter()
            .zip(&outdeg)
            .map(|(r, &d)| if d > 0 { r / f64::from(d) } else { 0.0 })
            .collect();
        let mut acc = vec![0.0f64; n];
        for &(u, v) in &edges {
            let c = contrib.get(u).copied().unwrap_or(0.0);
            if let Some(a) = acc.get_mut(v) {
                *a += c;
            }
        }
        rank = acc.iter().map(|&s| base + 0.85 * s).collect();
    }
    rank.iter()
        .enumerate()
        .map(|(v, r)| Record {
            key: v as u64,
            num: *r,
            text: String::new(),
        })
        .collect()
}

/// Fully sequential Lloyd iterations with the shared per-point assignment.
fn kmeans_sequential(input: &[Record], iters: u32) -> Vec<Record> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let pts: Vec<(f64, f64)> = input.iter().map(point_of).collect();
    let k = 8usize.min(n);
    let mut centroids: Vec<(f64, f64)> = (0..k)
        .map(|j| pts.get(j * n / k).copied().unwrap_or((0.0, 0.0)))
        .collect();
    let mut assign: Vec<usize> = vec![0; n];
    for _ in 0..iters {
        for (i, &(x, y)) in pts.iter().enumerate() {
            if let Some(slot) = assign.get_mut(i) {
                *slot = assign_point(x, y, &centroids);
            }
        }
        let mut sums = vec![(0.0f64, 0.0f64, 0u64); k];
        for (i, &(x, y)) in pts.iter().enumerate() {
            let a = assign.get(i).copied().unwrap_or(0);
            if let Some(s) = sums.get_mut(a) {
                s.0 += x;
                s.1 += y;
                s.2 += 1;
            }
        }
        for (j, &(sx, sy, c)) in sums.iter().enumerate() {
            if c > 0 {
                if let Some(cent) = centroids.get_mut(j) {
                    *cent = (sx / c as f64, sy / c as f64);
                }
            }
        }
    }
    input
        .iter()
        .zip(&assign)
        .map(|(r, &a)| Record {
            key: a as u64,
            num: r.num,
            text: String::new(),
        })
        .collect()
}
