//! The engine's data model: records, seeded generators, per-record
//! operator semantics, and the output digest.
//!
//! Everything here is **canonical** — a pure function of the seed and the
//! record, with no dependence on partitioning, worker count, or execution
//! order. Both the multi-threaded engine ([`crate::exec`]) and the
//! single-threaded reference ([`crate::reference`]) apply these exact
//! semantics; what differs between them is only the execution *strategy*,
//! which is precisely what the byte-identity tests pin down.

use robopt_plan::rng::mix64;

/// One in-flight record: a 64-bit grouping key, a numeric payload, and an
/// optional text payload (lines for text sources, words after a split).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Grouping/join key.
    pub key: u64,
    /// Numeric payload (counts, values, coordinates).
    pub num: f64,
    /// Text payload; empty for purely numeric streams.
    pub text: String,
}

/// Total order over records: `(key, num bit pattern, text)`. Any total
/// order works for canonicalization; bit-pattern comparison keeps it exact
/// on floats. Equal elements are fully identical records, so merging
/// sorted runs reproduces the full sort byte-for-byte.
pub fn record_cmp(a: &Record, b: &Record) -> std::cmp::Ordering {
    (a.key, a.num.to_bits(), &a.text).cmp(&(b.key, b.num.to_bits(), &b.text))
}

/// FNV-1a 64-bit over a byte string — keys words and lines.
pub fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Vocabulary size for generated text; squared-uniform sampling skews
/// toward low word ids so real duplicate groups form.
const VOCAB: u64 = 96;

#[inline]
fn unit(v: u64) -> f64 {
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The `row`-th record of a seeded source operator. Seeding is per row
/// index — never per partition — so chunking can never change the data.
pub fn source_record(
    kind: robopt_plan::OperatorKind,
    seed: u64,
    op: u32,
    row: u64,
    n_rows: u64,
) -> Record {
    let mut s = mix64(seed ^ mix64((u64::from(op) << 32) ^ row));
    match kind {
        robopt_plan::OperatorKind::TextFileSource => {
            let n_words = 3 + s % 6;
            let mut text = String::new();
            for w in 0..n_words {
                s = mix64(s.wrapping_add(w));
                let u = unit(s);
                let idx = ((u * u) * VOCAB as f64) as u64;
                if w > 0 {
                    text.push(' ');
                }
                text.push('w');
                push_hex2(&mut text, idx.min(VOCAB - 1));
            }
            Record {
                key: row,
                num: 1.0,
                text,
            }
        }
        robopt_plan::OperatorKind::TableSource => Record {
            key: mix64(s ^ 0x7AB1) % (n_rows / 4).max(1),
            num: unit(mix64(s ^ 0x0A11)) * 100.0,
            text: String::new(),
        },
        // CollectionSource and any non-source kind fed no input.
        _ => Record {
            key: row,
            num: unit(s) * 1000.0,
            text: String::new(),
        },
    }
}

fn push_hex2(text: &mut String, v: u64) {
    const HEX: [char; 16] = [
        '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a', 'b', 'c', 'd', 'e', 'f',
    ];
    text.push(HEX[((v >> 4) & 0xF) as usize]);
    text.push(HEX[(v & 0xF) as usize]);
}

/// `Map` / `MapPartitions` semantics: re-key injectively, keep payloads.
pub fn map_record(r: &Record) -> Record {
    Record {
        key: mix64(r.key),
        num: r.num,
        text: r.text.clone(),
    }
}

/// `FlatMap` semantics: text records split into one word record apiece
/// (keyed by the word — this is what makes WordCount really count words);
/// numeric records split in two.
pub fn flat_map_record(r: &Record, out: &mut Vec<Record>) {
    if r.text.is_empty() {
        out.push(Record {
            key: mix64(r.key ^ 1),
            num: r.num * 0.5,
            text: String::new(),
        });
        out.push(Record {
            key: mix64(r.key ^ 2),
            num: r.num * 0.5 + 1.0,
            text: String::new(),
        });
    } else {
        for word in r.text.split_ascii_whitespace() {
            out.push(Record {
                key: fnv1a(word),
                num: 1.0,
                text: word.to_string(),
            });
        }
    }
}

/// `Filter` / `Sample` keep-decision: a seeded coin keyed on the record.
pub fn keep_record(r: &Record, selectivity: f64, salt: u64) -> bool {
    let threshold = (selectivity.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64;
    mix64(r.key ^ salt) & 0xFFFF_FFFF < threshold
}

/// Salt for `Filter` coins.
pub const FILTER_SALT: u64 = 0xF117;
/// Salt for `Sample` coins.
pub const SAMPLE_SALT: u64 = 0x5A3B;
/// Salt deriving a PageRank edge destination from an edge record key.
pub const PAGERANK_DST_SALT: u64 = 0xED6E;
/// Salt deriving a k-means point's second coordinate from its key.
pub const KMEANS_Y_SALT: u64 = 0x2D2D;

/// A record viewed as a 2-D point: `x` is the numeric payload, `y` is
/// derived deterministically from the key.
pub fn point_of(r: &Record) -> (f64, f64) {
    let y = (mix64(r.key ^ KMEANS_Y_SALT) >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 1000.0;
    (r.num, y)
}

/// Nearest-centroid assignment with ties broken toward the lowest cluster
/// index — the per-point step of Lloyd's algorithm.
pub fn assign_point(x: f64, y: f64, centroids: &[(f64, f64)]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (j, (cx, cy)) in centroids.iter().enumerate() {
        let (dx, dy) = (x - cx, y - cy);
        let d = dx * dx + dy * dy;
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

/// Order-dependent digest of a canonical record stream.
pub fn digest_records(records: &[Record]) -> u64 {
    let mut h = 0x0D1E_57A7u64 ^ records.len() as u64;
    for r in records {
        h = mix64(h ^ r.key);
        h = mix64(h ^ r.num.to_bits());
        h = mix64(h ^ r.text.len() as u64);
        for b in r.text.as_bytes() {
            h = mix64(h ^ u64::from(*b));
        }
    }
    h
}

/// Fold the per-terminal stream digests (op-id ascending) into one plan
/// output digest — the value `tests/determinism.rs` pins across processes
/// and worker counts.
pub fn digest_terminals(terminals: &[(u32, Vec<Record>)]) -> u64 {
    let mut h = 0x7E61_0E0Du64;
    for (op, records) in terminals {
        h = mix64(h ^ u64::from(*op));
        h = mix64(h ^ digest_records(records));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::OperatorKind;

    #[test]
    fn source_records_depend_only_on_row_index() {
        for kind in [
            OperatorKind::TextFileSource,
            OperatorKind::TableSource,
            OperatorKind::CollectionSource,
        ] {
            let a = source_record(kind, 7, 0, 42, 1000);
            let b = source_record(kind, 7, 0, 42, 1000);
            assert_eq!(a, b);
            let c = source_record(kind, 7, 0, 43, 1000);
            assert_ne!(a, c, "{kind:?} rows must differ");
        }
    }

    #[test]
    fn text_sources_generate_skewed_words() {
        let mut words = std::collections::BTreeMap::new();
        for row in 0..2000u64 {
            let r = source_record(OperatorKind::TextFileSource, 1, 0, row, 2000);
            for w in r.text.split_ascii_whitespace() {
                *words.entry(w.to_string()).or_insert(0usize) += 1;
            }
        }
        assert!(words.len() > 20, "vocabulary too small: {}", words.len());
        let max = words.values().copied().max().unwrap_or(0);
        let min = words.values().copied().min().unwrap_or(0);
        assert!(max > 4 * min.max(1), "distribution should be skewed");
    }

    #[test]
    fn record_cmp_is_a_total_order_on_float_bits() {
        let a = Record {
            key: 1,
            num: 0.0,
            text: String::new(),
        };
        let b = Record {
            key: 1,
            num: -0.0,
            text: String::new(),
        };
        assert_ne!(record_cmp(&a, &b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = Record {
            key: 1,
            num: 1.0,
            text: "x".to_string(),
        };
        let b = Record {
            key: 2,
            num: 2.0,
            text: "y".to_string(),
        };
        assert_ne!(
            digest_records(&[a.clone(), b.clone()]),
            digest_records(&[b, a])
        );
    }
}
