//! Service throughput: requests/second through the [`robopt::Optimizer`]
//! facade on a repeat-heavy request stream, with and without the
//! plan-signature cache, at 1/2/4/8 workers — ISSUE 7's service benchmark.
//!
//! Three phases:
//!
//! 1. **Correctness gate** (before any timing): for representative
//!    workloads the cached response is asserted bit-identical (the
//!    [`robopt::OptimizeResponse`] `PartialEq` compares cost *bits*) to
//!    both the cold response that seeded it and a recompute on a
//!    cache-disabled facade; and workers 1 vs 4 (hardware clamp off,
//!    cache off) produce bit-identical responses — the split driver's
//!    determinism contract that lets the cache key ignore `workers`.
//! 2. **Stream throughput** — a seeded Zipf-ish stream (`idx ∝ r²` over a
//!    light-to-heavy workload pool, so repeats are frequent and heavy
//!    plans rare) is replayed through cache-on and cache-off facades per
//!    worker count. The cache-on hit rate must reach ≥ 0.5 (it lands near
//!    1.0: the pool is tiny relative to the stream) and at one worker the
//!    cache must lift stream throughput ≥ 1.2× over cold replay.
//! 3. **Heavy-plan worker scaling** — a single 128-operator pipeline,
//!    cache off, per worker count. Speedup assertions are gated on
//!    `std::thread::available_parallelism()` exactly like
//!    `fig03_parallel_scaling`: ≥ 1.5× at 4 workers needs ≥ 4 hardware
//!    threads, ≥ 1.1× on 2–3, and a single-core host (where the clamp
//!    collapses every worker count to one, making the entries replicates)
//!    gets a pooled ≥ 0.65× overhead regression guard instead of a
//!    speedup claim.
//!
//! `--quick` shrinks the stream and sweeps for CI smoke coverage. Writes
//! `EXPERIMENTS_OUTPUT/fig_service_throughput.txt` and
//! `BENCH_service.json` (shared schema: `<prefix>_ms`, `<prefix>_p95_ms`,
//! `<prefix>_per_s`) at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt::{CacheStats, ExecutionPolicy, OptimizeRequest, Optimizer, WorkloadSpec};
use robopt_bench::{bench, repo_root};
use robopt_plan::SplitMix64;

const STREAM_SEED: u64 = 0x5e41_ce5d;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Light-to-heavy workload pool. The Zipf-ish index bias (`idx ∝ r²`)
/// makes low indices frequent, so ordering light → heavy keeps cold
/// replay affordable while still exercising big plans.
fn pool(quick: bool) -> Vec<WorkloadSpec> {
    if quick {
        vec![
            WorkloadSpec::WordCount { scale: 1e5 },
            WorkloadSpec::WordCount { scale: 1e7 },
            WorkloadSpec::TpchQ3 { scale: 1e6 },
            WorkloadSpec::Pipeline {
                ops: 12,
                scale: 1e5,
            },
            WorkloadSpec::RandomDag {
                seed: 7,
                ops: 10,
                density: 0.3,
            },
            WorkloadSpec::Pipeline {
                ops: 24,
                scale: 1e6,
            },
        ]
    } else {
        vec![
            WorkloadSpec::WordCount { scale: 1e5 },
            WorkloadSpec::WordCount { scale: 1e7 },
            WorkloadSpec::TpchQ3 { scale: 1e5 },
            WorkloadSpec::TpchQ3 { scale: 1e6 },
            WorkloadSpec::Pipeline {
                ops: 12,
                scale: 1e5,
            },
            WorkloadSpec::RandomDag {
                seed: 7,
                ops: 10,
                density: 0.3,
            },
            WorkloadSpec::Pipeline {
                ops: 16,
                scale: 1e6,
            },
            WorkloadSpec::RandomDag {
                seed: 11,
                ops: 14,
                density: 0.5,
            },
            WorkloadSpec::Pipeline {
                ops: 24,
                scale: 1e5,
            },
            WorkloadSpec::Pipeline {
                ops: 32,
                scale: 1e6,
            },
            WorkloadSpec::Pipeline {
                ops: 48,
                scale: 1e5,
            },
            WorkloadSpec::Pipeline {
                ops: 64,
                scale: 1e6,
            },
        ]
    }
}

/// Seeded Zipf-ish stream of pool indices: squaring the uniform draw
/// biases toward index 0, so a handful of workloads dominate — the
/// repeat-heavy profile a memoizing service actually sees.
fn stream_indices(pool_len: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let r = rng.next_f64();
            (((pool_len as f64) * r * r) as usize).min(pool_len - 1)
        })
        .collect()
}

struct StreamEntry {
    workers: usize,
    stream_ms: f64,
    stream_p95_ms: f64,
    requests_per_s: f64,
    cache: Option<CacheStats>,
}

/// Replay the request stream through one facade; returns the timing plus
/// the final cache counters.
fn stream_throughput(
    specs: &[WorkloadSpec],
    idxs: &[usize],
    workers: usize,
    cache_on: bool,
    warmup: usize,
    iters: usize,
) -> StreamEntry {
    let mut opt = Optimizer::named();
    opt.set_cache_enabled(cache_on);
    let policy = ExecutionPolicy::default().with_workers(workers);
    let reqs: Vec<OptimizeRequest> = idxs
        .iter()
        .map(|&i| OptimizeRequest::new(specs[i]).with_policy(policy))
        .collect();
    let t = bench(warmup, iters, || {
        for req in &reqs {
            let resp = opt.optimize(req).expect("stream optimize");
            std::hint::black_box(resp.cost);
        }
    });
    StreamEntry {
        workers,
        stream_ms: t.median_ms(),
        stream_p95_ms: t.p95_ms(),
        requests_per_s: t.per_second(idxs.len()),
        cache: cache_on.then(|| opt.cache_stats()),
    }
}

struct HeavyEntry {
    workers: usize,
    ops: usize,
    optimize_ms: f64,
    optimize_p95_ms: f64,
    optimize_per_s: f64,
}

/// Time one cache-off heavy-plan request per iteration at `workers`.
fn heavy_scaling(ops: usize, workers: usize, warmup: usize, iters: usize) -> HeavyEntry {
    let mut opt = Optimizer::named();
    opt.set_cache_enabled(false);
    let req = OptimizeRequest::new(WorkloadSpec::Pipeline { ops, scale: 1e5 })
        .with_policy(ExecutionPolicy::default().with_workers(workers));
    let t = bench(warmup, iters, || {
        let resp = opt.optimize(&req).expect("heavy optimize");
        std::hint::black_box(resp.cost);
    });
    HeavyEntry {
        workers,
        ops,
        optimize_ms: t.median_ms(),
        optimize_p95_ms: t.p95_ms(),
        optimize_per_s: t.per_second(1),
    }
}

/// Phase 1: assert the cache and worker-count bit-identity contracts on
/// `specs` before any timing. Panics (exit ≠ 0) on violation.
fn correctness_gate(specs: &[WorkloadSpec]) {
    for &spec in specs {
        let req = OptimizeRequest::new(spec);
        let mut warm = Optimizer::named();
        let cold = warm.optimize(&req).expect("cold optimize");
        let cached = warm.optimize(&req).expect("cached optimize");
        assert_eq!(
            cold, cached,
            "{}: cached response not bit-identical to the cold one",
            cold.workload
        );
        assert!(
            warm.cache_stats().hits >= 1,
            "{}: second identical request missed the cache",
            cold.workload
        );
        let mut off = Optimizer::named();
        off.set_cache_enabled(false);
        let recomputed = off.optimize(&req).expect("cache-off optimize");
        assert_eq!(
            cold, recomputed,
            "{}: cache-off recompute diverged from the cached bytes",
            cold.workload
        );
    }
    // Worker counts share one cache line: 1 vs 4 workers (clamp off so
    // real threads spawn even on small hosts) must be bit-identical.
    for &spec in specs.iter().take(2) {
        let mut one = Optimizer::named();
        one.set_cache_enabled(false);
        let mut four = Optimizer::named();
        four.set_cache_enabled(false);
        let base = ExecutionPolicy::default().with_hardware_clamp(false);
        let a = one
            .optimize(&OptimizeRequest::new(spec).with_policy(base.with_workers(1)))
            .expect("1-worker optimize");
        let b = four
            .optimize(&OptimizeRequest::new(spec).with_policy(base.with_workers(4)))
            .expect("4-worker optimize");
        assert_eq!(
            a, b,
            "{}: worker count changed the response — cache key exclusion unsound",
            a.workload
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (stream_n, heavy_ops, worker_sweep, warmup, iters): (
        usize,
        usize,
        Vec<usize>,
        usize,
        usize,
    ) = if quick {
        (60, 32, vec![1, 2], 1, 3)
    } else {
        (400, 128, WORKER_SWEEP.to_vec(), 1, 5)
    };

    let specs = pool(quick);
    let idxs = stream_indices(specs.len(), stream_n, STREAM_SEED);
    let mut distinct: Vec<usize> = idxs.clone();
    distinct.sort_unstable();
    distinct.dedup();

    // Phase 1 — correctness before any clock starts.
    correctness_gate(&specs);

    // Phase 2 — stream throughput, cache on and off, per worker count.
    let cache_on: Vec<StreamEntry> = worker_sweep
        .iter()
        .map(|&w| stream_throughput(&specs, &idxs, w, true, warmup, iters))
        .collect();
    let cache_off: Vec<StreamEntry> = worker_sweep
        .iter()
        .map(|&w| stream_throughput(&specs, &idxs, w, false, warmup, iters))
        .collect();

    // Phase 3 — heavy-plan worker scaling, cache off.
    let heavy: Vec<HeavyEntry> = worker_sweep
        .iter()
        .map(|&w| heavy_scaling(heavy_ops, w, warmup, iters))
        .collect();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Service throughput: requests/s through the Optimizer facade \
         ({} workloads, {} requests, {} distinct, {hw_threads} hw threads{})",
        specs.len(),
        stream_n,
        distinct.len(),
        if quick { ", --quick" } else { "" }
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "{:>7} {:>7} {:>12} {:>12} {:>12} {:>9} {:>7} {:>7}",
        "cache", "workers", "stream ms", "p95 ms", "req/s", "hit rate", "hits", "misses"
    );
    for e in cache_on.iter().chain(&cache_off) {
        match &e.cache {
            Some(c) => {
                let _ = writeln!(
                    report,
                    "{:>7} {:>7} {:>12.4} {:>12.4} {:>12.0} {:>9.3} {:>7} {:>7}",
                    "on",
                    e.workers,
                    e.stream_ms,
                    e.stream_p95_ms,
                    e.requests_per_s,
                    c.hit_rate(),
                    c.hits,
                    c.misses
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "{:>7} {:>7} {:>12.4} {:>12.4} {:>12.0} {:>9} {:>7} {:>7}",
                    "off", e.workers, e.stream_ms, e.stream_p95_ms, e.requests_per_s, "-", "-", "-"
                );
            }
        }
    }
    let _ = writeln!(report);
    let _ = writeln!(report, "heavy plan (pipeline, {heavy_ops} ops, cache off):");
    let _ = writeln!(
        report,
        "{:>7} {:>14} {:>14} {:>12} {:>9}",
        "workers", "optimize ms", "p95 ms", "plans/s", "speedup"
    );
    let heavy_base = heavy[0].optimize_ms;
    for e in &heavy {
        let _ = writeln!(
            report,
            "{:>7} {:>14.4} {:>14.4} {:>12.2} {:>8.2}x",
            e.workers,
            e.optimize_ms,
            e.optimize_p95_ms,
            e.optimize_per_s,
            heavy_base / e.optimize_ms
        );
    }

    let mut failed = false;
    let mut check = |report: &mut String, line: String, ok: bool| {
        let _ = writeln!(report, "CHECK {line}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    };

    let _ = writeln!(report);
    check(
        &mut report,
        "cached responses bit-identical to cold (and to cache-off recompute)".to_string(),
        true, // asserted in correctness_gate(); reaching this line means it held
    );
    let min_hit_rate = cache_on
        .iter()
        .filter_map(|e| e.cache.as_ref())
        .map(CacheStats::hit_rate)
        .fold(f64::INFINITY, f64::min);
    check(
        &mut report,
        format!("stream cache hit rate >= 0.5 at every worker count (min {min_hit_rate:.3})"),
        min_hit_rate >= 0.5,
    );
    let lift = cache_on[0].requests_per_s / cache_off[0].requests_per_s;
    check(
        &mut report,
        format!("cache lifts 1-worker stream throughput >= 1.2x (measured {lift:.2}x)"),
        lift >= 1.2,
    );
    // Hardware-gated heavy-plan scaling, mirroring fig03: on a clamped
    // single-core host all worker counts run one worker, so the entries
    // are replicates and the pooled guard only polices overhead.
    let speedup_at = |w: usize| {
        heavy
            .iter()
            .find(|e| e.workers == w)
            .map_or(0.0, |e| heavy_base / e.optimize_ms)
    };
    let best_multi = heavy
        .iter()
        .filter(|e| e.workers > 1)
        .map(|e| heavy_base / e.optimize_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    if quick {
        let (bound, label, got) = if hw_threads >= 2 {
            (
                1.0,
                "heavy speedup >= 1.0 at 2 workers (hw >= 2)",
                speedup_at(2),
            )
        } else {
            (
                0.5,
                "heavy speedup >= 0.5 overhead guard (single-core host, 32-op plan)",
                best_multi,
            )
        };
        check(&mut report, format!("{label}: {got:.2}x"), got >= bound);
    } else {
        let (bound, label, got) = if hw_threads >= 4 {
            (
                1.5,
                "heavy speedup >= 1.5x at 4 workers (hw >= 4)",
                speedup_at(4),
            )
        } else if hw_threads >= 2 {
            (
                1.1,
                "heavy speedup >= 1.1x at 4 workers (hw 2-3)",
                speedup_at(4),
            )
        } else {
            (
                0.65,
                "heavy speedup >= 0.65 overhead guard (single-core host, replicates pooled)",
                best_multi,
            )
        };
        check(&mut report, format!("{label}: {got:.2}x"), got >= bound);
    }
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig_service_throughput.txt"),
        &report,
    )
    .expect("write fig_service_throughput report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig_service_throughput\",\n");
    let _ = writeln!(json, "  \"hw_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(
        json,
        "  \"stream\": {{\"seed\": {STREAM_SEED}, \"requests\": {stream_n}, \
         \"pool\": {}, \"distinct\": {}}},",
        specs.len(),
        distinct.len()
    );
    json.push_str("  \"cache_on\": [\n");
    for (i, e) in cache_on.iter().enumerate() {
        let c = e.cache.as_ref().expect("cache-on entry has counters");
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"stream_ms\": {:.6}, \"stream_p95_ms\": {:.6}, \
             \"stream_per_s\": {:.3}, \"hit_rate\": {:.6}, \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}}}",
            e.workers,
            e.stream_ms,
            e.stream_p95_ms,
            e.requests_per_s,
            c.hit_rate(),
            c.hits,
            c.misses,
            c.evictions
        );
        json.push_str(if i + 1 < cache_on.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"cache_off\": [\n");
    for (i, e) in cache_off.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"stream_ms\": {:.6}, \"stream_p95_ms\": {:.6}, \
             \"stream_per_s\": {:.3}}}",
            e.workers, e.stream_ms, e.stream_p95_ms, e.requests_per_s
        );
        json.push_str(if i + 1 < cache_off.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"heavy\": [\n");
    for (i, e) in heavy.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"ops\": {}, \"optimize_ms\": {:.6}, \
             \"optimize_p95_ms\": {:.6}, \"optimize_per_s\": {:.3}, \"speedup\": {:.3}}}",
            e.workers,
            e.ops,
            e.optimize_ms,
            e.optimize_p95_ms,
            e.optimize_per_s,
            heavy_base / e.optimize_ms
        );
        json.push_str(if i + 1 < heavy.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_service.json"), json).expect("write BENCH_service.json");

    if failed {
        eprintln!("fig_service_throughput acceptance checks FAILED");
        std::process::exit(1);
    }
}
