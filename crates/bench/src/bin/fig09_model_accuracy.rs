//! Fig 9: learned-cost-model accuracy — bagged random forest vs the
//! closed-form linear baseline, over growing training-set sizes, plus the
//! end-to-end check that the forest actually steers enumeration well.
//!
//! Training and held-out sets come from the direct-labelling
//! `robopt_ml::SimulatorSource` (one simulator call per row; see
//! `fig08_tdgen` for the interpolating TDGEN source): plans from the
//! workload pool, feasible platform assignments, labels in
//! `ln(1 + seconds)`. The forest must beat the linear model's held-out
//! MSE at **every** training size, and the plan it picks for
//! WordCount(1e7) behind `&dyn CostOracle` must simulate no slower than
//! the analytic oracle's pick. Writes
//! `EXPERIMENTS_OUTPUT/fig09_model_accuracy.txt` and
//! `BENCH_model_accuracy.json` at the repository root.
//!
//! `--quick` shrinks sizes and tree counts for the CI training-smoke run.

use std::fmt::Write as _;
use std::fs;

use robopt::{OptimizeRequest, Optimizer, SimulateRequest, WorkloadSpec};
use robopt_bench::repo_root;
use robopt_ml::{
    simulator_training_set, CostDistribution, DistModel, ForestConfig, LinearModel, Metrics, Model,
    RandomForest, SamplerConfig, TrainingSet,
};
use robopt_plan::N_OPERATOR_KINDS;
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

const TRAIN_SEED: u64 = 0x000F_169A;
const HELDOUT_SEED: u64 = 0x000F_169B;
const SIM_SEED: u64 = 42;

struct SweepRow {
    train_size: usize,
    linear: Metrics,
    forest: Metrics,
    /// Mean q-error on raw seconds (not log space), forest.
    forest_q_seconds: f64,
}

fn eval_model(model: &dyn Model, heldout: &TrainingSet) -> (Metrics, f64) {
    let mut preds = Vec::new();
    model.predict_batch(heldout.rows_view(), &mut preds);
    let metrics = Metrics::evaluate(&preds, &heldout.labels);
    let q_sum: f64 = preds
        .iter()
        .zip(&heldout.seconds)
        .map(|(&p, &s)| robopt_ml::q_error(TrainingSet::label_to_seconds(p), s))
        .sum();
    (metrics, q_sum / preds.len() as f64)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, n_trees, heldout_n): (&[usize], usize, usize) = if quick {
        (&[100, 200, 400], 16, 150)
    } else {
        (&[250, 500, 1000, 2000], 32, 500)
    };

    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);

    // One max-size training draw; each sweep point trains on a strict
    // prefix, so larger sizes extend rather than replace the data.
    let max_size = *sizes.last().unwrap();
    let train = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(TRAIN_SEED).with_noise(0.05),
        max_size,
    );
    // Held-out: independent seed, noiseless labels = clean ground truth.
    let heldout = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(HELDOUT_SEED).with_noise(0.0),
        heldout_n,
    );

    let forest_cfg = ForestConfig {
        n_trees,
        ..ForestConfig::default()
    };
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut final_forest: Option<RandomForest> = None;
    for &n in sizes {
        let subset = train.truncated(n);
        let mut linear = LinearModel::new();
        linear.fit_set(&subset);
        let forest = RandomForest::fit_on(&forest_cfg, &subset);
        let (linear_m, _) = eval_model(&linear, &heldout);
        let (forest_m, forest_q) = eval_model(&forest, &heldout);
        rows.push(SweepRow {
            train_size: n,
            linear: linear_m,
            forest: forest_m,
            forest_q_seconds: forest_q,
        });
        final_forest = Some(forest);
    }
    let forest = final_forest.expect("at least one sweep point");

    // Distributional seam (ISSUE 9, DESIGN §12): the forest's
    // `predict_dist_batch` mean column must be bit-identical to
    // `predict_batch` on the same rows — uncertainty reporting is one
    // forest pass, never a second (possibly divergent) estimator.
    let mut point_preds = Vec::new();
    forest.predict_batch(heldout.rows_view(), &mut point_preds);
    let mut dist = CostDistribution::default();
    forest.predict_dist_batch(heldout.rows_view(), &mut dist);
    let dist_mean_parity = point_preds.len() == dist.mean.len()
        && point_preds
            .iter()
            .zip(&dist.mean)
            .all(|(p, m)| p.to_bits() == m.to_bits());
    let dist_bands_ordered = (0..dist.mean.len())
        .all(|r| dist.std[r] >= 0.0 && dist.q10[r] <= dist.q50[r] && dist.q50[r] <= dist.q90[r]);
    let mean_heldout_std = dist.std.iter().sum::<f64>() / dist.std.len().max(1) as f64;

    // End-to-end: the forest (behind `&dyn CostOracle`) vs the analytic
    // oracle, both driving enumeration through the service facade on
    // WordCount(1e7); the simulator is the ground-truth judge.
    let wc = WorkloadSpec::WordCount { scale: 1e7 };
    let sim_req = |assignments: Vec<String>| SimulateRequest {
        workload: wc,
        assignments,
        seed: SIM_SEED,
        noise: 0.0,
    };
    let mut forest_opt = Optimizer::named();
    forest_opt
        .install_forest(forest)
        .expect("forest width matches the named-registry layout");
    let forest_resp = forest_opt
        .optimize(&OptimizeRequest::new(wc))
        .expect("optimize under the forest");
    let forest_sim_s = forest_opt
        .simulate(&sim_req(forest_resp.assignments.clone()))
        .expect("simulate the forest-picked plan")
        .seconds;
    let mut analytic_opt = Optimizer::named();
    let analytic_resp = analytic_opt
        .optimize(&OptimizeRequest::new(wc))
        .expect("optimize under the analytic oracle");
    let analytic_sim_s = analytic_opt
        .simulate(&sim_req(analytic_resp.assignments.clone()))
        .expect("simulate the analytic-picked plan")
        .seconds;

    let forest_always_wins = rows.iter().all(|r| r.forest.mse < r.linear.mse);
    let e2e_ok = forest_sim_s <= analytic_sim_s * (1.0 + 1e-9);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 9: cost-model accuracy on held-out simulator-labelled plans \
         ({} rows, {} platforms{})",
        heldout.len(),
        registry.len(),
        if quick { ", --quick" } else { "" }
    );
    let _ = writeln!(
        report,
        "labels: ln(1+seconds); q-error on raw seconds; forest: {n_trees} trees"
    );
    let _ = writeln!(
        report,
        "{:>10} {:>12} {:>12} {:>8} {:>12} {:>10} {:>12}",
        "train", "linear MSE", "forest MSE", "ratio", "forest MAE", "q(log)", "q(seconds)"
    );
    for r in &rows {
        let _ = writeln!(
            report,
            "{:>10} {:>12.4} {:>12.4} {:>8.3} {:>12.4} {:>10.3} {:>12.3}",
            r.train_size,
            r.linear.mse,
            r.forest.mse,
            r.forest.mse / r.linear.mse,
            r.forest.mae,
            r.forest.q_mean,
            r.forest_q_seconds
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "end-to-end WordCount(1e7): forest-picked plan {forest_sim_s:.2}s \
         vs analytic-picked {analytic_sim_s:.2}s (simulated ground truth)"
    );
    let _ = writeln!(
        report,
        "CHECK forest MSE < linear MSE at every training size: {}",
        if forest_always_wins { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "CHECK forest-driven enumeration <= analytic-driven (simulated): {}",
        if e2e_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "CHECK predict_dist_batch mean bit-identical to predict_batch \
         ({} held-out rows, mean per-row std {:.4} log-units): {}",
        dist.mean.len(),
        mean_heldout_std,
        if dist_mean_parity && dist_bands_ordered {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let _ = writeln!(
        report,
        "paper shape: learned model accuracy improves with training size; \
         linear baseline plateaus on the non-linear runtime surface"
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig09_model_accuracy.txt"),
        &report,
    )
    .expect("write fig09 report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig09_model_accuracy\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"n_trees\": {n_trees},");
    let _ = writeln!(json, "  \"heldout_rows\": {},", heldout.len());
    let _ = writeln!(
        json,
        "  \"dist_mean_parity\": {},",
        dist_mean_parity && dist_bands_ordered
    );
    let _ = writeln!(json, "  \"heldout_mean_std_log\": {mean_heldout_std:.6},");
    let _ = writeln!(
        json,
        "  \"end_to_end\": {{\"workload\": \"wordcount_1e7\", \"forest_sim_s\": {forest_sim_s:.4}, \"analytic_sim_s\": {analytic_sim_s:.4}}},"
    );
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"train_size\": {}, \"linear_mse\": {:.6}, \"forest_mse\": {:.6}, \"forest_mae\": {:.6}, \"forest_q_log\": {:.4}, \"forest_q_seconds\": {:.4}}}",
            r.train_size, r.linear.mse, r.forest.mse, r.forest.mae, r.forest.q_mean, r.forest_q_seconds
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_model_accuracy.json"), json)
        .expect("write BENCH_model_accuracy.json");

    if !forest_always_wins || !e2e_ok || !dist_mean_parity || !dist_bands_ordered {
        eprintln!("fig09 acceptance checks FAILED");
        std::process::exit(1);
    }
}
