//! Robust plan selection under runtime uncertainty (ISSUE 9, DESIGN §12).
//!
//! The distributional cost API exists so a risk-averse caller can trade a
//! little expected runtime for a lot of tail runtime. This experiment
//! closes that loop end to end:
//!
//! 1. **Train a forest through the service facade** on simulator-labelled
//!    rows, then wrap it in a *cardinality-sensitivity* ensemble oracle:
//!    member `j` re-predicts every candidate row with the layout's
//!    tuple-count cells scaled by a log-spaced hypothesis factor, so the
//!    [`robopt_core::CostOracle::cost_batch_dist`] spread measures how
//!    hard the learned cost model reacts to cardinality misestimation —
//!    the exact failure mode ROADMAP item 3 names. The mean column stays
//!    the unscaled forest prediction, bit-identical to `cost_batch`.
//! 2. **Divergence scan** — a log-spaced input-scale grid over the Fig-1
//!    workloads is enumerated under every risk policy (`expected`,
//!    `sigma2`, `q0.9`). Near platform crossovers the candidates' means
//!    collide while their sensitivities do not (work-bound java plans
//!    scale with tuples, startup-bound spark/flink plans don't), so the
//!    robust policies must repick somewhere on the grid (CHECKed).
//! 3. **Regret sweep** — each noise level ν doubles as a misestimation
//!    level: the optimizer sees scale `c`, the *true* input is `c·err`
//!    with `err` log-uniform in `[1/(1+8ν), 1+8ν]`, and the runtime
//!    simulator runs the picks at the true scale with per-operator noise
//!    ν (the PR-2 noise hook). Per-draw regret is a pick's runtime minus
//!    the best pick's runtime on that draw. The headline ASSERT: at the
//!    highest ν the `sigma2` pick's p90 regret is *strictly below* the
//!    `expected` pick's — mean-optimal plans ride the cardinality-
//!    sensitive platform, and the tail pays for it.
//!
//! A parity CHECK pins the API contract on the service path: an
//! unlabelled request and an explicit `ExpectedCost` request answer
//! bit-identically on a cache-off facade, so the distributional seam
//! costs nothing when risk is off.
//!
//! `--quick` shrinks the grid, the training set and the seed count for CI
//! smoke coverage. Writes `EXPERIMENTS_OUTPUT/fig11_robust_selection.txt`
//! and `BENCH_robust.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt::{OptimizeRequest, Optimizer, TrainRequest, TrainSource, WorkloadSpec};
use robopt_bench::repo_root;
use robopt_core::{CostDistribution, CostOracle, EnumOptions, Enumerator, RiskPolicy};
use robopt_ml::{Model, RandomForest};
use robopt_plan::SplitMix64;
use robopt_platforms::{PlatformId, PlatformRegistry, RuntimeSimulator};
use robopt_vector::{FeatureLayout, RowsView};

const TRAIN_SEED: u64 = 41;
const TRAIN_NOISE: f64 = 0.05;
const EVAL_SEED: u64 = 0x0F11_2E6E;
const EVAL_NOISES: [f64; 3] = [0.05, 0.15, 0.3];
/// Hypothesis members per distribution row (odd: the center member is the
/// unscaled prediction).
const MEMBERS: usize = 9;

fn policies() -> Vec<(&'static str, RiskPolicy)> {
    vec![
        ("expected", RiskPolicy::ExpectedCost),
        ("sigma2", RiskPolicy::MeanPlusKSigma(2.0)),
        ("q0.9", RiskPolicy::Quantile(0.9)),
    ]
}

/// Misestimation magnitude at noise level ν: the true cardinality is off
/// by a log-uniform factor in `[1/err_factor, err_factor]`.
fn err_factor(noise: f64) -> f64 {
    1.0 + 8.0 * noise
}

/// Cardinality-sensitivity ensemble over a fitted forest.
///
/// `cost_row`/`cost_batch` are the plain forest — the ExpectedCost path is
/// bit-identical to a `ModelOracle<RandomForest>`. `cost_batch_dist`
/// re-predicts each row under `MEMBERS` log-spaced cardinality hypotheses
/// (every tuple-count cell of the Fig-5 layout scaled by `s_j ∈
/// [1/f, f]`), so `std`/`q10`/`q90` quantify how much the learned cost
/// surface moves when the input-size estimate is wrong by up to `f`.
struct CardSensitivityOracle<'a> {
    forest: &'a RandomForest,
    factors: Vec<f64>,
    tuple_cells: Vec<usize>,
}

impl<'a> CardSensitivityOracle<'a> {
    fn new(forest: &'a RandomForest, layout: &FeatureLayout, f: f64) -> Self {
        assert!(f >= 1.0, "hypothesis range must contain the estimate");
        let factors: Vec<f64> = (0..MEMBERS)
            .map(|j| f.powf(2.0 * j as f64 / (MEMBERS - 1) as f64 - 1.0))
            .collect();
        // Every cell of the layout that scales with cardinality.
        let mut tuple_cells = vec![FeatureLayout::MAX_OUT_CARD];
        for kind in 0..layout.n_kinds {
            tuple_cells.push(layout.kind_in_tuples(kind));
            tuple_cells.push(layout.kind_out_tuples(kind));
        }
        for p in 0..layout.n_platforms {
            tuple_cells.push(layout.conversion_tuples(p));
            tuple_cells.push(layout.platform_input_tuples(p));
        }
        CardSensitivityOracle {
            forest,
            factors,
            tuple_cells,
        }
    }
}

impl CostOracle for CardSensitivityOracle<'_> {
    fn width(&self) -> usize {
        self.forest.width()
    }

    fn cost_row(&self, feats: &[f64]) -> f64 {
        self.forest.predict(feats)
    }

    fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        self.forest.predict_batch(rows, out);
    }

    fn cost_batch_dist(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        let n = rows.rows();
        let m = self.factors.len();
        let mut scaled = vec![0.0; self.width()];
        let scratch = out.sample_scratch(n, m);
        for r in 0..n {
            let row = rows.row(r);
            for (j, &s) in self.factors.iter().enumerate() {
                scaled.copy_from_slice(row);
                for &c in &self.tuple_cells {
                    scaled[c] *= s;
                }
                scratch[r * m + j] = self.forest.predict(&scaled);
            }
        }
        out.finalize_samples(m);
        // The mean column must stay bit-identical to `cost_batch`: the
        // hypothesis average only approximates the base prediction, so
        // re-quote the unscaled forest explicitly.
        self.forest.predict_batch(rows, &mut out.mean);
    }
}

/// The log-spaced input-scale grid over the Fig-1 workload shapes,
/// bracketing the named registry's platform crossovers.
fn scan_specs(quick: bool) -> Vec<WorkloadSpec> {
    let steps = if quick { 5 } else { 12 };
    let mut specs = Vec::new();
    for i in 0..steps {
        let t = i as f64 / (steps - 1) as f64;
        specs.push(WorkloadSpec::WordCount {
            scale: 10f64.powf(4.0 + 3.0 * t),
        });
        specs.push(WorkloadSpec::TpchQ3 {
            scale: 10f64.powf(3.0 + 2.5 * t),
        });
        specs.push(WorkloadSpec::Pipeline {
            ops: 9,
            scale: 10f64.powf(3.5 + 3.0 * t),
        });
    }
    specs
}

/// The same shape at a perturbed input scale (the "true" cardinality).
fn rescale(spec: &WorkloadSpec, f: f64) -> WorkloadSpec {
    match *spec {
        WorkloadSpec::WordCount { scale } => WorkloadSpec::WordCount { scale: scale * f },
        WorkloadSpec::TpchQ3 { scale } => WorkloadSpec::TpchQ3 { scale: scale * f },
        WorkloadSpec::Pipeline { ops, scale } => WorkloadSpec::Pipeline {
            ops,
            scale: scale * f,
        },
        other => other,
    }
}

fn spec_name(spec: &WorkloadSpec) -> String {
    match *spec {
        WorkloadSpec::WordCount { scale } => format!("wordcount({scale:.0})"),
        WorkloadSpec::TpchQ3 { scale } => format!("tpch_q3({scale:.0})"),
        WorkloadSpec::Pipeline { ops, scale } => format!("pipeline({ops},{scale:.0})"),
        _ => "other".to_string(),
    }
}

/// Distinct platforms of an assignment, in first-use order.
fn pick_label(registry: &PlatformRegistry, pick: &[PlatformId]) -> String {
    let mut names: Vec<&str> = Vec::new();
    for &id in pick {
        let name = registry.platform(id).name.as_str();
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names.join("+")
}

/// Nearest-rank percentile of an unsorted sample (q in (0, 1]).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_unstable_by(f64::total_cmp);
    let rank = (q * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Per-(policy, noise) regret aggregates, in milliseconds.
struct RegretRow {
    policy: &'static str,
    noise: f64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p95_ms: f64,
    draws: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let policy_set = policies();
    let train_rows = if quick { 400 } else { 1600 };

    // Phase 0 — train the forest through the service facade.
    let mut opt = Optimizer::named();
    opt.train(&TrainRequest {
        source: TrainSource::Simulator {
            seed: TRAIN_SEED,
            noise: TRAIN_NOISE,
        },
        rows: train_rows,
        n_trees: if quick { 12 } else { 24 },
        forest_seed: 0x0b5e_55ed,
    })
    .expect("train the forest");

    // Service view: the forest's own per-tree spread, through the facade.
    let view_specs = [
        WorkloadSpec::WordCount { scale: 1e6 },
        WorkloadSpec::TpchQ3 { scale: 1e5 },
        WorkloadSpec::Pipeline { ops: 9, scale: 1e5 },
    ];
    let mut service_view = Vec::new();
    for spec in view_specs {
        let resp = opt
            .optimize(&OptimizeRequest::new(spec).with_risk(RiskPolicy::MeanPlusKSigma(2.0)))
            .expect("service-view optimize");
        service_view.push(resp);
    }

    // Parity on the service path: unlabelled ≡ explicit ExpectedCost,
    // checked on a cache-off facade so neither answer is a cache echo.
    let mut reference = Optimizer::named();
    reference.set_cache_enabled(false);
    let parity_spec = WorkloadSpec::WordCount { scale: 1e6 };
    let plain = reference
        .optimize(&OptimizeRequest::new(parity_spec))
        .expect("parity plain");
    let explicit = reference
        .optimize(&OptimizeRequest::new(parity_spec).with_risk(RiskPolicy::ExpectedCost))
        .expect("parity explicit");
    let parity_ok = plain == explicit && plain.cost.to_bits() == explicit.cost.to_bits();

    // From here on the forest is used directly through the core seam.
    let registry = opt.registry();
    let layout = *opt.layout();
    let forest = opt.forest().expect("train installed a forest");
    let nu_max = EVAL_NOISES[EVAL_NOISES.len() - 1];
    let mut enumerator = Enumerator::new();
    let pick = |en: &mut Enumerator,
                oracle: &CardSensitivityOracle<'_>,
                spec: &WorkloadSpec,
                risk: RiskPolicy|
     -> Vec<PlatformId> {
        let plan = spec.build().expect("grid spec builds");
        let opts = EnumOptions::new(registry)
            .with_oracle(oracle)
            .with_risk(risk);
        en.enumerate(&plan, &layout, opts).0.assignments
    };

    // Phase 1 — divergence scan at the highest misestimation level.
    let oracle_max = CardSensitivityOracle::new(forest, &layout, err_factor(nu_max));
    let specs = scan_specs(quick);
    let mut scan_picks: Vec<Vec<Vec<PlatformId>>> = Vec::new();
    for spec in &specs {
        let per_policy: Vec<Vec<PlatformId>> = policy_set
            .iter()
            .map(|&(_, p)| pick(&mut enumerator, &oracle_max, spec, p))
            .collect();
        scan_picks.push(per_policy);
    }
    let divergent: Vec<usize> = (0..specs.len())
        .filter(|&i| scan_picks[i][1..].iter().any(|p| *p != scan_picks[i][0]))
        .collect();

    // Phase 2 — per-noise picks for the divergent workloads (the ensemble
    // hypothesis range widens with ν, so robust picks adapt per level).
    // picks_by_noise[ni][di][pi] = assignment.
    let mut picks_by_noise: Vec<Vec<Vec<Vec<PlatformId>>>> = Vec::new();
    for &noise in &EVAL_NOISES {
        let oracle = CardSensitivityOracle::new(forest, &layout, err_factor(noise));
        let mut per_wl = Vec::new();
        for &i in &divergent {
            let per_policy: Vec<Vec<PlatformId>> = policy_set
                .iter()
                .map(|&(_, p)| pick(&mut enumerator, &oracle, &specs[i], p))
                .collect();
            per_wl.push(per_policy);
        }
        picks_by_noise.push(per_wl);
    }

    // Phase 3 — regret sweep: optimize at the estimated scale, execute at
    // the true scale `c·err` on a noisy simulator, charge each policy its
    // excess over the best pick of that draw.
    let seeds = if quick { 40 } else { 150 };
    let mut regret_rows: Vec<RegretRow> = Vec::new();
    for (ni, &noise) in EVAL_NOISES.iter().enumerate() {
        let f = err_factor(noise);
        let mut regrets: Vec<Vec<f64>> = vec![Vec::new(); policy_set.len()];
        for (di, &i) in divergent.iter().enumerate() {
            for s in 0..seeds as u64 {
                // One misestimation draw per (workload, seed), shared
                // across noise levels through the exponent `u` so the
                // sweep is paired.
                let mut rng = SplitMix64::new(EVAL_SEED ^ (i as u64) << 32 ^ s);
                let u = rng.next_f64();
                let err = f.powf(2.0 * u - 1.0);
                let true_plan = rescale(&specs[i], err).build().expect("true-scale plan");
                let sim = RuntimeSimulator::new(registry, rng.next_u64()).with_noise(noise);
                let runs: Vec<f64> = picks_by_noise[ni][di]
                    .iter()
                    .map(|ids| sim.simulate(&true_plan, ids))
                    .collect();
                let best = runs.iter().copied().fold(f64::INFINITY, f64::min);
                for (p, &r) in runs.iter().enumerate() {
                    regrets[p].push(r - best);
                }
            }
        }
        for (p, (name, _)) in policy_set.iter().enumerate() {
            let samples = &mut regrets[p];
            let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
            regret_rows.push(RegretRow {
                policy: name,
                noise,
                mean_ms: mean * 1e3,
                p50_ms: percentile(samples, 0.50) * 1e3,
                p90_ms: percentile(samples, 0.90) * 1e3,
                p95_ms: percentile(samples, 0.95) * 1e3,
                draws: samples.len(),
            });
        }
    }

    let at = |policy: &str, noise: f64| -> &RegretRow {
        regret_rows
            .iter()
            .find(|r| r.policy == policy && r.noise == noise)
            .expect("regret row exists")
    };
    let expected_p90 = at("expected", nu_max).p90_ms;
    let sigma_p90 = at("sigma2", nu_max).p90_ms;

    // Report.
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Robust plan selection: risk policies vs noise + cardinality misestimation \
         ({} grid workloads, {} seeds/noise{})",
        specs.len(),
        seeds,
        if quick { ", --quick" } else { "" }
    );
    let _ = writeln!(
        report,
        "forest: {train_rows} simulator rows (noise {TRAIN_NOISE}); ensemble: {MEMBERS} \
         cardinality hypotheses in [1/f, f], f = 1 + 8*noise; true scale = estimate * err, \
         err log-uniform in the same range"
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "service view (forest per-tree spread through the facade, sigma2 requests):"
    );
    let _ = writeln!(
        report,
        "{:>18} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "cost", "std", "q10", "q90", "policy"
    );
    for resp in &service_view {
        let _ = writeln!(
            report,
            "{:>18} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10}",
            resp.workload, resp.cost, resp.cost_std, resp.cost_q10, resp.cost_q90, resp.risk_policy
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "divergence scan at f = {:.2} (distinct platforms of each winner; * = differs \
         from expected):",
        err_factor(nu_max)
    );
    let _ = writeln!(
        report,
        "{:>22} {:>18} {:>20} {:>20}",
        "workload", "expected", "sigma2", "q0.9"
    );
    for (i, spec) in specs.iter().enumerate() {
        let exp_label = pick_label(registry, &scan_picks[i][0]);
        let mut cells = vec![exp_label];
        for p in &scan_picks[i][1..] {
            let label = pick_label(registry, p);
            cells.push(if *p != scan_picks[i][0] {
                format!("{label}*")
            } else {
                label
            });
        }
        let _ = writeln!(
            report,
            "{:>22} {:>18} {:>20} {:>20}",
            spec_name(spec),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "per-policy regret vs the best pick of each draw (ms, {} divergent workloads):",
        divergent.len()
    );
    let _ = writeln!(
        report,
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "noise", "policy", "mean", "p50", "p90", "p95", "draws"
    );
    for r in &regret_rows {
        let _ = writeln!(
            report,
            "{:>8.2} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            r.noise, r.policy, r.mean_ms, r.p50_ms, r.p90_ms, r.p95_ms, r.draws
        );
    }

    let mut failed = false;
    let mut check = |report: &mut String, line: String, ok: bool| {
        let _ = writeln!(report, "CHECK {line}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    };
    let _ = writeln!(report);
    check(
        &mut report,
        format!(
            "risk policies repick somewhere on the grid ({} of {} workloads diverge)",
            divergent.len(),
            specs.len()
        ),
        !divergent.is_empty(),
    );
    check(
        &mut report,
        "unlabelled request bit-identical to explicit ExpectedCost (cache-off facade)".to_string(),
        parity_ok,
    );
    check(
        &mut report,
        format!(
            "sigma2 p90 regret strictly below expected at noise {nu_max} \
             ({sigma_p90:.1} ms < {expected_p90:.1} ms)"
        ),
        sigma_p90 < expected_p90,
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig11_robust_selection.txt"),
        &report,
    )
    .expect("write fig11_robust_selection report");

    // Hand-rendered JSON (offline environment: no serde_json). Regret
    // aggregates use the shared bench schema: `<prefix>_ms` is the median,
    // `<prefix>_p95_ms` the 95th percentile.
    let mut json = String::from("{\n  \"experiment\": \"fig11_robust_selection\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"train_rows\": {train_rows},");
    let _ = writeln!(json, "  \"seeds_per_noise\": {seeds},");
    let _ = writeln!(json, "  \"grid_workloads\": {},", specs.len());
    let _ = writeln!(json, "  \"divergent_workloads\": {},", divergent.len());
    json.push_str("  \"regret\": [\n");
    for (i, r) in regret_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"noise\": {}, \"regret_ms\": {:.6}, \
             \"regret_p90_ms\": {:.6}, \"regret_p95_ms\": {:.6}, \
             \"regret_mean_ms\": {:.6}, \"draws\": {}}}",
            r.policy, r.noise, r.p50_ms, r.p90_ms, r.p95_ms, r.mean_ms, r.draws
        );
        json.push_str(if i + 1 < regret_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_robust.json"), json).expect("write BENCH_robust.json");

    if failed {
        eprintln!("fig11_robust_selection acceptance checks FAILED");
        std::process::exit(1);
    }
}
