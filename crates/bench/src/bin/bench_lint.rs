//! Bench `bench_lint`: one full `robopt-lint` workspace pass — load,
//! parse, call-graph construction, all 19 rules including the
//! interprocedural taint passes — timed end to end.
//!
//! The lint blocks CI on every push, so its latency is a developer-facing
//! budget: the pass must stay **well under 2 s** on the whole workspace
//! (DESIGN §13). Writes `BENCH_lint.json` (shared schema: `<prefix>_ms`,
//! `<prefix>_p95_ms`, `<prefix>_per_s`).

use std::fs;

use robopt_bench::{bench, repo_root};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let root = repo_root();
    let iters = if quick { 3 } else { 11 };

    // Warm pass: fail loudly (and skip the artifact) if the tree is dirty,
    // and capture the graph shape the timing below covers.
    let (outcome, graph) = robopt_lint::run_lint_graph(&root).expect("workspace loads");
    assert!(
        outcome.is_clean(),
        "workspace has lint violations; fix them before benchmarking"
    );
    let s = outcome.graph;

    let t = bench(1, iters, || {
        let (out, _) = robopt_lint::run_lint_graph(&root).expect("workspace loads");
        std::hint::black_box(out.violations.len());
    });

    println!(
        "lint/full_pass  median {:>9.2} ms  p95 {:>9.2} ms  ({} files, {} fns, {} edges)",
        t.median_ms(),
        t.p95_ms(),
        outcome.files_scanned,
        s.functions,
        s.edges
    );
    let budget_ok = t.p95_ms() < 2000.0;
    assert!(budget_ok, "lint pass breached its 2 s budget");

    let json = format!(
        "{{\n  \"experiment\": \"bench_lint\",\n  \"quick\": {quick},\n  \"iters\": {iters},\n\
         \n  \"graph\": {{\"files\": {}, \"functions\": {}, \"edges\": {}, \"crates\": {}, \
         \"resolved_calls\": {}, \"external_calls\": {}, \"unresolved_calls\": {}}},\n\
         \n  \"full_pass\": {{\"lint_ms\": {:.6}, \"lint_p95_ms\": {:.6}, \"lint_per_s\": {:.3}, \
         \"budget_ms\": 2000.0, \"within_budget\": {budget_ok}}}\n}}\n",
        outcome.files_scanned,
        s.functions,
        graph.edge_count(),
        s.crates,
        s.resolved_calls,
        s.external_calls,
        s.unresolved_calls,
        t.median_ms(),
        t.p95_ms(),
        t.per_second(1),
    );
    fs::write(root.join("BENCH_lint.json"), json).expect("write BENCH_lint.json");
}
