//! Fig 2: genuine cross-platform plans over the named five-platform
//! registry (Java streams, Spark, Flink, Postgres, Giraph).
//!
//! Each workload goes through [`robopt::Optimizer::compare`] — the Fig-2
//! experiment as a service verb: optimize over [`robopt_platforms::PlatformRegistry::named`]
//! (availability masking keeps operators off platforms that cannot execute
//! them, the conversion graph prices every switch), then pit the mixed
//! winner against every *feasible* single-platform plan under oracle cost
//! and the deterministic runtime simulator. The headline check is that on
//! at least one workload the mixed plan strictly beats them all (the
//! paper's core cross-platform claim).
//! Writes `EXPERIMENTS_OUTPUT/fig02_platform_mix.txt` and
//! `BENCH_platform_mix.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt::{CompareRequest, CompareResponse, ExecutionPolicy, Optimizer, WorkloadSpec};
use robopt_bench::repo_root;

const SIM_SEED: u64 = 42;

struct Row {
    task: &'static str,
    cmp: CompareResponse,
}

impl Row {
    fn ops(&self) -> usize {
        self.cmp.mixed.assignments.len()
    }

    fn beats_every_single(&self) -> bool {
        self.cmp.mixed.distinct_platforms >= 2
            && self
                .cmp
                .best_single_cost
                .is_some_and(|best| self.cmp.mixed.cost < best * (1.0 - 1e-9))
    }
}

fn measure(opt: &mut Optimizer, task: &'static str, workload: WorkloadSpec) -> Row {
    let cmp = opt
        .compare(&CompareRequest {
            workload,
            policy: ExecutionPolicy::default(),
            sim_seed: SIM_SEED,
        })
        .expect("compare request");
    Row { task, cmp }
}

fn main() {
    let mut opt = Optimizer::named();
    let rows = vec![
        measure(
            &mut opt,
            "WordCount small (1e5)",
            WorkloadSpec::WordCount { scale: 1e5 },
        ),
        measure(
            &mut opt,
            "WordCount large (1e7)",
            WorkloadSpec::WordCount { scale: 1e7 },
        ),
        measure(
            &mut opt,
            "TPC-H Q3 (1e6)",
            WorkloadSpec::TpchQ3 { scale: 1e6 },
        ),
        measure(
            &mut opt,
            "Synthetic (25 op., 1e6)",
            WorkloadSpec::Pipeline {
                ops: 25,
                scale: 1e6,
            },
        ),
    ];

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 2: cross-platform plans over the named registry ({} platforms)",
        opt.registry().len()
    );
    for r in &rows {
        let _ = writeln!(report);
        let _ = writeln!(
            report,
            "{} [{} operators]  optimum: cost {:.3}, {} platform(s) ({}), simulated {:.2}s",
            r.task,
            r.ops(),
            r.cmp.mixed.cost,
            r.cmp.mixed.distinct_platforms,
            r.cmp.mix,
            r.cmp.mixed_sim_seconds,
        );
        for s in &r.cmp.singles {
            match (s.cost, s.sim_seconds) {
                (Some(c), Some(t)) => {
                    let _ = writeln!(
                        report,
                        "  all-{:<9} cost {:>12.3}  simulated {:>10.2}s{}",
                        s.platform,
                        c,
                        t,
                        if r.cmp.mixed.cost < c * (1.0 - 1e-9) {
                            "  (mixed wins)"
                        } else {
                            ""
                        }
                    );
                }
                _ => {
                    let _ = writeln!(
                        report,
                        "  all-{:<9} infeasible (availability matrix)",
                        s.platform
                    );
                }
            }
        }
    }

    let winners: Vec<&Row> = rows.iter().filter(|r| r.beats_every_single()).collect();
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "CHECK mixed plan strictly beats every feasible single platform on >= 1 workload: {} \
         ({} of {} workloads)",
        if winners.is_empty() { "FAIL" } else { "PASS" },
        winners.len(),
        rows.len()
    );
    for r in &winners {
        let best = r.cmp.best_single_cost.unwrap();
        let _ = writeln!(
            report,
            "  {}: mixed {:.3} vs best single {:.3} ({:.1}% cheaper, mix {})",
            r.task,
            r.cmp.mixed.cost,
            best,
            100.0 * (1.0 - r.cmp.mixed.cost / best),
            r.cmp.mix
        );
    }
    let sane = rows.iter().all(|r| {
        r.cmp
            .best_single_cost
            .is_none_or(|best| r.cmp.mixed.cost <= best * (1.0 + 1e-9))
    });
    let _ = writeln!(
        report,
        "CHECK enumerated optimum never worse than any single platform: {}",
        if sane { "PASS" } else { "FAIL" }
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig02_platform_mix.txt"),
        &report,
    )
    .expect("write fig02 report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig02_platform_mix\",\n");
    let _ = writeln!(json, "  \"platforms\": {},", opt.registry().len());
    let _ = writeln!(json, "  \"sim_seed\": {SIM_SEED},");
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"task\": \"{}\", \"ops\": {}, \"mixed_cost\": {:.6}, \
             \"distinct_platforms\": {}, \"mix\": \"{}\", \"mixed_sim_s\": {:.6}, \"singles\": {{",
            r.task,
            r.ops(),
            r.cmp.mixed.cost,
            r.cmp.mixed.distinct_platforms,
            r.cmp.mix,
            r.cmp.mixed_sim_seconds
        );
        for (j, s) in r.cmp.singles.iter().enumerate() {
            match s.cost {
                Some(c) => {
                    let _ = write!(json, "\"{}\": {:.6}", s.platform, c);
                }
                None => {
                    let _ = write!(json, "\"{}\": null", s.platform);
                }
            }
            if j + 1 < r.cmp.singles.len() {
                json.push_str(", ");
            }
        }
        json.push_str("}}");
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_platform_mix.json"), json).expect("write BENCH_platform_mix.json");

    if winners.is_empty() || !sane {
        eprintln!("fig02 acceptance checks FAILED");
        std::process::exit(1);
    }
}
