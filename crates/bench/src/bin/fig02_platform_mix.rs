//! Fig 2: genuine cross-platform plans over the named five-platform
//! registry (Java streams, Spark, Flink, Postgres, Giraph).
//!
//! For each workload the vector enumerator runs over
//! [`PlatformRegistry::named`] — availability masking keeps operators off
//! platforms that cannot execute them, and the registry's conversion graph
//! (COT) prices every platform switch. The resulting optimum is compared
//! against every *feasible* single-platform plan; the headline check is
//! that on at least one workload the mixed plan strictly beats them all
//! (the paper's core cross-platform claim). The deterministic runtime
//! simulator reports the corresponding simulated wall-clock per plan.
//! Writes `EXPERIMENTS_OUTPUT/fig02_platform_mix.txt` and
//! `BENCH_platform_mix.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt_bench::repo_root;
use robopt_core::vectorize::vectorize_assignment;
use robopt_core::{AnalyticOracle, CostOracle, EnumOptions, Enumerator, ExecutionPlan};
use robopt_plan::{workloads, LogicalPlan, N_OPERATOR_KINDS};
use robopt_platforms::{PlatformId, PlatformRegistry, RuntimeSimulator};
use robopt_vector::FeatureLayout;

const SIM_SEED: u64 = 42;

struct SinglePlan {
    name: String,
    /// Oracle cost of the all-on-this-platform plan, `None` when the
    /// availability matrix makes the platform infeasible for the workload.
    cost: Option<f64>,
    sim_s: Option<f64>,
}

struct Row {
    task: &'static str,
    ops: usize,
    mixed: ExecutionPlan,
    mix_desc: String,
    mixed_sim_s: f64,
    singles: Vec<SinglePlan>,
}

impl Row {
    fn best_single(&self) -> Option<f64> {
        self.singles
            .iter()
            .filter_map(|s| s.cost)
            .min_by(f64::total_cmp)
    }

    fn beats_every_single(&self) -> bool {
        self.mixed.distinct_platforms() >= 2
            && self
                .best_single()
                .is_some_and(|best| self.mixed.cost < best * (1.0 - 1e-9))
    }
}

/// Render the mixed assignment as `name:count` pairs in registry order.
fn describe_mix(registry: &PlatformRegistry, exec: &ExecutionPlan) -> String {
    let mut counts = vec![0usize; registry.len()];
    for &p in &exec.assignments {
        counts[p.index()] += 1;
    }
    let mut s = String::new();
    for id in registry.ids() {
        if counts[id.index()] > 0 {
            if !s.is_empty() {
                s.push(' ');
            }
            let _ = write!(s, "{}:{}", registry.platform(id).name, counts[id.index()]);
        }
    }
    s
}

fn measure(task: &'static str, plan: &LogicalPlan, registry: &PlatformRegistry) -> Row {
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    let oracle = AnalyticOracle::for_registry(registry, &layout);
    let sim = RuntimeSimulator::new(registry, SIM_SEED);

    let (mixed, _) = Enumerator::new().enumerate(
        plan,
        &layout,
        EnumOptions::new(registry).with_oracle(&oracle),
    );
    let mixed_sim_s = sim.simulate(plan, &mixed.assignments);

    let mut feats = Vec::new();
    let singles = registry
        .ids()
        .map(|id| {
            let feasible =
                (0..plan.n_ops() as u32).all(|op| registry.is_available(plan.op(op).kind, id));
            let (cost, sim_s) = if feasible {
                let assign = vec![id.raw(); plan.n_ops()];
                vectorize_assignment(plan, &layout, &assign, &mut feats);
                let uniform: Vec<PlatformId> = vec![id; plan.n_ops()];
                (
                    Some(oracle.cost_row(&feats)),
                    Some(sim.simulate(plan, &uniform)),
                )
            } else {
                (None, None)
            };
            SinglePlan {
                name: registry.platform(id).name.clone(),
                cost,
                sim_s,
            }
        })
        .collect();

    let mix_desc = describe_mix(registry, &mixed);
    Row {
        task,
        ops: plan.n_ops(),
        mixed,
        mix_desc,
        mixed_sim_s,
        singles,
    }
}

fn main() {
    let registry = PlatformRegistry::named();
    let rows = vec![
        measure(
            "WordCount small (1e5)",
            &workloads::wordcount(1e5),
            &registry,
        ),
        measure(
            "WordCount large (1e7)",
            &workloads::wordcount(1e7),
            &registry,
        ),
        measure("TPC-H Q3 (1e6)", &workloads::tpch_q3(1e6), &registry),
        measure(
            "Synthetic (25 op., 1e6)",
            &workloads::synthetic_pipeline(25, 1e6),
            &registry,
        ),
    ];

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 2: cross-platform plans over the named registry ({} platforms)",
        registry.len()
    );
    for r in &rows {
        let _ = writeln!(report);
        let _ = writeln!(
            report,
            "{} [{} operators]  optimum: cost {:.3}, {} platform(s) ({}), simulated {:.2}s",
            r.task,
            r.ops,
            r.mixed.cost,
            r.mixed.distinct_platforms(),
            r.mix_desc,
            r.mixed_sim_s,
        );
        for s in &r.singles {
            match (s.cost, s.sim_s) {
                (Some(c), Some(t)) => {
                    let _ = writeln!(
                        report,
                        "  all-{:<9} cost {:>12.3}  simulated {:>10.2}s{}",
                        s.name,
                        c,
                        t,
                        if r.mixed.cost < c * (1.0 - 1e-9) {
                            "  (mixed wins)"
                        } else {
                            ""
                        }
                    );
                }
                _ => {
                    let _ = writeln!(
                        report,
                        "  all-{:<9} infeasible (availability matrix)",
                        s.name
                    );
                }
            }
        }
    }

    let winners: Vec<&Row> = rows.iter().filter(|r| r.beats_every_single()).collect();
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "CHECK mixed plan strictly beats every feasible single platform on >= 1 workload: {} \
         ({} of {} workloads)",
        if winners.is_empty() { "FAIL" } else { "PASS" },
        winners.len(),
        rows.len()
    );
    for r in &winners {
        let best = r.best_single().unwrap();
        let _ = writeln!(
            report,
            "  {}: mixed {:.3} vs best single {:.3} ({:.1}% cheaper, mix {})",
            r.task,
            r.mixed.cost,
            best,
            100.0 * (1.0 - r.mixed.cost / best),
            r.mix_desc
        );
    }
    let sane = rows.iter().all(|r| {
        r.best_single()
            .is_none_or(|best| r.mixed.cost <= best * (1.0 + 1e-9))
    });
    let _ = writeln!(
        report,
        "CHECK enumerated optimum never worse than any single platform: {}",
        if sane { "PASS" } else { "FAIL" }
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig02_platform_mix.txt"),
        &report,
    )
    .expect("write fig02 report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig02_platform_mix\",\n");
    let _ = writeln!(json, "  \"platforms\": {},", registry.len());
    let _ = writeln!(json, "  \"sim_seed\": {SIM_SEED},");
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"task\": \"{}\", \"ops\": {}, \"mixed_cost\": {:.6}, \
             \"distinct_platforms\": {}, \"mix\": \"{}\", \"mixed_sim_s\": {:.6}, \"singles\": {{",
            r.task,
            r.ops,
            r.mixed.cost,
            r.mixed.distinct_platforms(),
            r.mix_desc,
            r.mixed_sim_s
        );
        for (j, s) in r.singles.iter().enumerate() {
            match s.cost {
                Some(c) => {
                    let _ = write!(json, "\"{}\": {:.6}", s.name, c);
                }
                None => {
                    let _ = write!(json, "\"{}\": null", s.name);
                }
            }
            if j + 1 < r.singles.len() {
                json.push_str(", ");
            }
        }
        json.push_str("}}");
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_platform_mix.json"), json).expect("write BENCH_platform_mix.json");

    if winners.is_empty() || !sane {
        eprintln!("fig02 acceptance checks FAILED");
        std::process::exit(1);
    }
}
