//! Engine validation: does the analytic simulator *rank* plans the way the
//! real executor *runs* them, and can a forest trained on engine-measured
//! rows find the measured optimum? (ISSUE 8, DESIGN §11.)
//!
//! Three phases:
//!
//! 1. **Correctness gate** (before any clock starts): for every pool
//!    workload the multi-threaded engine's terminal output digest at 1, 2,
//!    and 4 workers must equal the independent single-threaded reference
//!    executor's digest — byte-identical outputs, or the timing below is
//!    timing a wrong answer.
//! 2. **Ranking agreement** — every pool workload runs on the engine
//!    (median-of-3 measured seconds) and through the simulator (noiseless)
//!    under the same all-`java` assignment; Spearman rank correlation over
//!    the shared pool must reach ≥ 0.9. The pool is volume-separated on
//!    purpose: the claim is that the analytic model orders workloads the
//!    way real execution does, not that it predicts absolute seconds.
//! 3. **Learn from measurements** — a [`robopt_ml::BackendSource`] over
//!    the engine generates training rows whose labels are *measured*
//!    runtimes; a forest fit on them must rank the engine-measured best
//!    uniform platform for WordCount first (java: its modeled startup and
//!    per-operator overheads are orders of magnitude below spark/flink at
//!    this input volume).
//!
//! `--quick` shrinks the pool and training set for CI smoke coverage.
//! Writes `EXPERIMENTS_OUTPUT/fig10_engine_validation.txt` and
//! `BENCH_engine.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt_bench::repo_root;
use robopt_core::vectorize::vectorize_assignment;
use robopt_engine::{execute_reference, Engine};
use robopt_ml::{spearman, BackendSource, ForestConfig, Model, RandomForest, TrainingSource};
use robopt_plan::{workloads, LogicalPlan, N_OPERATOR_KINDS};
use robopt_platforms::{ExecutionBackend, PlatformId, PlatformRegistry};
use robopt_vector::FeatureLayout;

const ENGINE_SEED: u64 = 0x00F1_6A10;
const TRAIN_SEED: u64 = 0x00F1_6A11;

/// The shared workload pool: volume-separated so both backends face a
/// clear ordering, with every operator family (flat map, join, loop)
/// represented.
fn pool(quick: bool) -> Vec<(String, LogicalPlan)> {
    let mut entries = vec![
        ("wordcount(1e3)".to_string(), workloads::wordcount(1e3)),
        ("wordcount(1e4)".to_string(), workloads::wordcount(1e4)),
        ("wordcount(1e5)".to_string(), workloads::wordcount(1e5)),
        ("tpch_q3(1e3)".to_string(), workloads::tpch_q3(1e3)),
        ("tpch_q3(3e4)".to_string(), workloads::tpch_q3(3e4)),
        ("pagerank(2e3,5)".to_string(), workloads::pagerank(2e3, 5)),
        ("kmeans(2e3,5)".to_string(), workloads::kmeans(2e3, 5)),
        (
            "pipeline(8,1e4)".to_string(),
            workloads::synthetic_pipeline(8, 1e4),
        ),
    ];
    if !quick {
        entries.push(("wordcount(2e5)".to_string(), workloads::wordcount(2e5)));
        entries.push(("tpch_q3(1e5)".to_string(), workloads::tpch_q3(1e5)));
        entries.push(("pagerank(2e4,10)".to_string(), workloads::pagerank(2e4, 10)));
        entries.push(("kmeans(2e4,10)".to_string(), workloads::kmeans(2e4, 10)));
        entries.push((
            "pipeline(16,1e5)".to_string(),
            workloads::synthetic_pipeline(16, 1e5),
        ));
    }
    entries
}

fn uniform(registry: &PlatformRegistry, name: &str, n: usize) -> Vec<PlatformId> {
    let id = registry.by_name(name).expect("named platform");
    vec![id; n]
}

/// Phase 1: engine output at 1/2/4 workers must be byte-identical to the
/// independent reference executor. Panics (exit ≠ 0) on divergence.
fn correctness_gate(registry: &PlatformRegistry, entries: &[(String, LogicalPlan)]) {
    for (name, plan) in entries {
        let (_, want) =
            execute_reference(plan, ENGINE_SEED, robopt_engine::DEFAULT_MAX_SOURCE_ROWS);
        let assign = uniform(registry, "java", plan.n_ops());
        for workers in [1usize, 2, 4] {
            let engine = Engine::new(registry)
                .with_workers(workers)
                .with_seed(ENGINE_SEED);
            let out = engine.execute_collect(plan, &assign);
            assert!(out.report.feasible, "{name}: all-java must be feasible");
            assert_eq!(
                out.report.output_digest, want,
                "{name}: engine digest at {workers} workers diverged from the reference"
            );
        }
    }
}

struct PoolRow {
    name: String,
    engine_s: f64,
    sim_s: f64,
    output_rows: u64,
}

/// Median of three engine runs — measured seconds jitter, digests don't.
fn engine_seconds(engine: &Engine<'_>, plan: &LogicalPlan, assign: &[PlatformId]) -> (f64, u64) {
    let mut secs: Vec<f64> = Vec::with_capacity(3);
    let mut rows = 0;
    for _ in 0..3 {
        let report = engine.execute(plan, assign);
        assert!(report.feasible);
        secs.push(report.seconds);
        rows = report.output_rows;
    }
    secs.sort_by(f64::total_cmp);
    (secs[1], rows)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    let entries = pool(quick);

    // Phase 1 — correctness before any clock starts.
    correctness_gate(&registry, &entries);

    // Phase 2 — engine vs simulator ranking over the shared pool.
    let engine = Engine::new(&registry)
        .with_workers(2)
        .with_seed(ENGINE_SEED);
    let sim = robopt_platforms::RuntimeSimulator::new(&registry, 0);
    let sim_backend: &dyn ExecutionBackend = &sim;
    let rows: Vec<PoolRow> = entries
        .iter()
        .map(|(name, plan)| {
            let assign = uniform(&registry, "java", plan.n_ops());
            let (engine_s, output_rows) = engine_seconds(&engine, plan, &assign);
            let sim_s = sim_backend.execute(plan, &assign).seconds;
            PoolRow {
                name: name.clone(),
                engine_s,
                sim_s,
                output_rows,
            }
        })
        .collect();
    let engine_secs: Vec<f64> = rows.iter().map(|r| r.engine_s).collect();
    let sim_secs: Vec<f64> = rows.iter().map(|r| r.sim_s).collect();
    let rho = spearman(&engine_secs, &sim_secs);

    // Phase 3 — train on engine-measured rows, pick the measured optimum.
    let train_rows = if quick { 96 } else { 192 };
    let train_pool = vec![
        workloads::wordcount(3e3),
        workloads::wordcount(1e4),
        workloads::wordcount(3e4),
        workloads::tpch_q3(3e3),
        workloads::tpch_q3(1e4),
        workloads::pagerank(5e3, 5),
        workloads::kmeans(5e3, 5),
        workloads::synthetic_pipeline(8, 1e4),
        workloads::synthetic_pipeline(12, 3e3),
    ];
    let engine_backend: &dyn ExecutionBackend = &engine;
    let mut source =
        BackendSource::new(engine_backend, &registry, layout, TRAIN_SEED).with_pool(train_pool);
    let set = source.generate(train_rows);
    let forest_cfg = ForestConfig {
        n_trees: if quick { 12 } else { 24 },
        seed: 0x0F02_0E57,
        ..ForestConfig::default()
    };
    let forest = RandomForest::fit_on(&forest_cfg, &set);

    // Candidates: every uniform single-platform WordCount plan the
    // registry can run. Rank them by forest prediction and by measurement.
    let wc = workloads::wordcount(1e4);
    let mut candidates: Vec<(String, f64, f64)> = Vec::new(); // (name, predicted, measured)
    let mut feats = Vec::new();
    for id in registry.ids().collect::<Vec<_>>() {
        let feasible = (0..wc.n_ops() as u32).all(|op| registry.is_available(wc.op(op).kind, id));
        if !feasible {
            continue;
        }
        let assign = vec![id; wc.n_ops()];
        let raw: Vec<u8> = assign.iter().map(|p| p.raw()).collect();
        vectorize_assignment(&wc, &layout, &raw, &mut feats);
        let predicted = forest.predict_row(&feats);
        let (measured, _) = engine_seconds(&engine, &wc, &assign);
        candidates.push((registry.platform(id).name.clone(), predicted, measured));
    }
    let argmin = |key: fn(&(String, f64, f64)) -> f64| -> String {
        candidates
            .iter()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
            .map(|c| c.0.clone())
            .unwrap_or_default()
    };
    let predicted_best = argmin(|c| c.1);
    let measured_best = argmin(|c| c.2);

    // Report.
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Engine validation: real executor vs analytic simulator vs learned forest \
         ({} workloads{})",
        entries.len(),
        if quick { ", --quick" } else { "" }
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "all-java pool (engine = median-of-3 measured, simulator = noiseless model):"
    );
    let _ = writeln!(
        report,
        "{:>18} {:>14} {:>14} {:>12}",
        "workload", "engine s", "simulator s", "output rows"
    );
    for r in &rows {
        let _ = writeln!(
            report,
            "{:>18} {:>14.6} {:>14.6} {:>12}",
            r.name, r.engine_s, r.sim_s, r.output_rows
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "uniform WordCount candidates (forest trained on {} engine-measured rows):",
        set.len()
    );
    let _ = writeln!(
        report,
        "{:>10} {:>16} {:>14}",
        "platform", "predicted label", "measured s"
    );
    for (name, predicted, measured) in &candidates {
        let _ = writeln!(report, "{name:>10} {predicted:>16.6} {measured:>14.6}");
    }

    let mut failed = false;
    let mut check = |report: &mut String, line: String, ok: bool| {
        let _ = writeln!(report, "CHECK {line}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    };
    let _ = writeln!(report);
    check(
        &mut report,
        "engine output digests byte-identical to the reference at 1/2/4 workers".to_string(),
        true, // asserted in correctness_gate(); reaching this line means it held
    );
    check(
        &mut report,
        format!("engine-vs-simulator Spearman >= 0.9 over the pool (measured {rho:.3})"),
        rho >= 0.9,
    );
    check(
        &mut report,
        format!(
            "forest trained on engine rows picks the measured WordCount optimum \
             (predicted {predicted_best}, measured {measured_best})"
        ),
        !predicted_best.is_empty() && predicted_best == measured_best,
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig10_engine_validation.txt"),
        &report,
    )
    .expect("write fig10_engine_validation report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig10_engine_validation\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"engine_seed\": {ENGINE_SEED},");
    let _ = writeln!(json, "  \"spearman\": {rho:.6},");
    let _ = writeln!(json, "  \"train_rows\": {},", set.len());
    let _ = writeln!(json, "  \"predicted_best\": \"{predicted_best}\",");
    let _ = writeln!(json, "  \"measured_best\": \"{measured_best}\",");
    json.push_str("  \"pool\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"engine_s\": {:.6}, \"sim_s\": {:.6}, \
             \"output_rows\": {}}}",
            r.name, r.engine_s, r.sim_s, r.output_rows
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"wordcount_candidates\": [\n");
    for (i, (name, predicted, measured)) in candidates.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"platform\": \"{name}\", \"predicted_label\": {predicted:.6}, \
             \"measured_s\": {measured:.6}}}"
        );
        json.push_str(if i + 1 < candidates.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_engine.json"), json).expect("write BENCH_engine.json");

    if failed {
        eprintln!("fig10_engine_validation acceptance checks FAILED");
        std::process::exit(1);
    }
}
