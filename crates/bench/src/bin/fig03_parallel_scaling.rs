//! Fig 3: split-based parallel enumeration scalability (operators ×
//! platforms × workers), ROADMAP item 2 / ISSUE 6, through the
//! [`robopt::Optimizer`] facade (ISSUE 7).
//!
//! Sweeps pipeline workloads up to 128 operators over `uniform(k)`
//! registries up to 8 platforms. The serial baseline is the facade with
//! `split_parts = 1` (the split driver's serial fallback — the plain
//! enumerator path); the parallel runs use `split_parts = 8` at 1/2/4/8
//! workers. **The plan-signature cache is disabled**: worker count is
//! excluded from the cache key precisely because results are
//! bit-identical across it, so a memoizing facade would answer every
//! timed iteration from the cache. For every configuration the binary
//! **asserts** the correctness contract before timing anything:
//!
//! * parallel(T) is bit-identical to parallel(1) — the full
//!   [`robopt::OptimizeResponse`] (assignments, cost bits, stats)
//!   compares equal — for every worker count;
//! * parallel agrees with the serial fallback on the chosen assignments
//!   and on cost bits (both paths re-cost the winner canonically;
//!   intermediate stats legitimately differ across merge trees and are
//!   not compared).
//!
//! Speedup assertions are gated on `std::thread::available_parallelism()`:
//! ≥ 2.0× at 4 workers needs ≥ 4 hardware threads and a ≥ 1.2× check
//! applies on 2–3. On a single-core host threads cannot beat wall-clock
//! physics, and the split path inherently does more row work than serial
//! even at one worker: interior parts must carry their *left* boundary
//! operator's platform in every footprint (Def-2 losslessness), so their
//! merges stage up to `k×` the rows of serial's boundary-1 prefix scopes —
//! measured ≈ 1.4× total row work at k = 2, worse at higher k. The
//! single-core assertion is therefore an *overhead regression guard*, not a
//! speedup claim: ≥ 0.65× at full scale (≥ 0.5× for the tiny `--quick`
//! plan, where fixed split/seam costs don't amortize). It exists to catch
//! pathologies like balanced seam merge trees (k⁴ cross-products), which
//! regress this ratio by an order of magnitude. Because the hardware clamp
//! collapses every worker count to one on such a host, the 100+-op
//! entries at different worker counts are replicates of the same
//! configuration and the guard takes the best across all of them. The JSON records
//! `hw_threads` so readers can interpret the numbers. Correctness is
//! asserted unconditionally.
//!
//! `--quick` runs one 32-operator, 2-platform, 2-worker configuration for
//! CI smoke coverage. Writes `EXPERIMENTS_OUTPUT/fig03_parallel_scaling.txt`
//! and `BENCH_parallel_enum.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt::{ExecutionPolicy, OptimizeRequest, Optimizer, WorkloadSpec};
use robopt_bench::{bench, repo_root};
use robopt_platforms::PlatformRegistry;

const SPLIT_PARTS: usize = 8;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Entry {
    ops: usize,
    platforms: usize,
    workers: usize,
    serial_ms: f64,
    serial_p95_ms: f64,
    serial_per_s: f64,
    parallel_ms: f64,
    parallel_p95_ms: f64,
    parallel_per_s: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

fn measure(ops: usize, platforms: usize, workers: usize, warmup: usize, iters: usize) -> Entry {
    let mut opt = Optimizer::new(PlatformRegistry::uniform(platforms));
    // Worker count shares one cache line by design; timing a memoized
    // replay would measure the cache, not enumeration.
    opt.set_cache_enabled(false);
    let spec = WorkloadSpec::Pipeline { ops, scale: 1e5 };
    let serial_req = OptimizeRequest::new(spec).with_policy(
        ExecutionPolicy::default()
            .with_workers(1)
            .with_split_parts(1),
    );
    let base_req = OptimizeRequest::new(spec).with_policy(
        ExecutionPolicy::default()
            .with_workers(1)
            .with_split_parts(SPLIT_PARTS),
    );
    let par_req = OptimizeRequest::new(spec).with_policy(
        ExecutionPolicy::default()
            .with_workers(workers)
            .with_split_parts(SPLIT_PARTS),
    );
    let tag = format!("{ops} ops, {platforms} platforms, {workers} workers");

    // Correctness gate before any timing.
    let serial = opt.optimize(&serial_req).expect("serial optimize");
    let base = opt.optimize(&base_req).expect("1-worker optimize");
    let par = opt.optimize(&par_req).expect("parallel optimize");
    assert_eq!(
        par, base,
        "{tag}: parallel(T) response not bit-identical to parallel(1)"
    );
    assert_eq!(
        par.assignments, serial.assignments,
        "{tag}: parallel and serial disagree on the best plan"
    );
    assert_eq!(
        par.cost.to_bits(),
        serial.cost.to_bits(),
        "{tag}: parallel and serial disagree on cost bits"
    );

    let serial_t = bench(warmup, iters, || {
        let resp = opt.optimize(&serial_req).expect("serial optimize");
        std::hint::black_box(resp.cost);
    });
    let parallel_t = bench(warmup, iters, || {
        let resp = opt.optimize(&par_req).expect("parallel optimize");
        std::hint::black_box(resp.cost);
    });

    Entry {
        ops,
        platforms,
        workers,
        serial_ms: serial_t.median_ms(),
        serial_p95_ms: serial_t.p95_ms(),
        serial_per_s: serial_t.per_second(1),
        parallel_ms: parallel_t.median_ms(),
        parallel_p95_ms: parallel_t.p95_ms(),
        parallel_per_s: parallel_t.per_second(1),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (op_sweep, k_sweep, worker_sweep, warmup, iters): (
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
    ) = if quick {
        (vec![32], vec![2], vec![2], 1, 3)
    } else {
        (
            vec![32, 64, 96, 128],
            vec![2, 4, 8],
            WORKER_SWEEP.to_vec(),
            2,
            9,
        )
    };

    let mut entries = Vec::new();
    for &ops in &op_sweep {
        for &k in &k_sweep {
            for &workers in &worker_sweep {
                entries.push(measure(ops, k, workers, warmup, iters));
            }
        }
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 3: split-based parallel enumeration scaling ({SPLIT_PARTS} parts, {hw_threads} hw threads)"
    );
    let _ = writeln!(
        report,
        "{:>5} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "ops", "platforms", "workers", "serial ms", "ser p95", "parallel ms", "par p95", "speedup"
    );
    for e in &entries {
        let _ = writeln!(
            report,
            "{:>5} {:>10} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.2}x",
            e.ops,
            e.platforms,
            e.workers,
            e.serial_ms,
            e.serial_p95_ms,
            e.parallel_ms,
            e.parallel_p95_ms,
            e.speedup()
        );
    }

    // Hardware-gated speedup acceptance. Correctness was already asserted
    // per entry inside `measure`.
    let mut failed = false;
    let mut check = |line: String, ok: bool| {
        let _ = writeln!(report, "CHECK {line}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    };
    check(
        "parallel bit-identical to single-worker and serial (all entries)".to_string(),
        true, // asserted in measure(); reaching this line means it held
    );
    if quick {
        let e = &entries[0];
        let (bound, label) = if hw_threads >= 2 {
            (1.0, "speedup >= 1.0 (hw >= 2)")
        } else {
            (
                0.5,
                "speedup >= 0.5 overhead guard (single-core host, 32-op plan)",
            )
        };
        check(
            format!("{label}: {:.2}x at {} ops", e.speedup(), e.ops),
            e.speedup() >= bound,
        );
    } else {
        // Best speedup across 100+ operator configurations. With real
        // parallel hardware the claim is about 4 worker threads
        // specifically; on a single core the hardware clamp (see
        // `core::parallel`) collapses every worker count to the same
        // 1-worker configuration, so those entries are replicates of one
        // configuration and the guard pools them — judging the guard on
        // the `workers == 4` replicate alone would make a pure
        // measurement-noise coin flip out of identical work.
        let best_at = |want_workers: Option<usize>| {
            entries
                .iter()
                .filter(|e| {
                    e.ops >= 100
                        && match want_workers {
                            Some(t) => e.workers == t,
                            None => true,
                        }
                })
                .map(Entry::speedup)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let (bound, label, best_at_scale) = if hw_threads >= 4 {
            (
                2.0,
                "speedup >= 2x at 100+ ops, 4 workers (hw >= 4)",
                best_at(Some(4)),
            )
        } else if hw_threads >= 2 {
            (
                1.2,
                "speedup >= 1.2x at 100+ ops, 4 workers (hw 2-3)",
                best_at(Some(4)),
            )
        } else {
            (
                0.65,
                "speedup >= 0.65 overhead guard (single-core host, clamped replicates pooled)",
                best_at(None),
            )
        };
        check(
            format!("{label}: best {best_at_scale:.2}x"),
            best_at_scale >= bound,
        );
    }
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig03_parallel_scaling.txt"),
        &report,
    )
    .expect("write fig03 report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig03_parallel_scaling\",\n");
    let _ = writeln!(json, "  \"split_parts\": {SPLIT_PARTS},");
    let _ = writeln!(json, "  \"hw_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"ops\": {}, \"platforms\": {}, \"workers\": {}, \
             \"serial_ms\": {:.6}, \"serial_p95_ms\": {:.6}, \"serial_per_s\": {:.3}, \
             \"parallel_ms\": {:.6}, \"parallel_p95_ms\": {:.6}, \"parallel_per_s\": {:.3}, \
             \"speedup\": {:.3}}}",
            e.ops,
            e.platforms,
            e.workers,
            e.serial_ms,
            e.serial_p95_ms,
            e.serial_per_s,
            e.parallel_ms,
            e.parallel_p95_ms,
            e.parallel_per_s,
            e.speedup()
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_parallel_enum.json"), json).expect("write BENCH_parallel_enum.json");

    if failed {
        eprintln!("fig03 acceptance checks FAILED");
        std::process::exit(1);
    }
}
