//! Fig 1: improvement factor of vector-based over traditional
//! (object-graph) enumeration with an ML-style cost model, 2 platforms.
//!
//! Both enumerators run the same algorithm (Def-3 priority, Def-2 lossless
//! pruning) against the same analytic [`robopt_core::CostOracle`]; only the
//! subplan representation differs, so the measured gap isolates the
//! vectorization benefit. The vector side goes through the
//! [`robopt::Optimizer`] facade (cache disabled, one split part — the
//! serial path); the object-graph foil predates the request API and takes
//! its raw options from [`robopt::Optimizer::enum_options`], the sanctioned
//! escape hatch. Writes `EXPERIMENTS_OUTPUT/fig01_vector_benefit.txt`
//! and `BENCH_enumeration.json` at the repository root.

use std::fmt::Write as _;
use std::fs;

use robopt::{ExecutionPolicy, OptimizeRequest, Optimizer, WorkloadSpec};
use robopt_baselines::ObjectEnumerator;
use robopt_bench::{bench, repo_root};
use robopt_platforms::PlatformRegistry;

const PLATFORMS: usize = 2;
const WARMUP: usize = 20;
const ITERS: usize = 101;

struct Row {
    task: &'static str,
    ops: usize,
    vector_ms: f64,
    vector_p95_ms: f64,
    vector_per_s: f64,
    object_ms: f64,
    object_p95_ms: f64,
    object_per_s: f64,
}

impl Row {
    fn improvement(&self) -> f64 {
        self.object_ms / self.vector_ms
    }
}

fn measure(task: &'static str, spec: WorkloadSpec) -> Row {
    let mut opt = Optimizer::new(PlatformRegistry::uniform(PLATFORMS));
    // Timing a memoized replay would measure the cache, not enumeration.
    opt.set_cache_enabled(false);
    let req = OptimizeRequest::new(spec).with_policy(
        ExecutionPolicy::default()
            .with_workers(1)
            .with_split_parts(1),
    );

    let cold = opt.optimize(&req).expect("vector optimize");
    let (vector_cost, ops) = (cold.cost, cold.assignments.len());
    let vector_t = bench(WARMUP, ITERS, || {
        let resp = opt.optimize(&req).expect("vector optimize");
        std::hint::black_box(resp.cost);
    });

    let plan = spec.build().expect("workload spec builds");
    let mut object_enum = ObjectEnumerator::new();
    let object_cost = object_enum
        .enumerate(&plan, opt.layout(), opt.enum_options())
        .cost;
    let object_t = bench(WARMUP, ITERS, || {
        let exec = object_enum.enumerate(&plan, opt.layout(), opt.enum_options());
        std::hint::black_box(exec.cost);
    });

    let tol = 1e-9 * vector_cost.abs().max(1.0);
    assert!(
        (vector_cost - object_cost).abs() <= tol,
        "{task}: enumerators disagree (vector {vector_cost} vs object {object_cost}) — \
         the comparison would not isolate representation"
    );

    Row {
        task,
        ops,
        vector_ms: vector_t.median_ms(),
        vector_p95_ms: vector_t.p95_ms(),
        vector_per_s: vector_t.per_second(1),
        object_ms: object_t.median_ms(),
        object_p95_ms: object_t.p95_ms(),
        object_per_s: object_t.per_second(1),
    }
}

fn main() {
    let rows = vec![
        measure("WordCount (6 op.)", WorkloadSpec::WordCount { scale: 1e5 }),
        measure("TPC-H Q3 (17 op.)", WorkloadSpec::TpchQ3 { scale: 1e5 }),
        measure(
            "Synthetic (25 op.)",
            WorkloadSpec::Pipeline {
                ops: 25,
                scale: 1e5,
            },
        ),
        measure(
            "Synthetic (40 op.)",
            WorkloadSpec::Pipeline {
                ops: 40,
                scale: 1e5,
            },
        ),
    ];

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 1: vector-based vs traditional (object-based) ML enumeration, {PLATFORMS} platforms"
    );
    let _ = writeln!(
        report,
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "task", "vector ms", "vec p95", "object ms", "obj p95", "improvement"
    );
    for r in &rows {
        let _ = writeln!(
            report,
            "{:<22} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>11.1}x",
            r.task,
            r.vector_ms,
            r.vector_p95_ms,
            r.object_ms,
            r.object_p95_ms,
            r.improvement()
        );
    }

    let at_scale: Vec<&Row> = rows.iter().filter(|r| r.ops >= 17).collect();
    let min_factor_at_scale = at_scale
        .iter()
        .map(|r| r.improvement())
        .fold(f64::INFINITY, f64::min);
    let grows = rows.last().unwrap().improvement() > rows.first().unwrap().improvement();
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "CHECK vector >= 2x at >= 17 operators: {} (min factor {:.2}x)",
        if min_factor_at_scale >= 2.0 {
            "PASS"
        } else {
            "FAIL"
        },
        min_factor_at_scale
    );
    let _ = writeln!(
        report,
        "CHECK improvement grows with operator count ({:.1}x @ 6 op -> {:.1}x @ 40 op): {}",
        rows.first().unwrap().improvement(),
        rows.last().unwrap().improvement(),
        if grows { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "paper shape: improvement factor grows with operator count (~2x -> ~8x)"
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(
        root.join("EXPERIMENTS_OUTPUT/fig01_vector_benefit.txt"),
        &report,
    )
    .expect("write fig01 report");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig01_vector_benefit\",\n");
    let _ = writeln!(json, "  \"platforms\": {PLATFORMS},");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"task\": \"{}\", \"ops\": {}, \"vector_ms\": {:.6}, \"vector_p95_ms\": {:.6}, \
             \"vector_per_s\": {:.3}, \"object_ms\": {:.6}, \"object_p95_ms\": {:.6}, \
             \"object_per_s\": {:.3}, \"improvement\": {:.3}}}",
            r.task,
            r.ops,
            r.vector_ms,
            r.vector_p95_ms,
            r.vector_per_s,
            r.object_ms,
            r.object_p95_ms,
            r.object_per_s,
            r.improvement()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::write(root.join("BENCH_enumeration.json"), json).expect("write BENCH_enumeration.json");

    if min_factor_at_scale < 2.0 || !grows {
        eprintln!("fig01 acceptance checks FAILED");
        std::process::exit(1);
    }
}
