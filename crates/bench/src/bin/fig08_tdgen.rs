//! Fig 8: TDGEN — scalable training-data generation.
//!
//! Four measurements back the paper's §V claims:
//!
//! 1. **Interpolation fidelity** — on noiseless curves, labels synthesized
//!    by the piecewise degree-5 log-log fit at held-out scales are compared
//!    against direct simulation: pooled Spearman must stay ≥ 0.95 (ranking
//!    is what enumeration consumes) and the q-error distribution is
//!    reported.
//! 2. **Throughput and simulator-call reduction** — rows/second for TDGEN
//!    vs the direct-labelling `SimulatorSource` on the same row budget;
//!    TDGEN must spend ≥ 5× fewer simulator invocations per row.
//! 3. **Downstream model quality** — a random forest trained on a TDGEN
//!    `TrainingSet` vs one trained on the same number of directly-labelled
//!    rows, both evaluated on a held-out directly-labelled set.
//! 4. **End-to-end optimum** — the TDGEN-trained forest behind
//!    `&dyn CostOracle` drives the vectorized enumerator on WordCount(1e7);
//!    its pick must simulate as fast as the brute-force true optimum over
//!    all feasible platform assignments.
//!
//! Writes `EXPERIMENTS_OUTPUT/fig08_tdgen.txt` and `BENCH_tdgen.json` at
//! the repository root. `--quick` shrinks row counts for the CI smoke run.

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use robopt::{OptimizeRequest, Optimizer, SimulateRequest, WorkloadSpec};
use robopt_bench::repo_root;
use robopt_ml::{
    spearman, ForestConfig, Metrics, Model, RandomForest, SamplerConfig, SimulatorSource,
    TrainingSet, TrainingSource,
};
use robopt_plan::rng::SplitMix64;
use robopt_plan::{workloads, N_OPERATOR_KINDS};
use robopt_platforms::{PlatformRegistry, RuntimeSimulator};
use robopt_tdgen::{
    log_knots, sample_assignment, sample_skeleton, PiecewisePoly, ShapeKind, TdgenConfig,
    TdgenGenerator,
};
use robopt_vector::FeatureLayout;

const TDGEN_SEED: u64 = 0x0008_7d9e;
const DIRECT_SEED: u64 = 0x0008_7d9f;
const HELDOUT_SEED: u64 = 0x0008_7da0;
const SIM_SEED: u64 = 42;

/// Section 1: fidelity of interpolated labels at held-out scales.
struct Fidelity {
    curves: usize,
    probes: usize,
    spearman: f64,
    q_mean: f64,
    q_max: f64,
}

fn measure_fidelity(
    registry: &PlatformRegistry,
    cfg: &TdgenConfig,
    curves: usize,
    probes_per_curve: usize,
) -> Fidelity {
    let mut rng = SplitMix64::new(cfg.seed() ^ 0xf1de);
    // Noiseless simulator: fidelity must be judged against clean curves.
    let sim = RuntimeSimulator::new(registry, SIM_SEED).with_noise(0.0);
    let (lo, hi) = cfg.scale_range();
    let knot_scales = log_knots(lo, hi, cfg.knots());
    let (lln, hln) = (lo.ln(), hi.ln());
    let mut interp = Vec::new();
    let mut truth = Vec::new();
    let mut done = 0;
    while done < curves {
        let shape = cfg.shape_mix()[rng.gen_range(cfg.shape_mix().len())];
        let (min_ops, max_ops) = cfg.ops_range();
        let n_ops = min_ops + rng.gen_range(max_ops - min_ops + 1);
        let skel = sample_skeleton(&mut rng, registry, shape, n_ops);
        let Some(assign) = sample_assignment(&skel, registry, cfg.beta(), &mut rng, 64) else {
            continue;
        };
        let mut ln_xs = Vec::with_capacity(knot_scales.len());
        let mut ys = Vec::with_capacity(knot_scales.len());
        let mut finite = true;
        for &scale in &knot_scales {
            let seconds = sim.simulate_raw(&skel.instantiate(scale), &assign);
            if !seconds.is_finite() {
                finite = false;
                break;
            }
            ln_xs.push(scale.ln());
            ys.push(seconds.ln_1p());
        }
        if !finite {
            continue;
        }
        let poly = PiecewisePoly::fit(&ln_xs, &ys);
        for _ in 0..probes_per_curve {
            let ln_s = lln + (hln - lln) * rng.next_f64();
            let predicted = TrainingSet::label_to_seconds(poly.eval(ln_s));
            let actual = sim.simulate_raw(&skel.instantiate(ln_s.exp()), &assign);
            interp.push(predicted);
            truth.push(actual);
        }
        done += 1;
    }
    let mut q_sum = 0.0;
    let mut q_max = 0.0_f64;
    for (&p, &a) in interp.iter().zip(&truth) {
        let q = robopt_ml::q_error(p, a);
        q_sum += q;
        q_max = q_max.max(q);
    }
    Fidelity {
        curves,
        probes: interp.len(),
        spearman: spearman(&interp, &truth),
        q_mean: q_sum / interp.len() as f64,
        q_max,
    }
}

fn heldout_metrics(model: &dyn Model, heldout: &TrainingSet) -> Metrics {
    let mut preds = Vec::new();
    model.predict_batch(heldout.rows_view(), &mut preds);
    Metrics::evaluate(&preds, &heldout.labels)
}

/// Brute-force true optimum of `plan`: minimum simulated runtime over all
/// feasible platform assignments.
fn true_optimum(
    plan: &robopt_plan::LogicalPlan,
    registry: &PlatformRegistry,
    sim: &RuntimeSimulator<'_>,
) -> f64 {
    let k = registry.len();
    let n = plan.n_ops();
    let mut assign = vec![0u8; n];
    let mut best = f64::INFINITY;
    let combos = (k as u64).pow(n as u32);
    for mut code in 0..combos {
        for slot in assign.iter_mut() {
            *slot = (code % k as u64) as u8;
            code /= k as u64;
        }
        let s = sim.simulate_raw(plan, &assign);
        if s < best {
            best = s;
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // TDGEN's training set is 3x the direct one on purpose: with the
    // default ~5.8x reduction it still spends roughly *half* the
    // simulator calls — the paper's pitch is more data per execution.
    let (tdgen_n, direct_n, heldout_n, n_trees, fid_curves, fid_probes) = if quick {
        (3000, 1000, 150, 16, 8, 12)
    } else {
        (18000, 6000, 500, 32, 24, 25)
    };

    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    let cfg = TdgenConfig::new().with_seed(TDGEN_SEED);

    // ---- 1. Interpolation fidelity --------------------------------------
    let fid = measure_fidelity(
        &registry,
        &cfg.clone().with_noise(0.0),
        fid_curves,
        fid_probes,
    );

    // ---- 2. Throughput + reduction --------------------------------------
    let mut tdgen = TdgenGenerator::new(&registry, layout, cfg.clone());
    let t0 = Instant::now();
    let tdgen_train = tdgen.generate(tdgen_n);
    let tdgen_secs = t0.elapsed().as_secs_f64();
    let stats = tdgen.stats();
    let reduction = stats.reduction();
    let tdgen_rows_per_s = tdgen_n as f64 / tdgen_secs;

    let mut direct = SimulatorSource::new(
        &registry,
        layout,
        SamplerConfig::new().with_seed(DIRECT_SEED).with_noise(0.05),
    );
    let t1 = Instant::now();
    let direct_train = direct.generate(direct_n);
    let direct_secs = t1.elapsed().as_secs_f64();
    let direct_rows_per_s = direct_n as f64 / direct_secs;

    // ---- 3. Forest on TDGEN vs forest on direct labels ------------------
    let heldout = SimulatorSource::new(
        &registry,
        layout,
        SamplerConfig::new().with_seed(HELDOUT_SEED).with_noise(0.0),
    )
    .generate(heldout_n);
    let forest_cfg = ForestConfig {
        n_trees,
        ..ForestConfig::default()
    };
    let tdgen_forest = RandomForest::fit_on(&forest_cfg, &tdgen_train);
    let direct_forest = RandomForest::fit_on(&forest_cfg, &direct_train);
    let tdgen_m = heldout_metrics(&tdgen_forest, &heldout);
    let direct_m = heldout_metrics(&direct_forest, &heldout);

    // ---- 4. End-to-end: TDGEN-trained forest vs the true optimum --------
    // The forest drives enumeration through the service facade (the same
    // `&dyn CostOracle` plumbing, now owned by the `Optimizer`).
    let wc = WorkloadSpec::WordCount { scale: 1e7 };
    let mut opt = Optimizer::named();
    opt.install_forest(tdgen_forest)
        .expect("TDGEN forest width matches the named-registry layout");
    let picked = opt
        .optimize(&OptimizeRequest::new(wc))
        .expect("optimize under the TDGEN forest");
    let picked_s = opt
        .simulate(&SimulateRequest {
            workload: wc,
            assignments: picked.assignments.clone(),
            seed: SIM_SEED,
            noise: 0.0,
        })
        .expect("simulate the forest-picked plan")
        .seconds;
    let plan = workloads::wordcount(1e7);
    let sim = RuntimeSimulator::new(&registry, SIM_SEED);
    let optimum_s = true_optimum(&plan, &registry, &sim);

    let fidelity_ok = fid.spearman >= 0.95;
    let reduction_ok = reduction >= 5.0;
    let e2e_ok = picked_s <= optimum_s * (1.0 + 1e-9);

    // ---- Report ---------------------------------------------------------
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig 8: TDGEN training-data generation ({} platforms, beta = {}, {} knots, scales [{:.0e}, {:.0e}]{})",
        registry.len(),
        cfg.beta(),
        cfg.knots(),
        cfg.scale_range().0,
        cfg.scale_range().1,
        if quick { ", --quick" } else { "" }
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "interpolation fidelity ({} curves x {} held-out scales, noiseless):",
        fid.curves,
        fid.probes / fid.curves.max(1)
    );
    let _ = writeln!(
        report,
        "  spearman(interpolated, simulated) = {:.4}   q-error mean = {:.3}  max = {:.3}",
        fid.spearman, fid.q_mean, fid.q_max
    );
    let _ = writeln!(report);
    let _ = writeln!(report, "label generation:");
    let _ = writeln!(
        report,
        "  {:<22} {:>8} {:>12} {:>14} {:>16}",
        "source", "rows", "rows/sec", "sim calls", "rows per call"
    );
    let _ = writeln!(
        report,
        "  {:<22} {:>8} {:>12.0} {:>14} {:>16.2}",
        "tdgen (interpolated)", tdgen_n, tdgen_rows_per_s, stats.sim_calls, reduction
    );
    let _ = writeln!(
        report,
        "  {:<22} {:>8} {:>12.0} {:>14} {:>16.2}",
        "direct (simulator)", direct_n, direct_rows_per_s, direct_n, 1.0
    );
    let _ = writeln!(
        report,
        "  ({} skeletons, {} curves; buffered rows kept across calls)",
        stats.skeletons, stats.curves
    );
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "forest ({n_trees} trees) on {heldout_n} held-out directly-labelled rows \
         (tdgen: {tdgen_n} rows / {} sim calls; direct: {direct_n} rows / {direct_n} calls):",
        stats.sim_calls
    );
    let _ = writeln!(
        report,
        "  {:<22} {:>10} {:>10} {:>10} {:>10}",
        "training source", "MSE", "spearman", "q(log)", "R^2"
    );
    for (name, m) in [("tdgen", &tdgen_m), ("direct", &direct_m)] {
        let _ = writeln!(
            report,
            "  {:<22} {:>10.4} {:>10.4} {:>10.3} {:>10.4}",
            name, m.mse, m.spearman, m.q_mean, m.r2
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "end-to-end WordCount(1e7): tdgen-forest pick {picked_s:.2}s vs brute-force optimum {optimum_s:.2}s"
    );
    let _ = writeln!(
        report,
        "CHECK interpolated-label spearman >= 0.95: {}",
        if fidelity_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "CHECK simulator-call reduction >= 5x: {}",
        if reduction_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "CHECK tdgen-forest picks the true optimum: {}",
        if e2e_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        report,
        "paper shape: interpolation preserves the runtime ranking while cutting \
         label-collection cost; models trained on synthesized rows stay competitive"
    );
    print!("{report}");

    let root = repo_root();
    fs::create_dir_all(root.join("EXPERIMENTS_OUTPUT")).expect("create EXPERIMENTS_OUTPUT");
    fs::write(root.join("EXPERIMENTS_OUTPUT/fig08_tdgen.txt"), &report).expect("write fig08");

    // Hand-rendered JSON (offline environment: no serde_json).
    let mut json = String::from("{\n  \"experiment\": \"fig08_tdgen\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"beta\": {},", cfg.beta());
    let _ = writeln!(json, "  \"knots\": {},", cfg.knots());
    let _ = writeln!(json, "  \"tdgen_rows\": {tdgen_n},");
    let _ = writeln!(json, "  \"direct_rows\": {direct_n},");
    let _ = writeln!(json, "  \"sim_calls\": {},", stats.sim_calls);
    let _ = writeln!(json, "  \"reduction\": {reduction:.4},");
    let _ = writeln!(json, "  \"tdgen_rows_per_s\": {tdgen_rows_per_s:.1},");
    let _ = writeln!(json, "  \"direct_rows_per_s\": {direct_rows_per_s:.1},");
    let _ = writeln!(
        json,
        "  \"fidelity\": {{\"spearman\": {:.6}, \"q_mean\": {:.4}, \"q_max\": {:.4}, \"probes\": {}}},",
        fid.spearman, fid.q_mean, fid.q_max, fid.probes
    );
    let _ = writeln!(
        json,
        "  \"forest_heldout\": {{\"tdgen_mse\": {:.6}, \"tdgen_spearman\": {:.4}, \"direct_mse\": {:.6}, \"direct_spearman\": {:.4}}},",
        tdgen_m.mse, tdgen_m.spearman, direct_m.mse, direct_m.spearman
    );
    let _ = writeln!(
        json,
        "  \"end_to_end\": {{\"workload\": \"wordcount_1e7\", \"picked_s\": {picked_s:.4}, \"optimum_s\": {optimum_s:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"shape_mix\": [{}]",
        ShapeKind::ALL
            .iter()
            .map(|s| format!("\"{}\"", s.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("}\n");
    fs::write(root.join("BENCH_tdgen.json"), json).expect("write BENCH_tdgen.json");

    if !fidelity_ok || !reduction_ok || !e2e_ok {
        eprintln!("fig08 acceptance checks FAILED");
        std::process::exit(1);
    }
}
