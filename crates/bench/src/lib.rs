//! `robopt-bench`: experiment binaries (one per paper figure/table) and the
//! wall-clock micro-benchmark harness.
//!
//! The harness is the offline stand-in for `criterion` (no registry in this
//! environment): fixed warm-up, N timed iterations, median/mean reporting.
//! Medians make the Fig-1 improvement factors robust to scheduler noise.

pub mod harness;

pub use harness::{bench, Timing};

use std::path::PathBuf;

/// Repository root, resolved from this crate's manifest directory
/// (`crates/bench` -> repo root), so experiment binaries write artifacts to
/// the right place regardless of the invoking working directory.
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a repository root")
        .to_path_buf()
}
