//! Median-of-N wall-clock timing.

use std::time::Instant;

/// Result of one benchmark: nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    pub median_ns: f64,
    /// 95th-percentile sample (nearest-rank over the sorted samples) — the
    /// tail figure every JSON artifact reports next to the median, so a
    /// bimodal run cannot hide behind a healthy-looking median.
    pub p95_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub iters: usize,
}

impl Timing {
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }

    pub fn p95_ms(&self) -> f64 {
        self.p95_ns / 1e6
    }

    /// Median throughput in items per second, for an iteration that
    /// processes `items_per_iter` items — the `<prefix>_per_s` figure every
    /// JSON artifact reports next to `<prefix>_ms` / `<prefix>_p95_ms`, so
    /// throughput benchmarks (the service daemon) and latency benchmarks
    /// (the enumeration kernels) share one schema.
    pub fn per_second(&self, items_per_iter: usize) -> f64 {
        if self.median_ns <= 0.0 {
            return f64::INFINITY;
        }
        items_per_iter as f64 / (self.median_ns / 1e9)
    }
}

/// Run `f` for `warmup` untimed iterations, then `iters` timed ones.
pub fn bench<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> Timing {
    assert!(iters > 0);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median_ns = if iters % 2 == 1 {
        samples[iters / 2]
    } else {
        0.5 * (samples[iters / 2 - 1] + samples[iters / 2])
    };
    // Nearest-rank p95: ceil(0.95 * iters) clamped into the sample range.
    let p95_idx = ((iters as f64 * 0.95).ceil() as usize).clamp(1, iters) - 1;
    let mean_ns = samples.iter().sum::<f64>() / iters as f64;
    Timing {
        median_ns,
        p95_ns: samples[p95_idx],
        mean_ns,
        min_ns: samples[0],
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_fields_are_consistent() {
        let mut x = 0u64;
        let t = bench(2, 11, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(x);
        });
        assert_eq!(t.iters, 11);
        assert!(t.min_ns <= t.median_ns);
        assert!(t.median_ns <= t.p95_ns);
        assert!(t.median_ns >= 0.0 && t.mean_ns >= 0.0);
        assert_eq!(t.p95_ms(), t.p95_ns / 1e6);
        if t.median_ns > 0.0 {
            let per_s = t.per_second(10);
            assert!((per_s - 10.0 / (t.median_ns / 1e9)).abs() < 1e-9);
        }
    }

    #[test]
    fn p95_is_nearest_rank_over_sorted_samples() {
        // With a single iteration every percentile is that sample.
        let t = bench(0, 1, || {
            std::hint::black_box(0u64);
        });
        assert_eq!(t.p95_ns.to_bits(), t.min_ns.to_bits());
        assert_eq!(t.p95_ns.to_bits(), t.median_ns.to_bits());
    }
}
