//! Bench `enumeration`: the Fig-1 hot paths under the in-tree harness
//! (criterion stand-in; this environment has no registry access).
//!
//! Run with `cargo bench -p robopt-bench --bench enumeration`.

use robopt::Optimizer;
use robopt_baselines::ObjectEnumerator;
use robopt_bench::bench;
use robopt_core::Enumerator;
use robopt_plan::workloads;
use robopt_platforms::PlatformRegistry;
use robopt_vector::merge::merge_feats;

fn report(name: &str, t: robopt_bench::Timing) {
    println!(
        "enumeration/{name:<28} median {:>12.1} ns  mean {:>12.1} ns",
        t.median_ns, t.mean_ns
    );
}

fn main() {
    // cargo passes flags like `--bench`; the harness has no options to parse.
    // The facade owns registry + oracle; its raw options feed the two
    // enumerators directly (this bench times kernels, not the service).
    let facade = Optimizer::new(PlatformRegistry::uniform(2));
    let layout = *facade.layout();
    let opts = facade.enum_options();

    // Raw merge kernel: one fused add over a row pair.
    let a = vec![1.5f64; layout.width];
    let b = vec![2.5f64; layout.width];
    let mut dst = vec![0.0f64; layout.width];
    report(
        "merge_kernel",
        bench(1000, 100_001, || {
            merge_feats(&mut dst, &a, &b);
            std::hint::black_box(dst[0]);
        }),
    );

    for (name, n) in [
        ("vector/17_ops", 17usize),
        ("vector/40_ops", 40),
        ("vector/80_ops", 80),
    ] {
        let plan = if n == 17 {
            workloads::tpch_q3(1e5)
        } else {
            workloads::synthetic_pipeline(n, 1e5)
        };
        let mut e = Enumerator::new();
        report(
            name,
            bench(20, 201, || {
                let (exec, _) = e.enumerate(&plan, &layout, opts);
                std::hint::black_box(exec.cost);
            }),
        );
    }

    for (name, n) in [("object/17_ops", 17usize), ("object/40_ops", 40)] {
        let plan = if n == 17 {
            workloads::tpch_q3(1e5)
        } else {
            workloads::synthetic_pipeline(n, 1e5)
        };
        let mut e = ObjectEnumerator::new();
        report(
            name,
            bench(10, 101, || {
                let exec = e.enumerate(&plan, &layout, opts);
                std::hint::black_box(exec.cost);
            }),
        );
    }
}
