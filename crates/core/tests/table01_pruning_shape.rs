//! Table-I shape: with Def-2 boundary pruning, the number of enumerated
//! subplans on pipeline plans grows ~n·k², while the unpruned search space
//! grows k^n — for (n, k) in {5, 20} × {2..5}.
//!
//! On a pipeline, any contiguous segment has at most two boundary
//! operators, so pruning keeps at most k² rows per unit; summing over the
//! n·k singletons and n−1 merge results bounds the retained subplans by
//! n·k + (n−1)·k².

use robopt_baselines::exhaustive_count;
use robopt_core::{AnalyticOracle, EnumOptions, Enumerator};
use robopt_plan::{workloads, N_OPERATOR_KINDS};
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

#[test]
fn pruned_counts_grow_n_k_squared_exhaustive_grows_k_to_n() {
    let mut enumerator = Enumerator::new();
    for n in [5usize, 20] {
        for k in 2usize..=5 {
            let plan = workloads::synthetic_pipeline(n, 1e5);
            let registry = PlatformRegistry::uniform(k);
            let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
            let oracle = AnalyticOracle::for_registry(&registry, &layout);
            let opts = EnumOptions::new(&registry).with_oracle(&oracle);
            let (_, stats) = enumerator.enumerate(&plan, &layout, opts);
            let bound = (n * k + (n - 1) * k * k) as u64;
            assert!(
                stats.kept <= bound,
                "(n={n}, k={k}): kept {} exceeds n*k + (n-1)*k^2 = {bound}",
                stats.kept
            );
            // Non-trivial: at least the singletons plus one row per merge.
            assert!(stats.kept >= (n * k + n - 1) as u64);
            // No single unit ever exceeds k^2 rows on a pipeline.
            assert!(
                stats.peak_rows <= (k * k) as u64,
                "(n={n}, k={k}): peak {}",
                stats.peak_rows
            );

            let space = exhaustive_count(n, k);
            assert_eq!(space, (k as u128).pow(n as u32));
            // The pruned count is polynomial while the space is exponential:
            // already at n=20, k=2 the gap is  > 1000x and explodes with k.
            if n == 20 {
                assert!(
                    (stats.kept as u128) * 1000 < space,
                    "(n={n}, k={k}): pruning did not tame the k^n space"
                );
            }
        }
    }
}
