//! Property (b), DESIGN §4 (Lemma 1): boundary pruning is lossless —
//! priority enumeration with Def-2 pruning returns the same optimal cost as
//! exhaustive enumeration under the analytic oracle, on random DAGs.
//!
//! Also cross-checks the object-graph baseline: all three enumerators must
//! land on the same optimum, or the Fig-1 comparison would not be
//! apples-to-apples.

use robopt_baselines::{exhaustive_best, ObjectEnumerator};
use robopt_core::{AnalyticOracle, EnumOptions, Enumerator};
use robopt_plan::{workloads, SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

#[test]
fn pruned_priority_enumeration_matches_exhaustive_optimum() {
    let mut rng = SplitMix64::new(0x10551E55);
    let mut vector_enum = Enumerator::new();
    let mut object_enum = ObjectEnumerator::new();
    for case in 0..48 {
        let n = 3 + rng.gen_range(5); // 3..=7 operators
        let k = 2 + rng.gen_range(2); // 2..=3 platforms -> k^n <= 2187
        let plan = workloads::random_connected_dag(&mut rng, n, 0.4);
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);

        let brute = exhaustive_best(&plan, &layout, opts);
        let (pruned, stats) = vector_enum.enumerate(&plan, &layout, opts);
        let object = object_enum.enumerate(&plan, &layout, opts);

        let tol = 1e-9 * brute.cost.abs().max(1.0);
        assert!(
            (pruned.cost - brute.cost).abs() <= tol,
            "case {case} (n={n}, k={k}): pruned {} != exhaustive {}",
            pruned.cost,
            brute.cost
        );
        assert!(
            (object.cost - brute.cost).abs() <= tol,
            "case {case} (n={n}, k={k}): object {} != exhaustive {}",
            object.cost,
            brute.cost
        );
        assert_eq!(stats.merges as usize, n - 1, "case {case}: merge count");
        // The pruned assignment must cost exactly what the enumerator claims.
        let mut feats = Vec::new();
        robopt_core::vectorize::vectorize_assignment(
            &plan,
            &layout,
            &pruned.raw_assignments(),
            &mut feats,
        );
        let recost = robopt_core::CostOracle::cost_row(&oracle, &feats);
        assert!(
            (recost - pruned.cost).abs() <= tol,
            "case {case}: unvectorize cost drift"
        );
    }
}
