//! Splitter cut-quality invariants (DESIGN §9) over the five TDGEN shape
//! families: whatever skeleton `tdgen` samples — pipeline, fan-in, fan-out,
//! diamond, iterative — `split_plan` must return a partition that is
//! exactly that (non-empty, disjoint, covering), classify every edge into
//! exactly one bucket, respect the seam-width cap, and never cut through a
//! `RepeatLoop` protected region.

use robopt_core::{loop_regions, split_plan, SplitOptions};
use robopt_plan::SplitMix64;
use robopt_platforms::PlatformRegistry;
use robopt_tdgen::{sample_skeleton, ShapeKind};
use robopt_vector::Scope;

#[test]
fn split_invariants_hold_on_every_tdgen_shape_family() {
    let registry = PlatformRegistry::uniform(3);
    let mut rng = SplitMix64::new(0x5EED_5117);
    for shape in ShapeKind::ALL {
        for round in 0..12 {
            let n_ops = shape.min_ops() + rng.gen_range(28);
            let plan = sample_skeleton(&mut rng, &registry, shape, n_ops).instantiate(1e5);
            let n = plan.n_ops();
            let opts = SplitOptions::new(2 + rng.gen_range(7));
            let split = split_plan(&plan, opts);
            let tag = format!("{} round {round} (n={n}, K={})", shape.name(), opts.parts);

            // Partition: parts non-empty, pairwise disjoint, union = plan.
            assert!(!split.is_empty(), "{tag}: no parts");
            assert!(split.len() <= opts.parts, "{tag}: more parts than asked");
            let mut union = Scope::default();
            for (i, part) in split.parts.iter().enumerate() {
                assert!(!part.is_empty(), "{tag}: part {i} empty");
                assert_eq!(union.0 & part.0, 0, "{tag}: part {i} overlaps");
                union = union.union(*part);
            }
            assert_eq!(union, Scope::full(n), "{tag}: parts miss operators");

            // Edge classification: every edge in exactly one bucket, part
            // edges internal, seam edges crossing.
            let classified: usize =
                split.part_edges.iter().map(Vec::len).sum::<usize>() + split.seam_edges.len();
            assert_eq!(classified, plan.edges().len(), "{tag}: edges lost");
            for (p, edges) in split.part_edges.iter().enumerate() {
                for &e in edges {
                    let (u, v) = plan.edges()[e as usize];
                    assert!(
                        split.parts[p].contains(u) && split.parts[p].contains(v),
                        "{tag}: part edge {e} leaves part {p}"
                    );
                }
            }
            for &e in &split.seam_edges {
                let (u, v) = plan.edges()[e as usize];
                let pu = split.parts.iter().position(|s| s.contains(u));
                let pv = split.parts.iter().position(|s| s.contains(v));
                assert_ne!(pu, pv, "{tag}: seam edge {e} does not cross parts");
            }

            // Cut quality: one accepted cut per extra part, each within the
            // seam-width cap.
            assert_eq!(split.cut_sizes.len(), split.len() - 1, "{tag}: cut count");
            for (i, &c) in split.cut_sizes.iter().enumerate() {
                assert!(c >= 1, "{tag}: cut {i} crosses no edge");
                assert!(
                    c <= opts.max_cut_edges,
                    "{tag}: cut {i} width {c} > cap {}",
                    opts.max_cut_edges
                );
            }

            // Protected regions: a RepeatLoop and its downstream body land
            // in one part, never straddling a cut.
            for (r, region) in loop_regions(&plan).iter().enumerate() {
                let holders = split
                    .parts
                    .iter()
                    .filter(|part| part.0 & region.0 != 0)
                    .count();
                assert_eq!(holders, 1, "{tag}: loop region {r} cut apart");
            }

            // Determinism: same plan + options, same split.
            let again = split_plan(&plan, opts);
            assert_eq!(again.parts, split.parts, "{tag}: nondeterministic parts");
            assert_eq!(again.seam_edges, split.seam_edges, "{tag}: seams");
            assert_eq!(again.cut_sizes, split.cut_sizes, "{tag}: cut sizes");
        }
    }
}
