//! Parallel enumeration contract (DESIGN §9): split-based parallel
//! enumeration is bit-identical across thread counts, agrees with serial
//! enumeration on the chosen assignment and canonical cost bits, and both
//! match the exhaustive optimum on plans small enough to brute-force.

use robopt_baselines::exhaustive_best;
use robopt_core::{AnalyticOracle, EnumOptions, Enumerator, ParallelEnumerator, SplitOptions};
use robopt_plan::{workloads, SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

#[test]
fn parallel_is_bit_identical_across_thread_counts_on_random_dags() {
    let mut rng = SplitMix64::new(0x9A11_E7E1);
    let mut serial = Enumerator::new();
    for case in 0..24 {
        let n = 6 + rng.gen_range(22); // 6..=27 operators
        let k = 2 + rng.gen_range(3); // 2..=4 platforms
        let parts = 2 + rng.gen_range(5); // K in 2..=6
        let plan = workloads::random_connected_dag(&mut rng, n, 0.3);
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let tag = format!("case {case} (n={n}, k={k}, K={parts})");

        // Clamp off: force real scoped threads regardless of host cores.
        let (base, base_stats) = ParallelEnumerator::new(1)
            .with_split(SplitOptions::new(parts))
            .with_hardware_clamp(false)
            .enumerate(&plan, &layout, opts);
        for threads in [2, 3, 8] {
            let (par, stats) = ParallelEnumerator::new(threads)
                .with_split(SplitOptions::new(parts))
                .with_hardware_clamp(false)
                .enumerate(&plan, &layout, opts);
            assert_eq!(par.assignments, base.assignments, "{tag} threads={threads}");
            assert_eq!(
                par.cost.to_bits(),
                base.cost.to_bits(),
                "{tag} threads={threads}: cost bits"
            );
            assert_eq!(stats, base_stats, "{tag} threads={threads}: stats");
        }

        // Serial agreement: same winner, same canonical cost bits. The
        // merge trees differ, so EnumStats legitimately may not.
        let (ser, _) = serial.enumerate(&plan, &layout, opts);
        assert_eq!(base.assignments, ser.assignments, "{tag}: vs serial");
        assert_eq!(
            base.cost.to_bits(),
            ser.cost.to_bits(),
            "{tag}: cost bits vs serial"
        );
    }
}

#[test]
fn parallel_matches_exhaustive_optimum_on_small_plans() {
    let mut rng = SplitMix64::new(0xBAA5_E11E);
    let mut par = ParallelEnumerator::new(2)
        .with_split(SplitOptions::new(3))
        .with_hardware_clamp(false);
    for case in 0..24 {
        let n = 4 + rng.gen_range(4); // 4..=7 operators
        let k = 2 + rng.gen_range(2); // 2..=3 platforms -> k^n <= 2187
        let plan = workloads::random_connected_dag(&mut rng, n, 0.4);
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);

        let brute = exhaustive_best(&plan, &layout, opts);
        let (best, stats) = par.enumerate(&plan, &layout, opts);
        let tol = 1e-9 * brute.cost.abs().max(1.0);
        assert!(
            (best.cost - brute.cost).abs() <= tol,
            "case {case} (n={n}, k={k}): parallel {} != exhaustive {}",
            best.cost,
            brute.cost
        );
        assert_eq!(stats.merges as usize, n - 1, "case {case}: merge count");
    }
}
