//! Zero-allocation guarantee of the hot path (DESIGN §5, acceptance
//! criterion): after a warm-up run, `merge`/`prune` perform **no**
//! `EnumMatrix` buffer growth — every candidate subplan is written into
//! pooled, pre-reserved flat buffers.
//!
//! Single test in its own binary: `robopt_vector::alloc_events` is a
//! process-global counter, so it must not race with unrelated tests.

use robopt_core::{AnalyticOracle, EnumOptions, Enumerator, ParallelEnumerator, SplitOptions};
use robopt_plan::{workloads, N_OPERATOR_KINDS};
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

#[test]
fn warmed_enumerator_performs_no_matrix_allocation() {
    let plan = workloads::synthetic_pipeline(40, 1e5);
    let registry = PlatformRegistry::uniform(2);
    let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
    let oracle = AnalyticOracle::for_registry(&registry, &layout);
    let opts = EnumOptions::new(&registry).with_oracle(&oracle);
    let mut enumerator = Enumerator::new();

    // Warm-up: pools and scratch buffers grow to a fixpoint (pool matrices
    // are picked best-fit, so this settles within a few runs).
    let (cold, _) = enumerator.enumerate(&plan, &layout, opts);
    for warmup in 0.. {
        assert!(warmup < 16, "pool capacities failed to stabilize");
        let before = robopt_vector::alloc_events();
        enumerator.enumerate(&plan, &layout, opts);
        if robopt_vector::alloc_events() == before {
            break;
        }
    }

    let before = robopt_vector::alloc_events();
    let mut warm_cost = 0.0;
    for _ in 0..5 {
        let (exec, stats) = enumerator.enumerate(&plan, &layout, opts);
        warm_cost = exec.cost;
        assert!(stats.generated > 0);
    }
    let grown = robopt_vector::alloc_events() - before;
    assert_eq!(
        grown, 0,
        "hot path grew EnumMatrix buffers {grown} times after warm-up — \
         per-subplan allocation has crept back in"
    );
    assert_eq!(cold.cost, warm_cost, "reused buffers changed the optimum");

    // Split-parallel path: each part enumerator and the seam merger own
    // their own pools, so the guarantee extends across threads — after
    // warm-up, a parallel run grows nothing either. Clamp off so worker
    // threads really run even on a single-core host (the counter is a
    // process-global relaxed atomic; any cross-thread growth would show).
    let mut parallel = ParallelEnumerator::new(2)
        .with_split(SplitOptions::new(4))
        .with_hardware_clamp(false);
    let (par_cold, _) = parallel.enumerate(&plan, &layout, opts);
    for warmup in 0.. {
        assert!(warmup < 32, "parallel pool capacities failed to stabilize");
        let before = robopt_vector::alloc_events();
        parallel.enumerate(&plan, &layout, opts);
        if robopt_vector::alloc_events() == before {
            break;
        }
    }
    let before = robopt_vector::alloc_events();
    let mut par_warm = 0.0;
    for _ in 0..5 {
        let (exec, stats) = parallel.enumerate(&plan, &layout, opts);
        par_warm = exec.cost;
        assert!(stats.generated > 0);
    }
    let grown = robopt_vector::alloc_events() - before;
    assert_eq!(
        grown, 0,
        "parallel hot path grew EnumMatrix buffers {grown} times after warm-up"
    );
    assert_eq!(
        par_cold.cost, par_warm,
        "reused parallel buffers changed the optimum"
    );
    assert_eq!(
        par_warm.to_bits(),
        warm_cost.to_bits(),
        "split-parallel and serial disagree on the canonical cost"
    );

    // Sanity: the counter does observe genuine growth.
    let mut m = robopt_vector::EnumMatrix::new();
    m.reset(8, 4);
    let pre = robopt_vector::alloc_events();
    m.reserve_rows(1024);
    assert!(robopt_vector::alloc_events() > pre);
}
