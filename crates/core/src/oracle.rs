//! The pluggable cost model.
//!
//! Both enumerators (vector-based and the object-graph baselines) cost plans
//! through the same [`CostOracle`], so Fig-1 benchmarks isolate the
//! *enumeration representation*, exactly as the paper's comparison against
//! the "Rheem-ML" strawman requires. Costing is **batched**: the enumerators
//! stage every candidate row of a merge step and issue one
//! [`CostOracle::cost_batch`] call, which is the entry point the random
//! forest in `crates/ml` needs (per-row virtual dispatch would lock out
//! batched tree inference).
//!
//! The analytic oracle here is the stub standing in for the random forest:
//! a linear functional over the plan vector with weights derived from a
//! [`PlatformRegistry`] — per-platform cost scales from the platform
//! descriptors and conversion weights aggregated from the COT, instead of
//! the hard-coded per-platform factor table of PR 1.

use robopt_plan::N_OPERATOR_KINDS;
use robopt_platforms::PlatformRegistry;
use robopt_vector::{FeatureLayout, RowsView};

use crate::dist::CostDistribution;

/// A cost model consuming plan-vector rows.
///
/// Object-safe by design: enumerators and baselines take `&dyn CostOracle`,
/// so the analytic model, the learned forest (`robopt_ml::RandomForest`
/// behind `robopt_ml::ModelOracle`) and test doubles are interchangeable
/// without monomorphizing a copy of the enumeration loop per model.
///
/// `Sync` is a supertrait: the parallel enumerator shares one
/// `&dyn CostOracle` across its worker threads (costing is read-only), so
/// every oracle must be safe to call concurrently. All in-tree models
/// already are — they hold only immutable weight tables.
pub trait CostOracle: Sync {
    /// Width of the feature rows this oracle expects — the
    /// [`FeatureLayout::width`] it was built against. Both batch paths
    /// validate incoming rows against it, killing the silent wrong-layout
    /// class (a model trained on a 3-platform layout costing 5-platform
    /// rows) the same way `PlatformId` killed id wraparound.
    fn width(&self) -> usize;

    /// Estimated runtime cost of the (sub)plan encoded by `feats`.
    fn cost_row(&self, feats: &[f64]) -> f64;

    /// Cost every row of `rows` into `out` (cleared first; `out[r]` is the
    /// cost of `rows.row(r)`). The default implementation loops
    /// [`CostOracle::cost_row`]; batch-capable models (the random forest,
    /// the SIMD-friendly linear oracle) override it with one flat pass.
    /// Overrides must keep the width check (`debug_assert_eq!` against
    /// [`CostOracle::width`]).
    fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        out.clear();
        out.reserve(rows.rows());
        for r in 0..rows.rows() {
            out.push(self.cost_row(rows.row(r)));
        }
    }

    /// Cost every row of `rows` into `out` as a *distribution* (DESIGN
    /// §12). The default treats the oracle as a point estimator: the mean
    /// column is exactly [`CostOracle::cost_batch`] and the spread is
    /// degenerate (`std = 0`, quantiles equal to the mean), so every
    /// existing oracle — the analytic model included — is a valid
    /// distributional oracle without writing a line. Ensemble models
    /// override this with one pass that keeps the per-member spread; the
    /// mean column must stay bit-identical to `cost_batch`.
    fn cost_batch_dist(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        self.cost_batch(rows, &mut out.mean);
        out.fill_point_from_mean();
    }
}

/// Per-kind fixed-cost scale (startup/instantiation weight of one operator).
#[inline]
fn kind_base(kind: usize) -> f64 {
    0.5 + (kind % 7) as f64 * 0.3
}

/// Deterministic analytic cost model over the Fig-5 layout, derived from a
/// [`PlatformRegistry`].
///
/// Linear in the additive cells. The two max cells carry weight 0 so that
/// Def-2 boundary pruning is *exactly* lossless under this oracle (two rows
/// with equal footprints receive identical future additions, and a linear
/// functional preserves their cost order — the Lemma-1 property tests rely
/// on this).
///
/// Weight provenance:
///
/// * per (kind, platform) instance count — `kind_base(kind) ·
///   Platform::fixed_cost`;
/// * per-platform effective input tuples — `Platform::tuple_rate`;
/// * per-platform conversion count / converted tuples — the COT's mean
///   inbound fixed / per-tuple path costs into that platform (the Fig-5
///   layout only has per-*destination* aggregate conversion cells, so the
///   linear oracle prices the COT in aggregate; the enumerator separately
///   *excludes* pairs with no conversion path at all).
#[derive(Debug, Clone)]
pub struct AnalyticOracle {
    weights: Vec<f64>,
}

impl AnalyticOracle {
    /// Derive the oracle weights for `layout` from `registry`. The layout's
    /// platform dimension must match the registry size.
    pub fn for_registry(registry: &PlatformRegistry, layout: &FeatureLayout) -> Self {
        assert_eq!(layout.n_kinds, N_OPERATOR_KINDS);
        assert_eq!(
            layout.n_platforms,
            registry.len(),
            "feature layout sized for {} platforms but the registry holds {}",
            layout.n_platforms,
            registry.len()
        );
        let mut w = vec![0.0; layout.width];
        w[FeatureLayout::OP_COUNT] = 0.01;
        w[FeatureLayout::JUNCTURE_COUNT] = 0.02;
        // Max cells deliberately 0.0 — see the struct docs.
        w[FeatureLayout::MAX_OUT_CARD] = 0.0;
        w[FeatureLayout::MAX_TUPLE_WIDTH] = 0.0;
        for kind in 0..layout.n_kinds {
            w[layout.kind_count(kind)] = 0.1;
            w[layout.kind_in_tuples(kind)] = 1e-7;
            w[layout.kind_out_tuples(kind)] = 1e-7;
        }
        for id in registry.ids() {
            let p = id.index();
            debug_assert!(p < layout.n_platforms, "{id} outside the layout");
            let desc = registry.platform(id);
            for kind in 0..layout.n_kinds {
                // Fixed per-instance cost of running this kind on platform p.
                w[layout.kind_platform_count(kind, p)] = kind_base(kind) * desc.fixed_cost;
            }
            // Conversions carry a fixed setup cost plus a per-tuple cost
            // (COT aggregates), so platform switches only pay off on large
            // enough subplans.
            let cot = registry.conversions();
            w[layout.conversion_count(p)] = cot.mean_inbound_fixed(id);
            w[layout.conversion_tuples(p)] = cot.mean_inbound_per_tuple(id);
            w[layout.platform_input_tuples(p)] = desc.tuple_rate;
        }
        AnalyticOracle { weights: w }
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl CostOracle for AnalyticOracle {
    #[inline]
    fn width(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn cost_row(&self, feats: &[f64]) -> f64 {
        debug_assert_eq!(feats.len(), self.weights.len());
        let mut acc = 0.0;
        for (&w, &x) in self.weights.iter().zip(feats) {
            acc += w * x;
        }
        acc
    }

    /// One flat pass over the whole batch buffer — the linear-model analogue
    /// of batched forest inference.
    fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        out.clear();
        out.reserve(rows.rows());
        for row in rows.flat().chunks_exact(self.weights.len()) {
            let mut acc = 0.0;
            for (&w, &x) in self.weights.iter().zip(row) {
                acc += w * x;
            }
            out.push(acc);
        }
    }
}

/// Convenience: the uniform-registry oracle used by tests and benchmarks
/// that do not care about availability or named platforms.
pub fn uniform_oracle(layout: &FeatureLayout) -> (PlatformRegistry, AnalyticOracle) {
    let registry = PlatformRegistry::uniform(layout.n_platforms);
    let oracle = AnalyticOracle::for_registry(&registry, layout);
    (registry, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_linear_and_deterministic() {
        let layout = FeatureLayout::new(3, N_OPERATOR_KINDS);
        let registry = PlatformRegistry::uniform(3);
        let o1 = AnalyticOracle::for_registry(&registry, &layout);
        let o2 = AnalyticOracle::for_registry(&registry, &layout);
        assert_eq!(o1.weights(), o2.weights());
        let a = vec![1.0; layout.width];
        let b = vec![2.0; layout.width];
        let cost_sum = o1.cost_row(&a) + o1.cost_row(&b);
        let ab: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!((o1.cost_row(&ab) - cost_sum).abs() < 1e-9);
    }

    #[test]
    fn platforms_are_cost_asymmetric() {
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let registry = PlatformRegistry::uniform(2);
        let o = AnalyticOracle::for_registry(&registry, &layout);
        let w = o.weights();
        assert_ne!(
            w[layout.kind_platform_count(3, 0)],
            w[layout.kind_platform_count(3, 1)]
        );
    }

    #[test]
    fn named_registry_weights_follow_descriptors_and_cot() {
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        let o = AnalyticOracle::for_registry(&registry, &layout);
        let w = o.weights();
        let java = registry.by_name("java").unwrap();
        let spark = registry.by_name("spark").unwrap();
        // Per-instance fixed weights scale with the descriptor.
        assert!(
            w[layout.kind_platform_count(3, spark.index())]
                > w[layout.kind_platform_count(3, java.index())]
        );
        // Per-tuple weight is the descriptor's rate verbatim.
        assert_eq!(
            w[layout.platform_input_tuples(java.index())],
            registry.platform(java).tuple_rate
        );
        // Conversion weights come from the COT aggregation.
        assert_eq!(
            w[layout.conversion_count(java.index())],
            registry.conversions().mean_inbound_fixed(java)
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "oracle expecting"))]
    fn wrong_width_batch_is_rejected_in_debug() {
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let (_, oracle) = uniform_oracle(&layout);
        let buf = vec![0.0; (layout.width + 1) * 2];
        let mut out = Vec::new();
        oracle.cost_batch(RowsView::new(&buf, layout.width + 1), &mut out);
        // Release builds skip the debug_assert; the test is vacuous there.
    }

    #[test]
    #[should_panic(expected = "registry holds")]
    fn layout_registry_size_mismatch_is_rejected() {
        let layout = FeatureLayout::new(3, N_OPERATOR_KINDS);
        let registry = PlatformRegistry::uniform(2);
        AnalyticOracle::for_registry(&registry, &layout);
    }

    #[test]
    fn default_and_overridden_cost_batch_agree() {
        struct RowOnly(AnalyticOracle);
        impl CostOracle for RowOnly {
            fn width(&self) -> usize {
                self.0.width()
            }
            fn cost_row(&self, feats: &[f64]) -> f64 {
                self.0.cost_row(feats)
            }
        }
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let (_, oracle) = uniform_oracle(&layout);
        let rows = 7;
        let mut buf = vec![0.0; rows * layout.width];
        for (i, cell) in buf.iter_mut().enumerate() {
            *cell = (i % 13) as f64 * 0.5;
        }
        let view = RowsView::new(&buf, layout.width);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        oracle.cost_batch(view, &mut fast);
        RowOnly(oracle.clone()).cost_batch(view, &mut slow);
        assert_eq!(fast.len(), rows);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn default_dist_batch_is_the_degenerate_point_distribution() {
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let (_, oracle) = uniform_oracle(&layout);
        let rows = 5;
        let mut buf = vec![0.0; rows * layout.width];
        for (i, cell) in buf.iter_mut().enumerate() {
            *cell = (i % 11) as f64 * 0.25;
        }
        let view = RowsView::new(&buf, layout.width);
        let mut point = Vec::new();
        let mut dist = CostDistribution::new();
        oracle.cost_batch(view, &mut point);
        oracle.cost_batch_dist(view, &mut dist);
        assert_eq!(dist.len(), rows);
        for (r, p) in point.iter().enumerate() {
            assert_eq!(dist.mean[r].to_bits(), p.to_bits(), "row {r}");
            assert_eq!(dist.std[r], 0.0);
            assert_eq!(dist.q10[r].to_bits(), p.to_bits());
            assert_eq!(dist.q50[r].to_bits(), p.to_bits());
            assert_eq!(dist.q90[r].to_bits(), p.to_bits());
        }
    }
}
