//! The pluggable cost model.
//!
//! Both enumerators (vector-based and the object-graph baselines) cost plans
//! through the same [`CostOracle`], so Fig-1 benchmarks isolate the
//! *enumeration representation*, exactly as the paper's comparison against
//! the "Rheem-ML" strawman requires. The analytic oracle here is the stub
//! standing in for the random forest (which lands in a later PR): a linear
//! functional over the plan vector with deterministic, platform-structured
//! weights.

use robopt_plan::N_OPERATOR_KINDS;
use robopt_vector::FeatureLayout;

/// A cost model consuming a plan vector row.
pub trait CostOracle {
    /// Estimated runtime cost of the (sub)plan encoded by `feats`.
    fn cost_row(&self, feats: &[f64]) -> f64;
}

/// Deterministic analytic cost model over the Fig-5 layout.
///
/// Linear in the additive cells. The two max cells carry weight 0 so that
/// Def-2 boundary pruning is *exactly* lossless under this oracle (two rows
/// with equal footprints receive identical future additions, and a linear
/// functional preserves their cost order — the Lemma-1 property tests rely
/// on this).
#[derive(Debug, Clone)]
pub struct AnalyticOracle {
    weights: Vec<f64>,
}

/// Per-platform cost multiplier: platforms differ non-uniformly so the
/// optimum genuinely mixes platforms once conversion costs amortize.
#[inline]
fn platform_factor(p: usize) -> f64 {
    const F: [f64; 8] = [1.0, 0.55, 1.7, 0.8, 1.25, 0.65, 1.45, 0.9];
    F[p % F.len()]
}

/// Per-kind fixed-cost scale (startup/instantiation weight of one operator).
#[inline]
fn kind_base(kind: usize) -> f64 {
    0.5 + (kind % 7) as f64 * 0.3
}

impl AnalyticOracle {
    pub fn for_layout(layout: &FeatureLayout) -> Self {
        assert_eq!(layout.n_kinds, N_OPERATOR_KINDS);
        let mut w = vec![0.0; layout.width];
        w[FeatureLayout::OP_COUNT] = 0.01;
        w[FeatureLayout::JUNCTURE_COUNT] = 0.02;
        // Max cells deliberately 0.0 — see the struct docs.
        w[FeatureLayout::MAX_OUT_CARD] = 0.0;
        w[FeatureLayout::MAX_TUPLE_WIDTH] = 0.0;
        for kind in 0..layout.n_kinds {
            w[layout.kind_count(kind)] = 0.1;
            w[layout.kind_in_tuples(kind)] = 1e-7;
            w[layout.kind_out_tuples(kind)] = 1e-7;
            for p in 0..layout.n_platforms {
                // Fixed per-instance cost of running this kind on platform p.
                w[layout.kind_platform_count(kind, p)] = kind_base(kind) * platform_factor(p);
            }
        }
        for p in 0..layout.n_platforms {
            // Conversions carry a fixed setup cost plus a per-tuple cost, so
            // platform switches only pay off on large enough subplans.
            w[layout.conversion_count(p)] = 5.0;
            w[layout.conversion_tuples(p)] = 8e-6 * platform_factor(p);
            w[layout.platform_input_tuples(p)] = 2e-6 * platform_factor(p);
        }
        AnalyticOracle { weights: w }
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl CostOracle for AnalyticOracle {
    #[inline]
    fn cost_row(&self, feats: &[f64]) -> f64 {
        debug_assert_eq!(feats.len(), self.weights.len());
        let mut acc = 0.0;
        for (&w, &x) in self.weights.iter().zip(feats) {
            acc += w * x;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_linear_and_deterministic() {
        let layout = FeatureLayout::new(3, N_OPERATOR_KINDS);
        let o1 = AnalyticOracle::for_layout(&layout);
        let o2 = AnalyticOracle::for_layout(&layout);
        assert_eq!(o1.weights(), o2.weights());
        let a = vec![1.0; layout.width];
        let b = vec![2.0; layout.width];
        let cost_sum = o1.cost_row(&a) + o1.cost_row(&b);
        let ab: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!((o1.cost_row(&ab) - cost_sum).abs() < 1e-9);
    }

    #[test]
    fn platforms_are_cost_asymmetric() {
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let o = AnalyticOracle::for_layout(&layout);
        let w = o.weights();
        assert_ne!(
            w[layout.kind_platform_count(3, 0)],
            w[layout.kind_platform_count(3, 1)]
        );
    }
}
