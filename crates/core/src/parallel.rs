//! Split-based parallel enumeration (paper §IV-D; DESIGN §9).
//!
//! [`ParallelEnumerator`] partitions the plan with [`crate::split`], runs
//! the existing priority enumeration *independently per part* — one
//! [`Enumerator`] with its own matrix pool per part, so the zero-alloc hot
//! path survives parallelism — and then contracts the seam edges serially
//! over the surviving part units with the same lossless Def-2 pruning the
//! parts used.
//!
//! # Determinism contract
//!
//! The partition comes from [`SplitOptions`], **not** from the thread
//! count: threads only schedule which worker runs which part, exactly the
//! per-tree discipline `robopt_ml`'s forest uses for bagging. Each part's
//! enumeration is a pure function of (plan, part scope, options), per-part
//! stats are folded in part order, and the seam phase installs part results
//! in part order — so the result is bit-identical across thread counts,
//! and `tests/parallel_enum.rs` + `tests/determinism.rs` assert it.
//!
//! Agreement with the *serial* [`Enumerator`] is slightly weaker by
//! construction: the two build different merge trees, so intermediate
//! counters ([`EnumStats`]) legitimately differ, and candidate costs see
//! different floating-point addition orders. The final reported cost is
//! immune to that — both paths re-cost the winning assignment canonically
//! in `finish` — so best assignment and cost bits agree (also asserted in
//! the test suites and in `fig03_parallel_scaling`).

use robopt_plan::LogicalPlan;
use robopt_vector::FeatureLayout;

use crate::enumerate::{EnumOptions, EnumStats, Enumerator};
use crate::split::{split_plan, PlanSplit, SplitOptions};
use crate::vectorize::ExecutionPlan;

/// Parallel split-enumerate-merge driver over per-part [`Enumerator`]s.
#[derive(Debug, Default)]
pub struct ParallelEnumerator {
    threads: usize,
    /// Cap workers at `std::thread::available_parallelism()` (on by
    /// default): oversubscribing a host only adds spawn/context-switch
    /// latency, and the partition — hence the result — never depends on the
    /// worker count, so clamping is invisible except in wall-clock time.
    hardware_clamp: bool,
    split: SplitOptions,
    /// One enumerator (and thus one warm buffer pool) per part. Part
    /// results are *copied* into the merger's pool, never moved, so each
    /// pool stabilizes after warm-up.
    parts: Vec<Enumerator>,
    merger: Enumerator,
    roots: Vec<u32>,
}

impl ParallelEnumerator {
    /// An enumerator running on (up to) `threads` worker threads with the
    /// default [`SplitOptions`].
    pub fn new(threads: usize) -> Self {
        ParallelEnumerator {
            threads: threads.max(1),
            hardware_clamp: true,
            ..ParallelEnumerator::default()
        }
    }

    /// Override the plan-splitting options.
    pub fn with_split(mut self, split: SplitOptions) -> Self {
        self.split = split;
        self
    }

    /// Toggle the `available_parallelism` worker cap. Tests disable it to
    /// force real scoped-thread scheduling even on a single-core host; the
    /// result is bit-identical either way.
    pub fn with_hardware_clamp(mut self, clamp: bool) -> Self {
        self.hardware_clamp = clamp;
        self
    }

    /// Worker threads this enumerator schedules parts onto.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Re-target the worker count **in place**, keeping every per-part
    /// enumerator (and its warmed matrix pool) alive. The service facade
    /// changes policy per request; rebuilding via [`ParallelEnumerator::new`]
    /// would throw the pools away and reintroduce hot-path allocation.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// In-place counterpart of [`ParallelEnumerator::with_split`].
    pub fn set_split(&mut self, split: SplitOptions) {
        self.split = split;
    }

    /// In-place counterpart of [`ParallelEnumerator::with_hardware_clamp`].
    pub fn set_hardware_clamp(&mut self, clamp: bool) {
        self.hardware_clamp = clamp;
    }

    /// Run split-based enumeration. Same contract as
    /// [`Enumerator::enumerate`]; additionally the result is bit-identical
    /// across thread counts (see the module docs).
    // lint:surface(deterministic)
    pub fn enumerate(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
    ) -> (ExecutionPlan, EnumStats) {
        let n = plan.n_ops();
        assert!(n >= 1, "empty plan");
        assert!(plan.is_connected(), "enumeration requires a connected plan");

        let split = split_plan(plan, self.split);
        let kp = split.len();
        if kp <= 1 {
            // No admissible cut: plain serial enumeration on the merger.
            return self.merger.enumerate(plan, layout, opts);
        }
        if self.parts.len() < kp {
            self.parts.resize_with(kp, Enumerator::default);
        }

        // Phase 1: enumerate every part. Workers own disjoint part blocks
        // (forest-style tiling); `thread::scope` joins them all and
        // propagates panics, so no thread outlives this call.
        let hw = if self.hardware_clamp {
            // lint:allow(determinism-taint) the worker count only tiles the part blocks; merge order and result bytes are identical for every thread count (asserted across 1..=4 workers by parallel_matches_serial)
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            usize::MAX
        };
        let t = self.threads.min(kp).min(hw);
        let mut part_stats = vec![EnumStats::default(); kp];
        if t <= 1 {
            for (i, (en, st)) in self.parts[..kp].iter_mut().zip(&mut part_stats).enumerate() {
                *st = run_part(en, plan, layout, opts, &split, i);
            }
        } else {
            let split_ref = &split;
            std::thread::scope(|scope| {
                let mut en_rest = &mut self.parts[..kp];
                let mut st_rest = &mut part_stats[..];
                for w in 0..t {
                    let lo = w * kp / t;
                    let hi = (w + 1) * kp / t;
                    let (en_chunk, en_tail) = en_rest.split_at_mut(hi - lo);
                    en_rest = en_tail;
                    let (st_chunk, st_tail) = st_rest.split_at_mut(hi - lo);
                    st_rest = st_tail;
                    scope.spawn(move || {
                        for (j, (en, st)) in en_chunk.iter_mut().zip(st_chunk).enumerate() {
                            *st = run_part(en, plan, layout, opts, split_ref, lo + j);
                        }
                    });
                }
            });
        }
        let mut stats = EnumStats::default();
        for st in &part_stats {
            stats.absorb(st);
        }

        // Phase 2: serial seam merge. Copy every surviving part unit into
        // the merger (a part with an internally disconnected subgraph
        // legitimately survives as several units), then contract exactly
        // the seam edges. Boundary footprints always see the whole plan's
        // edges, so part-boundary operators stay in every footprint until
        // the seams close over them — pruning remains lossless.
        let (merger, parts) = (&mut self.merger, &mut self.parts);
        merger.begin(n, layout);
        let mut roots = std::mem::take(&mut self.roots);
        for (i, en) in parts[..kp].iter_mut().enumerate() {
            en.surviving_roots(split.parts[i], &mut roots);
            for &r in roots.iter() {
                let unit = en.take_unit(r);
                let mut mat = merger.take_mat(layout.width, n, unit.mat.rows());
                for row in 0..unit.mat.rows() {
                    mat.push_row(
                        unit.mat.row(row),
                        unit.mat.assignments(row),
                        unit.mat.cost(row),
                    );
                }
                merger.install_unit(unit.scope, mat);
                en.recycle(unit.mat);
            }
        }
        self.roots = roots;
        merger.contract_edges(plan, layout, opts, &split.seam_edges, &mut stats);
        (merger.finish(plan, layout, opts), stats)
    }
}

/// Enumerate one part to completion: seed its singletons, contract its
/// internal edges. Free function so scoped worker threads can run disjoint
/// `&mut Enumerator`s without borrowing the driver.
fn run_part(
    en: &mut Enumerator,
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    opts: EnumOptions<'_>,
    split: &PlanSplit,
    i: usize,
) -> EnumStats {
    let mut st = EnumStats::default();
    en.begin(plan.n_ops(), layout);
    en.seed_singletons(plan, layout, opts, split.parts[i], &mut st);
    en.contract_edges(plan, layout, opts, &split.part_edges[i], &mut st);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AnalyticOracle;
    use robopt_plan::{workloads, N_OPERATOR_KINDS};
    use robopt_platforms::PlatformRegistry;

    fn setup(k: usize) -> (PlatformRegistry, FeatureLayout, AnalyticOracle) {
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        (registry, layout, oracle)
    }

    #[test]
    fn parallel_matches_serial_on_a_pipeline() {
        let plan = workloads::synthetic_pipeline(24, 1e5);
        let (registry, layout, oracle) = setup(3);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let (serial, _) = Enumerator::new().enumerate(&plan, &layout, opts);
        for threads in [1, 2, 4] {
            // Clamp off: exercise real scoped threads even on small hosts.
            let (par, stats) = ParallelEnumerator::new(threads)
                .with_split(SplitOptions::new(4))
                .with_hardware_clamp(false)
                .enumerate(&plan, &layout, opts);
            assert_eq!(par.assignments, serial.assignments, "threads={threads}");
            assert_eq!(
                par.cost.to_bits(),
                serial.cost.to_bits(),
                "threads={threads}"
            );
            assert_eq!(stats.merges, plan.n_ops() as u64 - 1);
        }
    }

    #[test]
    fn thread_count_does_not_change_stats() {
        let plan = workloads::synthetic_pipeline(30, 1e5);
        let (registry, layout, oracle) = setup(4);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let (base, base_stats) = ParallelEnumerator::new(1)
            .with_split(SplitOptions::new(5))
            .enumerate(&plan, &layout, opts);
        for threads in [2, 3, 8] {
            let (par, stats) = ParallelEnumerator::new(threads)
                .with_split(SplitOptions::new(5))
                .with_hardware_clamp(false)
                .enumerate(&plan, &layout, opts);
            assert_eq!(par, base, "threads={threads}");
            assert_eq!(stats, base_stats, "threads={threads}");
        }
    }

    #[test]
    fn unsplittable_plan_falls_back_to_serial() {
        let plan = workloads::wordcount(1e5);
        let (registry, layout, oracle) = setup(2);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let (serial, serial_stats) = Enumerator::new().enumerate(&plan, &layout, opts);
        // parts = 1 forces the fallback path.
        let (par, stats) = ParallelEnumerator::new(4)
            .with_split(SplitOptions::new(1))
            .enumerate(&plan, &layout, opts);
        assert_eq!(par, serial);
        assert_eq!(stats, serial_stats);
    }

    #[test]
    fn repeated_runs_reuse_pools_and_agree() {
        let plan = workloads::synthetic_pipeline(20, 1e5);
        let (registry, layout, oracle) = setup(2);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);
        let mut en = ParallelEnumerator::new(2);
        let (first, first_stats) = en.enumerate(&plan, &layout, opts);
        for _ in 0..3 {
            let (again, stats) = en.enumerate(&plan, &layout, opts);
            assert_eq!(again, first);
            assert_eq!(stats, first_stats);
        }
    }
}
