//! Distributional cost estimates and risk-aware scoring (DESIGN §12).
//!
//! The bagged forest computes one prediction *per tree* and PR 3 threw the
//! spread away; this module is the buffer that keeps it. A
//! [`CostDistribution`] is the struct-of-arrays batch analogue of
//! `Vec<f64>` costs: per row a mean (bit-identical to the point estimate),
//! a population standard deviation, and three nearest-rank quantiles over
//! the per-tree samples. A [`RiskPolicy`] collapses that distribution back
//! into one scalar per row — the number the enumerators rank by.
//!
//! Point-estimate oracles (the analytic model, ridge regression) have no
//! spread to report: their distribution is degenerate, `std = 0` and all
//! quantiles equal to the mean, which [`CostDistribution::fill_point_from_mean`]
//! materializes without touching the model. Under that degenerate shape
//! every policy scores exactly the mean, so risk-aware enumeration over a
//! point oracle is bit-identical to classic enumeration by construction.

/// Struct-of-arrays distributional cost buffer for one batch of rows.
///
/// Filled either by `CostOracle::cost_batch_dist` (degenerate, via
/// [`CostDistribution::fill_point_from_mean`]) or by an ensemble model in
/// one pass over its members via [`CostDistribution::sample_scratch`] +
/// [`CostDistribution::finalize_samples`]. The scratch buffer is owned
/// here so repeated batches allocate nothing after warm-up.
#[derive(Debug, Clone, Default)]
pub struct CostDistribution {
    /// Per-row mean — bit-identical to the point estimate of the same
    /// model (`predict_batch` / `cost_batch`), which the determinism
    /// digests rely on.
    pub mean: Vec<f64>,
    /// Per-row population standard deviation over the samples (zero for
    /// point-estimate models).
    pub std: Vec<f64>,
    /// Per-row 10th-percentile sample (nearest rank).
    pub q10: Vec<f64>,
    /// Per-row median sample (nearest rank).
    pub q50: Vec<f64>,
    /// Per-row 90th-percentile sample (nearest rank).
    pub q90: Vec<f64>,
    /// Row-major per-row sample workspace (`rows × samples`), reused
    /// across batches.
    scratch: Vec<f64>,
}

/// Nearest-rank index of quantile `q` among `n` sorted samples — the same
/// convention the bench harness uses for p95 latencies.
#[inline]
fn nearest_rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

impl CostDistribution {
    /// An empty buffer; [`CostDistribution::reset`] sizes it per batch.
    pub fn new() -> Self {
        CostDistribution::default()
    }

    /// Clear and resize every column to `rows` zeros.
    pub fn reset(&mut self, rows: usize) {
        for col in [
            &mut self.mean,
            &mut self.std,
            &mut self.q10,
            &mut self.q50,
            &mut self.q90,
        ] {
            col.clear();
            col.resize(rows, 0.0);
        }
    }

    /// Number of rows currently held.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Degenerate distribution from an already-filled `mean` column:
    /// `std = 0`, all quantiles equal to the mean. This is what a
    /// point-estimate oracle reports, and under it every [`RiskPolicy`]
    /// scores exactly the mean.
    pub fn fill_point_from_mean(&mut self) {
        let rows = self.mean.len();
        self.std.clear();
        self.std.resize(rows, 0.0);
        for col in [&mut self.q10, &mut self.q50, &mut self.q90] {
            col.clear();
            col.extend_from_slice(&self.mean);
        }
    }

    /// Reset to `rows` rows and hand out the `rows × samples` row-major
    /// sample workspace (zero-filled). An ensemble fills slot
    /// `row * samples + member` for each member in index order, then calls
    /// [`CostDistribution::finalize_samples`].
    pub fn sample_scratch(&mut self, rows: usize, samples: usize) -> &mut [f64] {
        assert!(samples >= 1, "a distribution needs at least one sample");
        self.reset(rows);
        self.scratch.clear();
        self.scratch.resize(rows * samples, 0.0);
        &mut self.scratch
    }

    /// Reduce the sample workspace into the five columns.
    ///
    /// The mean sums each row's samples in member-index order and divides
    /// by the count — the exact accumulation order (and therefore the
    /// exact bits) of the ensemble's point-estimate path. The std is the
    /// population deviation; quantiles are nearest-rank over the samples
    /// sorted in place by `f64::total_cmp` (seed-deterministic: no ties
    /// are broken by address or insertion order).
    pub fn finalize_samples(&mut self, samples: usize) {
        let rows = self.len();
        assert_eq!(
            self.scratch.len(),
            rows * samples,
            "finalize_samples({samples}) does not match the sample_scratch shape"
        );
        let (r10, r50, r90) = (
            nearest_rank(0.1, samples),
            nearest_rank(0.5, samples),
            nearest_rank(0.9, samples),
        );
        for (r, row) in self.scratch.chunks_exact_mut(samples).enumerate() {
            let mean = row.iter().sum::<f64>() / samples as f64;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples as f64;
            row.sort_unstable_by(f64::total_cmp);
            self.mean[r] = mean;
            self.std[r] = var.sqrt();
            self.q10[r] = row[r10];
            self.q50[r] = row[r50];
            self.q90[r] = row[r90];
        }
    }
}

/// How the enumerators collapse a [`CostDistribution`] row into the one
/// scalar they rank, prune and pick by.
///
/// `ExpectedCost` is the classic point-estimate path and the default
/// everywhere; the other two trade expected speed for stability under
/// cardinality misestimation (ROADMAP item 3). The *reported* plan cost
/// stays the canonical mean under every policy — risk changes which plan
/// wins, never how its cost is quoted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RiskPolicy {
    /// Rank by the mean — bit-identical to pre-distributional enumeration.
    #[default]
    ExpectedCost,
    /// Rank by `mean + k·std` (k ≥ 0): penalize spread linearly.
    MeanPlusKSigma(f64),
    /// Rank by the q-quantile (0 < q < 1), linearly interpolated between
    /// the stored q10/q50/q90 knots and clamped outside them.
    Quantile(f64),
}

impl RiskPolicy {
    /// True for the classic point-estimate path — enumerators take the
    /// historical `cost_batch` branch exactly, so the bits cannot move.
    pub fn is_expected(self) -> bool {
        self == RiskPolicy::ExpectedCost
    }

    /// Validate the policy's parameter: `k` must be finite and
    /// non-negative, `q` finite in the open unit interval.
    pub fn validate(self) -> Result<(), String> {
        match self {
            RiskPolicy::ExpectedCost => Ok(()),
            RiskPolicy::MeanPlusKSigma(k) if k.is_finite() && k >= 0.0 => Ok(()),
            RiskPolicy::MeanPlusKSigma(k) => Err(format!(
                "risk sigma factor must be finite and >= 0, got {k}"
            )),
            RiskPolicy::Quantile(q) if q.is_finite() && q > 0.0 && q < 1.0 => Ok(()),
            RiskPolicy::Quantile(q) => Err(format!(
                "risk quantile must lie strictly in (0, 1), got {q}"
            )),
        }
    }

    /// Risk-adjusted score of row `r` of `dist`.
    pub fn score(self, dist: &CostDistribution, r: usize) -> f64 {
        match self {
            RiskPolicy::ExpectedCost => dist.mean[r],
            RiskPolicy::MeanPlusKSigma(k) => dist.mean[r] + k * dist.std[r],
            RiskPolicy::Quantile(q) => {
                let (q10, q50, q90) = (dist.q10[r], dist.q50[r], dist.q90[r]);
                if q <= 0.1 {
                    q10
                } else if q <= 0.5 {
                    q10 + (q - 0.1) / 0.4 * (q50 - q10)
                } else if q <= 0.9 {
                    q50 + (q - 0.5) / 0.4 * (q90 - q50)
                } else {
                    q90
                }
            }
        }
    }

    /// Stable wire label: `expected`, `sigma<k>`, `q<q>`. Round-trips
    /// through [`RiskPolicy::parse`].
    pub fn label(self) -> String {
        match self {
            RiskPolicy::ExpectedCost => "expected".to_string(),
            RiskPolicy::MeanPlusKSigma(k) => format!("sigma{k}"),
            RiskPolicy::Quantile(q) => format!("q{q}"),
        }
    }

    /// Parse a wire label produced by [`RiskPolicy::label`] (also what the
    /// `--risk` CLI flag accepts). Validates the parameter.
    pub fn parse(text: &str) -> Result<RiskPolicy, String> {
        let policy = if text == "expected" {
            RiskPolicy::ExpectedCost
        } else if let Some(k) = text.strip_prefix("sigma") {
            RiskPolicy::MeanPlusKSigma(
                k.parse()
                    .map_err(|_| format!("bad risk sigma factor {k:?}"))?,
            )
        } else if let Some(q) = text.strip_prefix('q') {
            RiskPolicy::Quantile(q.parse().map_err(|_| format!("bad risk quantile {q:?}"))?)
        } else {
            return Err(format!(
                "unknown risk policy {text:?} (expected|sigma<k>|q<q>)"
            ));
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Cache-key material: a discriminant tag plus the parameter bits.
    /// Distinct policies must hash differently — a `MeanPlusKSigma` cache
    /// hit serving an `ExpectedCost` entry would silently change answers.
    pub fn sig_parts(self) -> (u64, f64) {
        match self {
            RiskPolicy::ExpectedCost => (0, 0.0),
            RiskPolicy::MeanPlusKSigma(k) => (1, k),
            RiskPolicy::Quantile(q) => (2, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_sample_dist() -> CostDistribution {
        let mut d = CostDistribution::new();
        let scratch = d.sample_scratch(2, 3);
        scratch.copy_from_slice(&[
            4.0, 1.0, 7.0, // row 0: mean 4, sorted 1 4 7
            2.0, 2.0, 2.0, // row 1: degenerate
        ]);
        d.finalize_samples(3);
        d
    }

    #[test]
    fn finalize_computes_mean_std_and_sorted_quantiles() {
        let d = three_sample_dist();
        assert_eq!(d.len(), 2);
        assert_eq!(d.mean, vec![4.0, 2.0]);
        assert!((d.std[0] - 6.0_f64.sqrt()).abs() < 1e-12, "{}", d.std[0]);
        assert_eq!(d.std[1], 0.0);
        // Nearest rank over 3 sorted samples: q10 -> first, q50 -> second,
        // q90 -> third.
        assert_eq!((d.q10[0], d.q50[0], d.q90[0]), (1.0, 4.0, 7.0));
        assert_eq!((d.q10[1], d.q50[1], d.q90[1]), (2.0, 2.0, 2.0));
    }

    #[test]
    fn point_fill_makes_every_policy_score_the_mean() {
        let mut d = CostDistribution::new();
        d.reset(3);
        d.mean.copy_from_slice(&[1.5, -2.0, 0.0]);
        d.fill_point_from_mean();
        for policy in [
            RiskPolicy::ExpectedCost,
            RiskPolicy::MeanPlusKSigma(2.0),
            RiskPolicy::Quantile(0.9),
            RiskPolicy::Quantile(0.25),
        ] {
            for r in 0..3 {
                assert_eq!(
                    policy.score(&d, r).to_bits(),
                    d.mean[r].to_bits(),
                    "{policy:?} row {r}"
                );
            }
        }
    }

    #[test]
    fn scores_follow_the_policy_semantics() {
        let d = three_sample_dist();
        assert_eq!(RiskPolicy::ExpectedCost.score(&d, 0), 4.0);
        let sigma = RiskPolicy::MeanPlusKSigma(2.0).score(&d, 0);
        assert!((sigma - (4.0 + 2.0 * 6.0_f64.sqrt())).abs() < 1e-12);
        // Quantile knots and interpolation: q0.9 is the stored sample,
        // q0.7 is halfway between q50 and q90.
        assert_eq!(RiskPolicy::Quantile(0.9).score(&d, 0), 7.0);
        assert!((RiskPolicy::Quantile(0.7).score(&d, 0) - 5.5).abs() < 1e-12);
        assert_eq!(RiskPolicy::Quantile(0.05).score(&d, 0), 1.0); // clamped
    }

    #[test]
    fn labels_round_trip_and_bad_policies_are_rejected() {
        for policy in [
            RiskPolicy::ExpectedCost,
            RiskPolicy::MeanPlusKSigma(1.5),
            RiskPolicy::Quantile(0.9),
        ] {
            assert_eq!(RiskPolicy::parse(&policy.label()), Ok(policy));
        }
        assert!(RiskPolicy::parse("p90").is_err());
        assert!(RiskPolicy::parse("sigma-1").is_err());
        assert!(RiskPolicy::parse("q1.5").is_err());
        assert!(RiskPolicy::parse("q0").is_err());
        assert!(RiskPolicy::MeanPlusKSigma(f64::NAN).validate().is_err());
    }

    #[test]
    fn sig_parts_distinguish_policies() {
        let a = RiskPolicy::ExpectedCost.sig_parts();
        let b = RiskPolicy::MeanPlusKSigma(0.0).sig_parts();
        let c = RiskPolicy::MeanPlusKSigma(1.0).sig_parts();
        let d = RiskPolicy::Quantile(0.9).sig_parts();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(c, d);
    }
}
