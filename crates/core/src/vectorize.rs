//! `vectorize` and `unvectorize` (paper Section IV-C).
//!
//! Three encoders share one definition of the Fig-5 cells:
//!
//! * [`fill_singleton`] — one operator on one platform (the enumeration
//!   seeds);
//! * [`vectorize_assignment`] — a whole plan under a full assignment (used
//!   by the exhaustive baseline and the property tests);
//! * [`add_conversion_features`] — the data-movement cells added when a
//!   merge joins two scopes across dataflow edges whose endpoint platforms
//!   differ.
//!
//! The incremental path (singletons + merges + conversion additions) and the
//! whole-plan path produce identical vectors; a property test asserts this
//! on random DAGs.

use robopt_plan::LogicalPlan;
use robopt_platforms::PlatformId;
use robopt_vector::{FeatureLayout, NO_PLATFORM};

/// The result of `unvectorize`: an executable platform assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Platform per operator, indexed by op id; ids resolve against the
    /// [`robopt_platforms::PlatformRegistry`] the enumeration ran over.
    pub assignments: Vec<PlatformId>,
    /// Cost under the oracle that drove the enumeration.
    pub cost: f64,
}

impl ExecutionPlan {
    /// Build from the raw per-operator platform bytes the enumeration
    /// matrices carry (see `robopt_vector::EnumMatrix`).
    pub fn from_raw(raw: &[u8], cost: f64) -> Self {
        ExecutionPlan {
            assignments: raw
                .iter()
                .map(|&p| {
                    debug_assert_ne!(p, NO_PLATFORM, "unassigned operator in a final plan");
                    PlatformId::from_index(p as usize)
                })
                .collect(),
            cost,
        }
    }

    /// Raw dense platform indexes (one byte per operator) — the encoding
    /// `vectorize_assignment` and the enumeration matrices consume.
    pub fn raw_assignments(&self) -> Vec<u8> {
        self.assignments.iter().map(|p| p.raw()).collect()
    }

    /// Number of distinct platforms the plan executes on.
    pub fn distinct_platforms(&self) -> usize {
        let mut mask = 0u8;
        for p in &self.assignments {
            mask |= 1u8 << p.index();
        }
        mask.count_ones() as usize
    }
}

/// Encode a single operator running on `platform` into `feats`
/// (which must be zeroed, `layout.width` long).
pub fn fill_singleton(
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    op: u32,
    platform: u8,
    feats: &mut [f64],
) {
    debug_assert_eq!(feats.len(), layout.width);
    let i = op as usize;
    let kind = plan.op(op).kind.index();
    let in_t = plan.in_tuples()[i];
    let out_t = plan.out_card()[i];
    feats[FeatureLayout::OP_COUNT] = 1.0;
    feats[FeatureLayout::JUNCTURE_COUNT] = f64::from(u8::from(plan.is_juncture(op)));
    feats[FeatureLayout::MAX_OUT_CARD] = out_t;
    feats[FeatureLayout::MAX_TUPLE_WIDTH] = plan.op(op).tuple_width;
    feats[layout.kind_count(kind)] = 1.0;
    feats[layout.kind_in_tuples(kind)] = in_t;
    feats[layout.kind_out_tuples(kind)] = out_t;
    feats[layout.kind_platform_count(kind, platform as usize)] = 1.0;
    feats[layout.platform_input_tuples(platform as usize)] = in_t;
}

/// Add the conversion features of one dataflow edge `(u, v)` whose endpoint
/// platforms differ: one conversion *into* `v`'s platform, moving `u`'s
/// output tuples. No-op when both endpoints share a platform.
#[inline]
pub fn add_conversion_features(
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    u: u32,
    _v: u32,
    pu: u8,
    pv: u8,
    feats: &mut [f64],
) {
    if pu != pv {
        feats[layout.conversion_count(pv as usize)] += 1.0;
        feats[layout.conversion_tuples(pv as usize)] += plan.out_card()[u as usize];
    }
}

/// Encode a whole plan under a full platform assignment. `feats` is
/// overwritten (zeroed first); `assign[i]` must be a valid platform for
/// every operator.
pub fn vectorize_assignment(
    plan: &LogicalPlan,
    layout: &FeatureLayout,
    assign: &[u8],
    feats: &mut Vec<f64>,
) {
    debug_assert_eq!(assign.len(), plan.n_ops());
    feats.clear();
    feats.resize(layout.width, 0.0);
    for op in 0..plan.n_ops() as u32 {
        let i = op as usize;
        debug_assert!(assign[i] != NO_PLATFORM);
        let kind = plan.op(op).kind.index();
        let in_t = plan.in_tuples()[i];
        let out_t = plan.out_card()[i];
        feats[FeatureLayout::OP_COUNT] += 1.0;
        feats[FeatureLayout::JUNCTURE_COUNT] += f64::from(u8::from(plan.is_juncture(op)));
        feats[FeatureLayout::MAX_OUT_CARD] = feats[FeatureLayout::MAX_OUT_CARD].max(out_t);
        feats[FeatureLayout::MAX_TUPLE_WIDTH] =
            feats[FeatureLayout::MAX_TUPLE_WIDTH].max(plan.op(op).tuple_width);
        feats[layout.kind_count(kind)] += 1.0;
        feats[layout.kind_in_tuples(kind)] += in_t;
        feats[layout.kind_out_tuples(kind)] += out_t;
        feats[layout.kind_platform_count(kind, assign[i] as usize)] += 1.0;
        feats[layout.platform_input_tuples(assign[i] as usize)] += in_t;
    }
    for &(u, v) in plan.edges() {
        add_conversion_features(
            plan,
            layout,
            u,
            v,
            assign[u as usize],
            assign[v as usize],
            feats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::{workloads, N_OPERATOR_KINDS};

    #[test]
    fn whole_plan_counts_ops_and_conversions() {
        let plan = workloads::wordcount(1000.0);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let mut feats = Vec::new();
        // Alternating assignment: every one of the 5 edges crosses platforms.
        let assign: Vec<u8> = (0..plan.n_ops()).map(|i| (i % 2) as u8).collect();
        vectorize_assignment(&plan, &layout, &assign, &mut feats);
        assert_eq!(feats[FeatureLayout::OP_COUNT], 6.0);
        let convs: f64 = (0..2).map(|p| feats[layout.conversion_count(p)]).sum();
        assert_eq!(convs, 5.0);
        // Uniform assignment: no conversions.
        vectorize_assignment(&plan, &layout, &[0u8; 6], &mut feats);
        let convs: f64 = (0..2).map(|p| feats[layout.conversion_count(p)]).sum();
        assert_eq!(convs, 0.0);
        assert_eq!(feats[layout.platform_input_tuples(1)], 0.0);
    }
}
