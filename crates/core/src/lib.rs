//! `robopt-core`: the vector-based optimizer.
//!
//! * [`oracle`] — the pluggable batched, object-safe [`oracle::CostOracle`]
//!   trait (analytic model, learned `robopt_ml` models behind their
//!   `ModelOracle` adapter, and test doubles all ride behind
//!   `&dyn CostOracle`) and the registry-derived analytic oracle;
//! * [`dist`] — distributional cost estimates: the [`dist::CostDistribution`]
//!   struct-of-arrays buffer (per-row mean / std / quantiles) and the
//!   [`dist::RiskPolicy`] scoring hook that collapses a distribution into
//!   the scalar enumeration ranks by (DESIGN §12);
//! * [`vectorize`] — whole-plan and singleton Fig-5 encodings, conversion
//!   features, and `unvectorize` back to an executable platform assignment
//!   over [`robopt_platforms::PlatformId`]s;
//! * [`enumerate`] — Algorithm 1: priority-queue enumeration over
//!   [`robopt_vector::EnumMatrix`] units with lossless boundary pruning
//!   (Def. 2), availability masking and conversion-feasibility exclusion
//!   from the [`robopt_platforms::PlatformRegistry`] carried by
//!   [`enumerate::EnumOptions`], and enumeration statistics;
//! * [`split`] — deterministic low-connectivity plan partitioning (the
//!   paper's `split`): minimum-crossing-edge cut boundaries over the
//!   topological order, never through a `RepeatLoop` region;
//! * [`parallel`] — the split-enumerate-merge driver running one
//!   enumerator per part on scoped std threads, bit-identical across
//!   thread counts (DESIGN §9).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod dist;
pub mod enumerate;
pub mod oracle;
pub mod parallel;
pub mod split;
pub mod vectorize;

pub use dist::{CostDistribution, RiskPolicy};
pub use enumerate::{EnumOptions, EnumStats, Enumerator};
pub use oracle::{uniform_oracle, AnalyticOracle, CostOracle};
pub use parallel::ParallelEnumerator;
pub use split::{loop_regions, split_plan, PlanSplit, SplitOptions};
pub use vectorize::ExecutionPlan;
