//! `robopt-core`: the vector-based optimizer.
//!
//! * [`oracle`] — the pluggable batched [`oracle::CostOracle`] trait and
//!   the registry-derived analytic oracle used until the random forest
//!   lands;
//! * [`vectorize`] — whole-plan and singleton Fig-5 encodings, conversion
//!   features, and `unvectorize` back to an executable platform assignment
//!   over [`robopt_platforms::PlatformId`]s;
//! * [`enumerate`] — Algorithm 1: priority-queue enumeration over
//!   [`robopt_vector::EnumMatrix`] units with lossless boundary pruning
//!   (Def. 2), availability masking and conversion-feasibility exclusion
//!   from the [`robopt_platforms::PlatformRegistry`] carried by
//!   [`enumerate::EnumOptions`], and enumeration statistics.

pub mod enumerate;
pub mod oracle;
pub mod vectorize;

pub use enumerate::{EnumOptions, EnumStats, Enumerator};
pub use oracle::{uniform_oracle, AnalyticOracle, CostOracle};
pub use vectorize::ExecutionPlan;
