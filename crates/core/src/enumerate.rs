//! Algorithm 1: priority-based enumeration over plan-vector matrices.
//!
//! The enumeration graph starts with one unit per operator, with one
//! singleton row per platform the registry's availability matrix permits
//! for that operator's kind. Repeatedly, the dataflow edge with the best
//! Def-3 priority — fewest boundary operators of the merged scope (the
//! pruned frontier `k^|boundary|` multiplies every later merge), ties by
//! extending the larger existing unit (linear merge trees over balanced
//! ones), then FIFO — is contracted: the two matrices are cross-merged one
//! left row at a time with the fused add kernel, conversion features are
//! added for every dataflow edge crossing the two scopes (combinations
//! whose crossing edges have no conversion path in the registry's COT are
//! excluded, DESIGN §6.3), each block is costed in **one batched oracle
//! call**, and Def-2 boundary pruning keeps the cheapest row per pruning
//! footprint. When one unit covers the whole plan its empty footprint
//! leaves exactly the optimal row, which `unvectorize` turns into an
//! [`ExecutionPlan`].
//!
//! Zero-allocation hot path: the [`Enumerator`] owns matrix pools, scratch
//! row buffers, the batch cost buffer, the priority heap and the footprint
//! map, all reused across calls. After a warm-up run, enumerating performs
//! no `EnumMatrix` buffer growth (asserted by `tests/buffer_reuse.rs` via
//! [`robopt_vector::alloc_events`]).

use robopt_plan::LogicalPlan;
use robopt_platforms::{PlatformId, PlatformRegistry};
use robopt_vector::merge::{merge_assignments, merge_feats_many};
use robopt_vector::{
    footprint_hash, EnumMatrix, FeatureLayout, FootprintTable, RowsView, Scope, NO_PLATFORM,
};

use crate::dist::{CostDistribution, RiskPolicy};
use crate::oracle::CostOracle;
use crate::vectorize::{
    add_conversion_features, fill_singleton, vectorize_assignment, ExecutionPlan,
};

/// Enumeration options: a borrowed [`PlatformRegistry`], the cost oracle
/// driving the search, and tuning flags, assembled builder-style.
///
/// The oracle travels with the options (`with_oracle`) instead of being a
/// separate positional argument threaded through every `enumerate`/baseline
/// call site; it is stored as `&dyn CostOracle`, so the analytic model and
/// any `robopt_ml` model behind a `ModelOracle` adapter are interchangeable
/// without monomorphizing the enumeration loop per model.
///
/// ```
/// # use robopt_plan::N_OPERATOR_KINDS;
/// # use robopt_platforms::PlatformRegistry;
/// # use robopt_vector::FeatureLayout;
/// # use robopt_core::{AnalyticOracle, EnumOptions};
/// let registry = PlatformRegistry::uniform(3);
/// let layout = FeatureLayout::new(3, N_OPERATOR_KINDS);
/// let oracle = AnalyticOracle::for_registry(&registry, &layout);
/// let opts = EnumOptions::new(&registry)
///     .with_oracle(&oracle)
///     .with_prune(true);
/// assert_eq!(opts.n_platforms(), 3);
/// ```
#[derive(Clone, Copy)]
pub struct EnumOptions<'a> {
    registry: &'a PlatformRegistry,
    oracle: Option<&'a dyn CostOracle>,
    prune: bool,
    risk: RiskPolicy,
}

impl std::fmt::Debug for EnumOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnumOptions")
            .field("n_platforms", &self.registry.len())
            .field("oracle_width", &self.oracle.map(|o| o.width()))
            .field("prune", &self.prune)
            .field("risk", &self.risk)
            .finish()
    }
}

impl<'a> EnumOptions<'a> {
    /// Options over `registry` with Def-2 boundary pruning enabled and no
    /// cost oracle yet (set one with [`EnumOptions::with_oracle`] before
    /// enumerating).
    pub fn new(registry: &'a PlatformRegistry) -> Self {
        EnumOptions {
            registry,
            oracle: None,
            prune: true,
            risk: RiskPolicy::ExpectedCost,
        }
    }

    /// Set the cost oracle the enumeration ranks candidate rows with.
    pub fn with_oracle(mut self, oracle: &'a dyn CostOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Toggle Def-2 boundary pruning (lossless under a linear oracle).
    /// Disabling it makes the search space grow as `k^n`; only sensible for
    /// tiny test plans.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Set the [`RiskPolicy`] candidate rows are *ranked* by (DESIGN §12).
    /// Under the default `ExpectedCost` the enumerator takes the classic
    /// point-estimate path verbatim — bit-identical to pre-distributional
    /// enumeration. Under any other policy, rows are scored through
    /// [`CostOracle::cost_batch_dist`]: pruning keeps the cheapest
    /// *risk-adjusted* row per footprint, while the reported plan cost
    /// stays the canonical mean (see [`Enumerator::finish`]).
    pub fn with_risk(mut self, risk: RiskPolicy) -> Self {
        self.risk = risk;
        self
    }

    /// The registry enumeration resolves platforms against.
    #[inline]
    pub fn registry(&self) -> &'a PlatformRegistry {
        self.registry
    }

    /// The cost oracle. Panics when none was set — enumeration cannot rank
    /// candidates without one.
    #[inline]
    pub fn oracle(&self) -> &'a dyn CostOracle {
        self.oracle
            // lint:allow(panic-expect) documented contract: enumeration without an oracle is a caller bug, asserted by enumeration_without_an_oracle_is_rejected
            .expect("EnumOptions::with_oracle: enumeration requires a cost oracle")
    }

    /// Whether Def-2 boundary pruning is enabled.
    #[inline]
    pub fn prune(&self) -> bool {
        self.prune
    }

    /// The risk policy candidate rows are ranked by.
    #[inline]
    pub fn risk(&self) -> RiskPolicy {
        self.risk
    }

    /// Number of platforms in the registry (the layout's `k`).
    #[inline]
    pub fn n_platforms(&self) -> usize {
        self.registry.len()
    }
}

/// Counters reported by one enumeration run (Table-I instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Candidate subplan vectors produced by `merge` (pre-pruning,
    /// including combinations later excluded as structurally infeasible),
    /// plus the initial singletons.
    pub generated: u64,
    /// Subplan vectors retained after pruning (the paper's "# enumerated
    /// subplans"), summed over all units ever materialized.
    pub kept: u64,
    /// Merge steps performed (always `n - 1` for a connected plan).
    pub merges: u64,
    /// Largest row count any single unit reached.
    pub peak_rows: u64,
}

impl EnumStats {
    /// Fold another run's counters into this one: totals add, the peak
    /// takes the max. The parallel enumerator folds per-part stats in part
    /// order, so the combined counters are scheduling-independent.
    pub fn absorb(&mut self, other: &EnumStats) {
        self.generated += other.generated;
        self.kept += other.kept;
        self.merges += other.merges;
        self.peak_rows = self.peak_rows.max(other.peak_rows);
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    /// Boundary operators of the merged scope. Primary key: the pruned
    /// frontier is bounded by `k^frontier`, and that frontier multiplies
    /// the staging cost of *every* future merge touching the unit, so
    /// shrinking it first dominates any one merge's own cross-product.
    frontier: u32,
    /// Row count of the larger endpoint unit. Inverted in [`Self::key`]:
    /// among equal-frontier candidates, *extending* an existing multi-row
    /// unit wins over pairing two fresh singletons. This keeps merge trees
    /// linear — a balanced tree merges two k²-row units into a k⁴
    /// cross-product where the linear tree stages k³ — which is what lets
    /// split parts (whose interior scopes carry two boundary operators)
    /// stay within a constant factor of serial enumeration.
    larger_rows: u64,
    seq: u32,
    edge: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (u32, u64, u32) {
        (self.frontier, u64::MAX - self.larger_rows, self.seq)
    }
}

/// Minimal binary min-heap over a reusable `Vec` (keeps its capacity across
/// enumeration runs, unlike `std::collections::BinaryHeap` draining).
#[derive(Debug, Default)]
struct MinHeap {
    items: Vec<HeapEntry>,
}

impl MinHeap {
    fn clear(&mut self) {
        self.items.clear();
    }

    fn push(&mut self, e: HeapEntry) {
        self.items.push(e);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].key() < self.items[parent].key() {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<HeapEntry> {
        let n = self.items.len();
        if n == 0 {
            return None;
        }
        self.items.swap(0, n - 1);
        let top = self.items.pop();
        let n = self.items.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.items[l].key() < self.items[smallest].key() {
                smallest = l;
            }
            if r < n && self.items[r].key() < self.items[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
        top
    }
}

/// One live node of the enumeration graph: the scope it covers and the
/// matrix of surviving candidate rows for that scope.
#[derive(Debug)]
pub(crate) struct Unit {
    pub(crate) scope: Scope,
    pub(crate) mat: EnumMatrix,
}

/// The vector-based enumerator with pooled, reusable buffers.
///
/// [`Enumerator::enumerate`] is the one-call serial entry point. The
/// `pub(crate)` phase methods (`begin` / `seed_singletons` /
/// `contract_edges` / `install_unit` / `finish`) expose the same machinery
/// piecewise so `crate::parallel` can run one `Enumerator` per plan part
/// and a final seam-merge pass without duplicating the hot loop.
#[derive(Debug, Default)]
pub struct Enumerator {
    pool: Vec<EnumMatrix>,
    units: Vec<Option<Unit>>,
    parent: Vec<u32>,
    heap: MinHeap,
    fp_map: FootprintTable,
    scratch_feats: Vec<f64>,
    scratch_assign: Vec<u8>,
    /// Batched merge destination: one left row × every right row, written
    /// by [`merge_feats_many`] then conversion-patched in place.
    stage_block: Vec<f64>,
    cost_buf: Vec<f64>,
    /// Distributional scratch for non-`ExpectedCost` risk policies; unused
    /// (and unallocated) on the classic point path.
    dist_buf: CostDistribution,
    boundary: Vec<u32>,
    crossing: Vec<(u32, u32)>,
    /// Per-block feasibility flags (`feas[ib]` for the current left row ×
    /// right row `ib`): infeasible combinations are still costed with their
    /// block — batching beats branching — but never reach the destination.
    feas: Vec<bool>,
    /// Reused edge-index list for the serial all-edges path.
    edge_idx: Vec<u32>,
}

impl Enumerator {
    pub fn new() -> Self {
        Enumerator::default()
    }

    #[inline]
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Row count of the live unit rooted at `r`. The union-find invariant —
    /// every root returned by [`Enumerator::find`] owns a `Some` unit until
    /// it is contracted away — makes the lookup structural.
    #[inline]
    fn unit_rows(&self, r: u32) -> usize {
        match self.units.get(r as usize) {
            // lint:allow(panic-expect) union-find root always holds a live unit (contracted roots are never re-found)
            Some(u) => u.as_ref().expect("live unit at union-find root").mat.rows(),
            None => 0,
        }
    }

    /// Detach the live unit rooted at `r` (same invariant as `unit_rows`).
    #[inline]
    pub(crate) fn take_unit(&mut self, r: u32) -> Unit {
        self.units
            .get_mut(r as usize)
            .and_then(Option::take)
            // lint:allow(panic-expect) union-find root always holds a live unit (contracted roots are never re-found)
            .expect("live unit at union-find root")
    }

    /// Take a pooled matrix, best-fit by the rows it will have to hold, so
    /// warmed pools satisfy every demand without growing.
    pub(crate) fn take_mat(&mut self, width: usize, n_ops: usize, rows_hint: usize) -> EnumMatrix {
        let needed = rows_hint * width;
        let mut m = match self.pool.iter().position(|m| m.feat_capacity() >= needed) {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        m.reset(width, n_ops);
        m.reserve_rows(rows_hint);
        m
    }

    /// Fill `self.cost_buf` with the *ranking* score of every row of
    /// `rows`. Under `ExpectedCost` this is the historical batched point
    /// path verbatim — one [`CostOracle::cost_batch`] call, so the bits
    /// cannot move. Under any other policy it is one
    /// [`CostOracle::cost_batch_dist`] call followed by a per-row
    /// [`RiskPolicy::score`] collapse. Either way the enumeration loop
    /// downstream consumes one scalar per row and is policy-oblivious.
    fn score_rows(&mut self, oracle: &dyn CostOracle, risk: RiskPolicy, rows: RowsView<'_>) {
        if risk.is_expected() {
            oracle.cost_batch(rows, &mut self.cost_buf);
        } else {
            oracle.cost_batch_dist(rows, &mut self.dist_buf);
            self.cost_buf.clear();
            self.cost_buf.reserve(self.dist_buf.len());
            for r in 0..self.dist_buf.len() {
                self.cost_buf.push(risk.score(&self.dist_buf, r));
            }
        }
    }

    /// Number of boundary operators of `scope`: operators inside with at
    /// least one dataflow edge to an operator outside.
    fn boundary_count(plan: &LogicalPlan, scope: Scope) -> u32 {
        let mut count = 0;
        for op in 0..plan.n_ops() as u32 {
            if scope.contains(op) {
                let crosses = plan
                    .succs(op)
                    .iter()
                    .chain(plan.preds(op))
                    .any(|&o| !scope.contains(o));
                count += u32::from(crosses);
            }
        }
        count
    }

    /// Scope of the live unit rooted at `r` (same invariant as `unit_rows`).
    #[inline]
    fn unit_scope(&self, r: u32) -> Scope {
        match self.units.get(r as usize) {
            // lint:allow(panic-expect) union-find root always holds a live unit (contracted roots are never re-found)
            Some(u) => u.as_ref().expect("live unit at union-find root").scope,
            None => Scope::default(),
        }
    }

    /// Reset per-run state for an `n`-operator plan: no live units yet,
    /// identity union-find, scratch rows sized to the layout. Phase entry
    /// point for `crate::parallel`; [`Enumerator::enumerate`] uses it too.
    pub(crate) fn begin(&mut self, n: usize, layout: &FeatureLayout) {
        self.units.clear();
        self.units.resize_with(n, || None);
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.scratch_feats.clear();
        self.scratch_feats.resize(layout.width, 0.0);
        self.scratch_assign.clear();
        self.scratch_assign.resize(n, NO_PLATFORM);
    }

    /// vectorize: one unit per operator of `scope`, one singleton row per
    /// platform the availability matrix permits for the operator's kind;
    /// each unit's rows are costed with one batched oracle call.
    pub(crate) fn seed_singletons(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
        scope: Scope,
        stats: &mut EnumStats,
    ) {
        let registry = opts.registry();
        let oracle = opts.oracle();
        let n = plan.n_ops();
        let k = registry.len();
        for op in 0..n as u32 {
            if !scope.contains(op) {
                continue;
            }
            let kind = plan.op(op).kind;
            let mut mat = self.take_mat(layout.width, n, k);
            let mut feats = std::mem::take(&mut self.scratch_feats);
            let mut assign = std::mem::take(&mut self.scratch_assign);
            for p in registry.available_platforms(kind) {
                feats.fill(0.0);
                assign.fill(NO_PLATFORM);
                fill_singleton(plan, layout, op, p.raw(), &mut feats);
                assign[op as usize] = p.raw();
                mat.push_row(&feats, &assign, 0.0);
            }
            self.scratch_feats = feats;
            self.scratch_assign = assign;
            assert!(
                mat.rows() > 0,
                "operator {op} ({kind:?}) is unavailable on every registry platform"
            );
            self.score_rows(oracle, opts.risk(), mat.rows_view());
            for r in 0..mat.rows() {
                mat.set_cost(r, self.cost_buf[r]);
            }
            stats.generated += mat.rows() as u64;
            stats.kept += mat.rows() as u64;
            stats.peak_rows = stats.peak_rows.max(mat.rows() as u64);
            self.units[op as usize] = Some(Unit {
                scope: Scope::singleton(op),
                mat,
            });
        }
    }

    /// Install a pre-built unit (a finished part's surviving rows), anchored
    /// at the scope's lowest op id so later [`Enumerator::find`] calls from
    /// any covered operator land on it.
    pub(crate) fn install_unit(&mut self, scope: Scope, mat: EnumMatrix) {
        // lint:allow(panic-expect) installing an empty-scope unit is a caller bug
        let root = scope.min_op().expect("non-empty unit scope");
        for op in 0..self.parent.len() as u32 {
            if scope.contains(op) {
                self.parent[op as usize] = root;
            }
        }
        self.units[root as usize] = Some(Unit { scope, mat });
    }

    /// Return a consumed matrix to this enumerator's pool for reuse.
    #[inline]
    pub(crate) fn recycle(&mut self, mat: EnumMatrix) {
        self.pool.push(mat);
    }

    /// Collect the distinct union-find roots currently covering `scope`
    /// into `out` (cleared first), in ascending first-discovery order. A
    /// part whose subgraph is internally disconnected survives as several
    /// roots; the seam phase exports each as its own unit.
    pub(crate) fn surviving_roots(&mut self, scope: Scope, out: &mut Vec<u32>) {
        out.clear();
        for op in 0..self.parent.len() as u32 {
            if scope.contains(op) {
                let r = self.find(op);
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
    }

    /// Contract the listed dataflow edges (indexes into `plan.edges()`) in
    /// Def-3 priority order: fewest boundary operators of the merged scope
    /// first (the pruned frontier `k^|boundary|` multiplies every later
    /// merge, so closing boundaries dominates any one merge's own
    /// cross-product), ties by extending the larger existing unit (linear
    /// merge trees stage `k³` where balanced ones stage `k⁴`), then FIFO
    /// over the original edge index. Lazy staleness handling: an entry whose
    /// stored key no longer matches current unit state is re-pushed with the
    /// current value. Every listed edge's endpoints must already be covered
    /// by live units (seeded singletons or installed part results).
    pub(crate) fn contract_edges(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
        edges: &[u32],
        stats: &mut EnumStats,
    ) {
        let registry = opts.registry();
        let oracle = opts.oracle();
        let n = plan.n_ops();
        let k = registry.len();

        self.heap.clear();
        for &e in edges {
            let (u, v) = plan.edges()[e as usize];
            let ra = self.find(u);
            let rb = self.find(v);
            if ra == rb {
                continue;
            }
            let rows_u = self.unit_rows(ra);
            let rows_v = self.unit_rows(rb);
            let frontier =
                Self::boundary_count(plan, self.unit_scope(ra).union(self.unit_scope(rb)));
            self.heap.push(HeapEntry {
                frontier,
                larger_rows: rows_u.max(rows_v) as u64,
                seq: e,
                edge: e,
            });
        }

        while let Some(entry) = self.heap.pop() {
            let (eu, ev) = plan.edges()[entry.edge as usize];
            let ra = self.find(eu);
            let rb = self.find(ev);
            if ra == rb {
                continue;
            }
            let rows_a = self.unit_rows(ra);
            let rows_b = self.unit_rows(rb);
            let frontier =
                Self::boundary_count(plan, self.unit_scope(ra).union(self.unit_scope(rb)));
            let larger_rows = rows_a.max(rows_b) as u64;
            if (frontier, larger_rows) != (entry.frontier, entry.larger_rows) {
                self.heap.push(HeapEntry {
                    frontier,
                    larger_rows,
                    ..entry
                });
                continue;
            }

            let a = self.take_unit(ra);
            let b = self.take_unit(rb);
            let merged_scope = a.scope.union(b.scope);

            // Dataflow edges crossing the two scopes (conversion sites).
            self.crossing.clear();
            for &(u, v) in plan.edges() {
                if (a.scope.contains(u) && b.scope.contains(v))
                    || (b.scope.contains(u) && a.scope.contains(v))
                {
                    self.crossing.push((u, v));
                }
            }
            // Boundary operators of the merged scope, ascending op id
            // (canonical footprint order).
            self.boundary.clear();
            for op in 0..n as u32 {
                if merged_scope.contains(op) {
                    let crosses = plan
                        .succs(op)
                        .iter()
                        .chain(plan.preds(op))
                        .any(|&o| !merged_scope.contains(o));
                    if crosses {
                        self.boundary.push(op);
                    }
                }
            }

            // Merge, cost and prune one left row at a time: `merge_feats_many`
            // fuses one `a` row against all of `b` in a SIMD-width block,
            // conversion features are patched per combination in place, the
            // block is costed with one batched oracle call, and every
            // feasible row is folded straight into the destination unit
            // (cheapest per Def-2 pruning footprint). The full
            // `rows_a × rows_b` cross-product is never materialized — the
            // working set stays one `rows_b`-row block regardless of how
            // large the merge is, so big seam merges cannot thrash the
            // matrix pool.
            let cap = if opts.prune() {
                (k as u64)
                    .saturating_pow(self.boundary.len() as u32)
                    .min((rows_a * rows_b) as u64) as usize
            } else {
                rows_a * rows_b
            };
            let mut dst = self.take_mat(layout.width, n, cap);
            let mut block = std::mem::take(&mut self.stage_block);
            let mut assign = std::mem::take(&mut self.scratch_assign);
            let width = layout.width;
            self.fp_map.clear();
            for ia in 0..a.mat.rows() {
                merge_feats_many(&mut block, a.mat.row(ia), b.mat.rows_view());
                self.feas.clear();
                self.feas.resize(b.mat.rows(), true);
                for (ib, feats) in block.chunks_exact_mut(width).enumerate() {
                    merge_assignments(&mut assign, a.mat.assignments(ia), b.mat.assignments(ib));
                    for &(u, v) in &self.crossing {
                        let (pu, pv) = (assign[u as usize], assign[v as usize]);
                        if pu != pv
                            && !registry.convertible(
                                PlatformId::from_index(pu as usize),
                                PlatformId::from_index(pv as usize),
                            )
                        {
                            self.feas[ib] = false;
                            break;
                        }
                        add_conversion_features(plan, layout, u, v, pu, pv, feats);
                    }
                }
                self.score_rows(oracle, opts.risk(), RowsView::new(&block, width));
                for ib in 0..b.mat.rows() {
                    if !self.feas[ib] {
                        continue;
                    }
                    let cost = self.cost_buf[ib];
                    let feats = &block[ib * width..(ib + 1) * width];
                    merge_assignments(&mut assign, a.mat.assignments(ia), b.mat.assignments(ib));
                    if opts.prune() {
                        let fp = footprint_hash(&self.boundary, &assign);
                        match self.fp_map.get(fp) {
                            Some(row) => {
                                if cost < dst.cost(row as usize) {
                                    dst.overwrite_row(row as usize, feats, &assign, cost);
                                }
                            }
                            None => {
                                let row = dst.push_row(feats, &assign, cost);
                                self.fp_map.insert(fp, row as u32);
                            }
                        }
                    } else {
                        dst.push_row(feats, &assign, cost);
                    }
                }
            }
            self.stage_block = block;
            self.scratch_assign = assign;
            stats.generated += (rows_a * rows_b) as u64;
            assert!(
                dst.rows() > 0,
                "no feasible platform combination for a merged scope — \
                 the registry's conversion graph disconnects these operators"
            );

            stats.merges += 1;
            stats.kept += dst.rows() as u64;
            stats.peak_rows = stats.peak_rows.max(dst.rows() as u64);

            // Contract: rb joins ra; recycle the consumed matrices.
            self.parent[rb as usize] = ra;
            self.pool.push(a.mat);
            self.pool.push(b.mat);
            self.units[ra as usize] = Some(Unit {
                scope: merged_scope,
                mat: dst,
            });
        }
    }

    /// unvectorize: detach the single surviving unit (it must cover the
    /// whole plan), take its cheapest row, and re-cost that assignment
    /// **canonically** — one whole-plan `vectorize_assignment` encode plus
    /// one `cost_row` call. Selection uses the merge-tree costs, but the
    /// *reported* cost is a pure function of (plan, assignment, oracle),
    /// independent of the order floating-point additions happened in — so
    /// serial and split-parallel enumeration agree on cost bits. Under a
    /// non-`ExpectedCost` risk policy the stored row costs are risk scores,
    /// so `min_cost_row` picks the min-*risk* plan; the reported cost is
    /// still the canonical mean of that winner (risk changes which plan
    /// wins, never how its cost is quoted — DESIGN §12).
    pub(crate) fn finish(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
    ) -> ExecutionPlan {
        let n = plan.n_ops();
        let root = self.find(0);
        let unit = self.take_unit(root);
        assert_eq!(
            unit.scope.len() as usize,
            n,
            "enumeration finished without covering the whole plan"
        );
        // lint:allow(panic-expect) every singleton pushes >= 1 row and every merge asserts a feasible row, so the final unit is non-empty
        let best = unit.mat.min_cost_row().expect("non-empty enumeration");
        let mut feats = std::mem::take(&mut self.scratch_feats);
        vectorize_assignment(plan, layout, unit.mat.assignments(best), &mut feats);
        let cost = opts.oracle().cost_row(&feats);
        self.scratch_feats = feats;
        let result = ExecutionPlan::from_raw(unit.mat.assignments(best), cost);
        self.pool.push(unit.mat);
        result
    }

    /// Run Algorithm 1. The plan must be sealed and connected; the layout's
    /// platform dimension must match the registry carried by `opts`, and the
    /// oracle carried by `opts` must expect the layout's row width.
    // lint:surface(deterministic)
    pub fn enumerate(
        &mut self,
        plan: &LogicalPlan,
        layout: &FeatureLayout,
        opts: EnumOptions<'_>,
    ) -> (ExecutionPlan, EnumStats) {
        let n = plan.n_ops();
        let registry = opts.registry();
        let oracle = opts.oracle();
        let k = registry.len();
        assert!(n >= 1, "empty plan");
        assert_eq!(
            k, layout.n_platforms,
            "feature layout sized for {} platforms but the registry holds {k}",
            layout.n_platforms
        );
        assert_eq!(
            oracle.width(),
            layout.width,
            "cost oracle expects rows of width {} but the layout produces {}",
            oracle.width(),
            layout.width
        );
        assert!(plan.is_connected(), "enumeration requires a connected plan");
        let mut stats = EnumStats::default();

        self.begin(n, layout);
        self.seed_singletons(plan, layout, opts, Scope::full(n), &mut stats);
        let mut edges = std::mem::take(&mut self.edge_idx);
        edges.clear();
        edges.extend(0..plan.edges().len() as u32);
        self.contract_edges(plan, layout, opts, &edges, &mut stats);
        self.edge_idx = edges;
        (self.finish(plan, layout, opts), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AnalyticOracle;
    use robopt_plan::{workloads, N_OPERATOR_KINDS};

    fn run(plan: &LogicalPlan, k: usize, prune: bool) -> (ExecutionPlan, EnumStats) {
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        Enumerator::new().enumerate(
            plan,
            &layout,
            EnumOptions::new(&registry)
                .with_oracle(&oracle)
                .with_prune(prune),
        )
    }

    #[test]
    fn wordcount_enumeration_is_complete_and_assigned() {
        let plan = workloads::wordcount(1e5);
        let (exec, stats) = run(&plan, 2, true);
        assert_eq!(exec.assignments.len(), 6);
        assert!(exec.assignments.iter().all(|&p| p.index() < 2));
        assert!(exec.cost.is_finite() && exec.cost > 0.0);
        assert_eq!(stats.merges, 5);
    }

    #[test]
    fn pruned_and_unpruned_agree_on_small_plans() {
        let plan = workloads::wordcount(1e5);
        let (pruned, s1) = run(&plan, 2, true);
        let (full, s2) = run(&plan, 2, false);
        assert!((pruned.cost - full.cost).abs() <= 1e-9 * full.cost.abs());
        assert!(s1.kept < s2.kept);
    }

    #[test]
    fn optimum_is_no_worse_than_any_uniform_assignment() {
        use crate::vectorize::vectorize_assignment;
        let plan = workloads::tpch_q3(1e5);
        let registry = PlatformRegistry::uniform(2);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let (exec, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry).with_oracle(&oracle),
        );
        let mut feats = Vec::new();
        for p in 0..2u8 {
            vectorize_assignment(&plan, &layout, &vec![p; plan.n_ops()], &mut feats);
            assert!(exec.cost <= oracle.cost_row(&feats) + 1e-9);
        }
    }

    #[test]
    fn availability_masking_keeps_operators_off_unsupported_platforms() {
        use robopt_plan::OperatorKind;
        let plan = workloads::wordcount(1e5);
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let (exec, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry).with_oracle(&oracle),
        );
        assert!(exec.cost.is_finite());
        for (op, &p) in exec.assignments.iter().enumerate() {
            assert!(
                registry.is_available(plan.op(op as u32).kind, p),
                "operator {op} ({:?}) placed on unavailable {p}",
                plan.op(op as u32).kind
            );
        }
        // WordCount has a TextFileSource, unavailable on Postgres/Giraph.
        let pg = registry.by_name("postgres").unwrap();
        assert_ne!(exec.assignments[0], pg);
        assert!(OperatorKind::TextFileSource.is_source());
    }

    #[test]
    fn infeasible_conversions_are_excluded_not_costed() {
        use robopt_plan::{Operator, OperatorKind};
        use robopt_platforms::Platform;
        // Two platforms with NO channel between them: every operator chain
        // must stay on a single platform.
        let mut b = PlatformRegistry::builder();
        b.add(Platform::new("iso0").with_fixed_cost(1.0));
        b.add(Platform::new("iso1").with_fixed_cost(0.5));
        let registry = b.build();
        let mut plan = LogicalPlan::new();
        let s = plan.add_op(Operator::source(OperatorKind::TextFileSource, 1e4));
        let m = plan.add_op(Operator::new(OperatorKind::Map));
        let t = plan.add_op(Operator::new(OperatorKind::LocalCallbackSink));
        plan.connect(s, m);
        plan.connect(m, t);
        plan.seal();
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let (exec, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry).with_oracle(&oracle),
        );
        assert_eq!(
            exec.distinct_platforms(),
            1,
            "disconnected COT must force a single-platform plan"
        );
    }

    #[test]
    #[should_panic(expected = "requires a cost oracle")]
    fn enumeration_without_an_oracle_is_rejected() {
        let plan = workloads::wordcount(1e5);
        let registry = PlatformRegistry::uniform(2);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        Enumerator::new().enumerate(&plan, &layout, EnumOptions::new(&registry));
    }

    /// Point-estimating oracle whose *distribution* marks one layout cell
    /// as volatile: std is proportional to that cell's value, mean is the
    /// analytic cost untouched.
    struct SpreadOracle {
        inner: AnalyticOracle,
        risky_cell: usize,
    }

    impl CostOracle for SpreadOracle {
        fn width(&self) -> usize {
            self.inner.width()
        }
        fn cost_row(&self, feats: &[f64]) -> f64 {
            self.inner.cost_row(feats)
        }
        fn cost_batch_dist(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
            self.inner.cost_batch(rows, &mut out.mean);
            out.fill_point_from_mean();
            for r in 0..rows.rows() {
                out.std[r] = rows.row(r)[self.risky_cell] * 1e3;
            }
        }
    }

    #[test]
    fn risk_policy_changes_selection_but_not_the_reported_cost_contract() {
        let plan = workloads::wordcount(1e6);
        let registry = PlatformRegistry::uniform(2);
        let layout = FeatureLayout::new(2, N_OPERATOR_KINDS);
        let inner = AnalyticOracle::for_registry(&registry, &layout);
        let (base, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry).with_oracle(&inner),
        );
        // The risky cell is the expected winner's input-tuple column, so a
        // risk-averse policy must steer off that platform.
        let winner = base.assignments[1].index();
        let oracle = SpreadOracle {
            inner: inner.clone(),
            risky_cell: layout.platform_input_tuples(winner),
        };

        // ExpectedCost through the same distributional oracle: identical
        // plan, identical cost bits (the classic path runs verbatim).
        let (expected, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry)
                .with_oracle(&oracle)
                .with_risk(RiskPolicy::ExpectedCost),
        );
        assert_eq!(expected.assignments, base.assignments);
        assert_eq!(expected.cost.to_bits(), base.cost.to_bits());

        // A strongly risk-averse policy abandons the volatile platform.
        let (robust, _) = Enumerator::new().enumerate(
            &plan,
            &layout,
            EnumOptions::new(&registry)
                .with_oracle(&oracle)
                .with_risk(RiskPolicy::MeanPlusKSigma(5.0)),
        );
        assert_ne!(robust.assignments, base.assignments, "risk must repick");
        // The reported cost stays the canonical mean of the robust winner —
        // quoted identically to what ExpectedCost would quote for that plan.
        let mut feats = Vec::new();
        crate::vectorize::vectorize_assignment(
            &plan,
            &layout,
            &robust
                .assignments
                .iter()
                .map(|p| p.raw())
                .collect::<Vec<_>>(),
            &mut feats,
        );
        assert_eq!(robust.cost.to_bits(), oracle.cost_row(&feats).to_bits());
        assert!(
            robust.cost >= base.cost,
            "mean-optimal plan is mean-minimal"
        );
    }
}
