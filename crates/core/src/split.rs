//! The plan splitter: low-connectivity cut boundaries for parallel
//! enumeration (paper §IV-D's `split`; DESIGN §9).
//!
//! The splitter cuts the plan into up to K contiguous segments of its
//! deterministic topological order. A *boundary* `b` separates the first
//! `b` operators of the topo order from the rest; its cost is the number of
//! dataflow edges crossing it. For each target position `i·n/K` the
//! splitter searches a window of nearby boundaries and keeps the one
//! minimizing `(crossing edges, distance to target, boundary index)` — a
//! total order, so the split is a pure function of the plan and the
//! options.
//!
//! Two classes of boundary are rejected outright:
//!
//! * boundaries spanned by a `RepeatLoop` protected region (the loop
//!   operator and everything downstream of it) — cutting through an
//!   iteration body would put a loop seam on the hot path of every
//!   round-trip;
//! * boundaries whose crossing-edge count exceeds
//!   [`SplitOptions::max_cut_edges`] — a wide seam makes the final merge
//!   phase as expensive as the enumeration it was supposed to parallelize.
//!
//! When a window contains no admissible boundary the cut is skipped and the
//! split simply has fewer parts; a plan that admits no cuts at all comes
//! back whole (one part, empty seam).

use robopt_plan::{LogicalPlan, OperatorKind};
use robopt_vector::Scope;

/// Tuning knobs for [`split_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitOptions {
    /// Target number of parts K (the split may produce fewer when cut
    /// windows contain no admissible boundary). Clamped to `1..=n`.
    pub parts: usize,
    /// Maximum dataflow edges a single cut may cross. Cuts wider than this
    /// are rejected (the seam cross-product would dominate the run).
    pub max_cut_edges: u32,
}

impl SplitOptions {
    /// Split into (up to) `parts` parts with the default seam-width cap.
    pub fn new(parts: usize) -> Self {
        SplitOptions {
            parts,
            ..SplitOptions::default()
        }
    }
}

impl Default for SplitOptions {
    fn default() -> Self {
        SplitOptions {
            parts: 4,
            max_cut_edges: 4,
        }
    }
}

/// A deterministic partition of a plan's operators and edges.
#[derive(Debug, Clone, Default)]
pub struct PlanSplit {
    /// Operator scope of each part: pairwise disjoint, each non-empty,
    /// union covering the plan. Ordered by topo position.
    pub parts: Vec<Scope>,
    /// Per part, the indexes (into `plan.edges()`) of edges with both
    /// endpoints inside that part.
    pub part_edges: Vec<Vec<u32>>,
    /// Indexes of the seam edges — edges crossing parts. Contracting
    /// exactly these after the parts finish completes the enumeration.
    pub seam_edges: Vec<u32>,
    /// Crossing-edge count of each accepted cut (`parts.len() - 1`
    /// entries), each `<=` the configured [`SplitOptions::max_cut_edges`].
    pub cut_sizes: Vec<u32>,
}

impl PlanSplit {
    /// Number of parts.
    #[inline]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the plan came back whole (no admissible cut).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// Protected regions no cut may pass through: for every `RepeatLoop`
/// operator, the loop operator plus every operator reachable from it (its
/// unrolled body and downstream consumers).
pub fn loop_regions(plan: &LogicalPlan) -> Vec<Scope> {
    let mut regions = Vec::new();
    for op in 0..plan.n_ops() as u32 {
        if plan.op(op).kind != OperatorKind::RepeatLoop {
            continue;
        }
        let mut scope = Scope::singleton(op);
        let mut stack = vec![op];
        while let Some(u) = stack.pop() {
            for &v in plan.succs(u) {
                if !scope.contains(v) {
                    scope = scope.union(Scope::singleton(v));
                    stack.push(v);
                }
            }
        }
        regions.push(scope);
    }
    regions
}

/// Partition `plan` into up to `opts.parts` contiguous topo-order segments
/// at minimum-crossing boundaries. Deterministic: same plan and options,
/// same split, always.
pub fn split_plan(plan: &LogicalPlan, opts: SplitOptions) -> PlanSplit {
    let n = plan.n_ops();
    assert!(n >= 1, "empty plan");
    let order = plan.topo_order();
    let mut pos = vec![0u32; n];
    for (i, &op) in order.iter().enumerate() {
        pos[op as usize] = i as u32;
    }

    // crossing[b] = edges (u, v) with pos[u] < b <= pos[v], via a
    // difference array over boundary positions 0..=n.
    let mut diff = vec![0i64; n + 1];
    for &(u, v) in plan.edges() {
        let (pu, pv) = (pos[u as usize], pos[v as usize]);
        debug_assert!(pu < pv, "topo order must orient every edge forward");
        diff[pu as usize + 1] += 1;
        diff[pv as usize + 1] -= 1;
    }
    let mut crossing = vec![0u32; n + 1];
    let mut acc = 0i64;
    for b in 0..=n {
        acc += diff[b];
        crossing[b] = acc as u32;
    }

    // Boundaries spanned by a protected loop region are forbidden.
    let mut forbidden = vec![false; n + 1];
    for region in loop_regions(plan) {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for op in 0..n as u32 {
            if region.contains(op) {
                lo = lo.min(pos[op as usize]);
                hi = hi.max(pos[op as usize]);
            }
        }
        for b in (lo + 1)..=hi {
            forbidden[b as usize] = true;
        }
    }

    // Pick up to K-1 cut boundaries, one search window per target.
    let k = opts.parts.clamp(1, n);
    let window = (n / (2 * k)).max(1);
    let mut cuts: Vec<usize> = Vec::new();
    let mut cut_sizes: Vec<u32> = Vec::new();
    let mut prev = 0usize;
    for i in 1..k {
        let target = i * n / k;
        let lo = (target.saturating_sub(window)).max(prev + 1);
        let hi = (target + window).min(n - 1);
        let mut best: Option<(u32, usize, usize)> = None;
        for b in lo..=hi {
            if forbidden[b] || crossing[b] > opts.max_cut_edges {
                continue;
            }
            let key = (crossing[b], target.abs_diff(b), b);
            match best {
                Some(cur) if cur <= key => {}
                _ => best = Some(key),
            }
        }
        if let Some((size, _, b)) = best {
            cuts.push(b);
            cut_sizes.push(size);
            prev = b;
        }
    }

    // Segments of the topo order -> scopes, then classify every edge.
    let mut parts = Vec::with_capacity(cuts.len() + 1);
    let mut part_of = vec![0u32; n];
    let mut start = 0usize;
    for (&end, part) in cuts.iter().chain(std::iter::once(&n)).zip(0u32..) {
        let mut scope = Scope::default();
        for &op in &order[start..end] {
            scope = scope.union(Scope::singleton(op));
            part_of[op as usize] = part;
        }
        debug_assert!(!scope.is_empty(), "empty part segment");
        parts.push(scope);
        start = end;
    }

    let mut part_edges = vec![Vec::new(); parts.len()];
    let mut seam_edges = Vec::new();
    for (e, &(u, v)) in plan.edges().iter().enumerate() {
        let (a, b) = (part_of[u as usize], part_of[v as usize]);
        if a == b {
            part_edges[a as usize].push(e as u32);
        } else {
            seam_edges.push(e as u32);
        }
    }

    PlanSplit {
        parts,
        part_edges,
        seam_edges,
        cut_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::{workloads, Operator, SplitMix64};

    #[test]
    fn chain_splits_into_contiguous_nonempty_parts() {
        let plan = workloads::synthetic_pipeline(32, 1e5);
        let split = split_plan(&plan, SplitOptions::new(4));
        assert_eq!(split.len(), 4);
        assert_eq!(split.seam_edges.len(), 3);
        assert!(split.cut_sizes.iter().all(|&c| c == 1));
        let mut union = Scope::default();
        for (i, part) in split.parts.iter().enumerate() {
            assert!(!part.is_empty(), "part {i} empty");
            assert!((union.0 & part.0) == 0, "part {i} overlaps earlier parts");
            union = union.union(*part);
        }
        assert_eq!(union, Scope::full(32));
        // Every edge lands in exactly one bucket.
        let classified: usize =
            split.part_edges.iter().map(Vec::len).sum::<usize>() + split.seam_edges.len();
        assert_eq!(classified, plan.edges().len());
    }

    #[test]
    fn split_is_deterministic() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..8 {
            let n = 8 + rng.gen_range(24);
            let plan = workloads::random_connected_dag(&mut rng, n, 0.3);
            let a = split_plan(&plan, SplitOptions::new(4));
            let b = split_plan(&plan, SplitOptions::new(4));
            assert_eq!(a.parts, b.parts);
            assert_eq!(a.seam_edges, b.seam_edges);
            assert_eq!(a.cut_sizes, b.cut_sizes);
        }
    }

    #[test]
    fn wide_seams_are_rejected() {
        // A fan-out/fan-in diamond with 6 parallel branches: every interior
        // boundary crosses >= 2 edges; with max_cut_edges = 1 the plan must
        // come back whole.
        let mut plan = LogicalPlan::new();
        let src = plan.add_op(Operator::source(OperatorKind::TableSource, 1e4));
        let sink = plan.add_op(Operator::new(OperatorKind::Union));
        for _ in 0..6 {
            let m = plan.add_op(Operator::new(OperatorKind::Map));
            plan.connect(src, m);
            plan.connect(m, sink);
        }
        plan.seal();
        let split = split_plan(
            &plan,
            SplitOptions {
                parts: 4,
                max_cut_edges: 1,
            },
        );
        assert_eq!(split.len(), 1);
        assert!(split.seam_edges.is_empty());
        assert!(split.cut_sizes.is_empty());
    }

    #[test]
    fn single_operator_plan_is_one_part() {
        let mut plan = LogicalPlan::new();
        plan.add_op(Operator::source(OperatorKind::TableSource, 10.0));
        plan.seal();
        let split = split_plan(&plan, SplitOptions::new(4));
        assert_eq!(split.len(), 1);
        assert_eq!(split.parts[0], Scope::singleton(0));
    }

    #[test]
    fn loop_regions_cover_repeat_loop_and_descendants() {
        let mut plan = LogicalPlan::new();
        let s = plan.add_op(Operator::source(OperatorKind::TableSource, 1e3));
        let c = plan.add_op(Operator::new(OperatorKind::Cache));
        let l = plan.add_op(Operator::new(OperatorKind::RepeatLoop));
        let m = plan.add_op(Operator::new(OperatorKind::Map));
        let t = plan.add_op(Operator::new(OperatorKind::LocalCallbackSink));
        plan.connect(s, c);
        plan.connect(c, l);
        plan.connect(l, m);
        plan.connect(m, t);
        plan.seal();
        let regions = loop_regions(&plan);
        assert_eq!(regions.len(), 1);
        for op in [l, m, t] {
            assert!(regions[0].contains(op));
        }
        for op in [s, c] {
            assert!(!regions[0].contains(op));
        }
        // No cut may separate the loop from its body: every accepted cut
        // must sit before the RepeatLoop.
        let split = split_plan(&plan, SplitOptions::new(3));
        for part in &split.parts {
            let inside = [l, m, t].iter().filter(|&&op| part.contains(op)).count();
            assert!(
                inside == 0 || inside == 3,
                "cut passes through the protected loop region"
            );
        }
    }
}
