//! Bagged random forest — the paper's cost model (§IV-C): bootstrap
//! aggregation of CART regression trees with per-split feature
//! subsampling.
//!
//! * **Deterministic under threading**: tree `t` derives its RNG solely
//!   from `mix64(seed ^ t)`, and trees are stored in index order, so the
//!   fitted forest is identical whether training ran on 1 thread or 16.
//! * **Parallel training**: tree indices are dealt round-robin across
//!   `std::thread::scope` workers (no work queue, no locks).
//! * **Batched parallel inference**: [`RandomForest::predict_batch`] makes
//!   one flat pass per tree over the [`RowsView`], accumulating into the
//!   caller's output buffer — no per-row allocation; large batches are
//!   row-chunked across threads.

use std::num::NonZeroUsize;

use robopt_core::CostDistribution;
use robopt_plan::rng::{mix64, SplitMix64};
use robopt_vector::RowsView;

use crate::model::{DistModel, Model};
use crate::tree::{RegressionTree, TreeConfig};

/// Row count below which batched inference stays single-threaded (thread
/// spawn costs more than the walk).
const PAR_MIN_ROWS: usize = 4096;

/// Forest-level configuration. `tree.feature_candidates: None` means "use
/// the regression default `ceil(width / 3)`", resolved at fit time.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Master seed; tree `t` uses `mix64(seed ^ t)`.
    pub seed: u64,
    /// Base-learner knobs shared by every tree.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 48,
            seed: 0x0b5e_55ed,
            tree: TreeConfig::default(),
        }
    }
}

/// A fitted bagged random forest.
#[derive(Debug, Clone, Default)]
pub struct RandomForest {
    width: usize,
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit a forest on `rows`/`labels` under `config`. Training is
    /// parallel across trees yet bit-identical to the serial order because
    /// per-tree randomness never depends on scheduling.
    pub fn fit(config: &ForestConfig, rows: RowsView<'_>, labels: &[f64]) -> RandomForest {
        assert!(config.n_trees >= 1, "forest needs at least one tree");
        assert_eq!(rows.rows(), labels.len(), "one label per feature row");
        assert!(rows.rows() >= 1, "cannot fit a forest on zero samples");
        let tree_cfg = TreeConfig {
            feature_candidates: Some(
                config
                    .tree
                    .feature_candidates
                    .unwrap_or_else(|| rows.width().div_ceil(3)),
            ),
            ..config.tree
        };
        let n_trees = config.n_trees;
        let n_threads = available_threads().min(n_trees);
        let mut trees: Vec<Option<RegressionTree>> = vec![None; n_trees];
        if n_threads <= 1 {
            for (t, slot) in trees.iter_mut().enumerate() {
                *slot = Some(fit_one(&tree_cfg, rows, labels, config.seed, t));
            }
        } else {
            std::thread::scope(|scope| {
                let mut rest: &mut [Option<RegressionTree>] = &mut trees;
                for worker in 0..n_threads {
                    // Worker w owns the contiguous block of tree indices
                    // [lo, hi); blocks tile 0..n_trees exactly.
                    let lo = worker * n_trees / n_threads;
                    let hi = (worker + 1) * n_trees / n_threads;
                    let (mine, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    scope.spawn(move || {
                        for (offset, slot) in mine.iter_mut().enumerate() {
                            *slot =
                                Some(fit_one(&tree_cfg, rows, labels, config.seed, lo + offset));
                        }
                    });
                }
            });
        }
        RandomForest {
            width: rows.width(),
            trees: trees
                .into_iter()
                // lint:allow(panic-expect) the spawn blocks tile 0..n_trees exactly, so every slot is filled once the scope joins
                .map(|t| t.expect("every tree fitted"))
                .collect(),
        }
    }

    /// Fit a forest on a [`crate::source::TrainingSet`] under `config` —
    /// the configured counterpart of [`crate::model::Model::fit_set`]
    /// (which cannot carry a config through the object-safe trait).
    pub fn fit_on(config: &ForestConfig, set: &crate::source::TrainingSet) -> RandomForest {
        RandomForest::fit(config, set.rows_view(), &set.labels)
    }

    /// Reassemble a forest from deserialized trees. Each tree has already
    /// passed [`RegressionTree::from_parts`] validation; this checks the
    /// forest-level invariants (non-empty, one shared feature width) so a
    /// loaded model satisfies exactly the contract a fitted one does.
    pub fn from_trees(
        width: usize,
        trees: Vec<RegressionTree>,
    ) -> Result<RandomForest, crate::tree::ModelImportError> {
        if trees.is_empty() {
            return Err(crate::tree::ModelImportError::Empty);
        }
        for tree in &trees {
            if tree.width() != width {
                return Err(crate::tree::ModelImportError::WidthMismatch {
                    expected: width,
                    got: tree.width(),
                });
            }
        }
        Ok(RandomForest { width, trees })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, in index order.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Mean prediction of all trees for one row.
    pub fn predict(&self, feats: &[f64]) -> f64 {
        debug_assert_eq!(feats.len(), self.width);
        let sum: f64 = self.trees.iter().map(|t| t.predict(feats)).sum();
        sum / self.trees.len() as f64
    }

    /// Accumulate every tree's predictions for the row range
    /// `[row_offset, row_offset + out.len())` into `out`, then average.
    fn predict_range(&self, rows: RowsView<'_>, row_offset: usize, out: &mut [f64]) {
        out.fill(0.0);
        for tree in &self.trees {
            // One flat pass per tree: tight loop over contiguous rows, no
            // allocation, accumulation straight into the output buffer.
            for (i, acc) in out.iter_mut().enumerate() {
                *acc += tree.predict(rows.row(row_offset + i));
            }
        }
        // Divide (not multiply by a precomputed reciprocal) so the batch
        // path is bit-identical to `predict`'s `sum / n`.
        let n_trees = self.trees.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n_trees;
        }
    }
}

impl Model for RandomForest {
    fn width(&self) -> usize {
        assert!(!self.trees.is_empty(), "RandomForest::fit not called");
        self.width
    }

    fn fit(&mut self, rows: RowsView<'_>, labels: &[f64]) {
        *self = RandomForest::fit(&ForestConfig::default(), rows, labels);
    }

    fn predict_row(&self, feats: &[f64]) -> f64 {
        self.predict(feats)
    }

    fn predict_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to a model expecting {}",
            rows.width(),
            self.width()
        );
        let n = rows.rows();
        out.clear();
        out.resize(n, 0.0);
        let n_threads = available_threads();
        if n < PAR_MIN_ROWS || n_threads <= 1 {
            self.predict_range(rows, 0, out);
            return;
        }
        let chunk = n.div_ceil(n_threads);
        std::thread::scope(|scope| {
            for (c, slice) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || self.predict_range(rows, c * chunk, slice));
            }
        });
    }
}

impl DistModel for RandomForest {
    /// One batched pass over the forest — the same per-tree flat walk as
    /// [`RandomForest::predict_batch`], except each tree's prediction
    /// lands in the per-row sample slot instead of being folded away, so
    /// the spread survives at no extra traversal cost. The mean reduces
    /// each row's samples in tree-index order, which is the exact
    /// accumulation sequence (and therefore the exact bits) of the point
    /// path; quantiles come from a per-row sort of the shared scratch.
    fn predict_dist_batch(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to a model expecting {}",
            rows.width(),
            self.width()
        );
        let n = rows.rows();
        let t = self.trees.len();
        let scratch = out.sample_scratch(n, t);
        for (ti, tree) in self.trees.iter().enumerate() {
            // Flat pass per tree, contiguous rows — the predict_range walk.
            for i in 0..n {
                scratch[i * t + ti] = tree.predict(rows.row(i));
            }
        }
        out.finalize_samples(t);
    }
}

/// Bootstrap-sample `n` row indices and fit tree `t`. The RNG seed mixes
/// only the config seed and the tree index — never thread identity.
fn fit_one(
    config: &TreeConfig,
    rows: RowsView<'_>,
    labels: &[f64],
    seed: u64,
    t: usize,
) -> RegressionTree {
    let mut rng = SplitMix64::new(mix64(seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    let n = rows.rows();
    let idx: Vec<u32> = (0..n).map(|_| rng.gen_range(n) as u32).collect();
    RegressionTree::fit_on_indices(config, rows, labels, &idx, &mut rng)
}

// lint:allow(determinism-taint) thread count only sizes the tree-fitting tile blocks; every tree is seeded by its index, so forests are bit-identical across worker counts
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_quadratic(n: usize, width: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let mut feats = Vec::with_capacity(n * width);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..width).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
            labels.push(x[0] * x[0] + 0.1 * rng.next_f64());
            feats.extend_from_slice(&x);
        }
        (feats, labels)
    }

    #[test]
    fn fits_a_nonlinear_target_better_than_the_mean() {
        let (feats, labels) = noisy_quadratic(512, 3, 11);
        let rows = RowsView::new(&feats, 3);
        let forest = RandomForest::fit(&ForestConfig::default(), rows, &labels);
        let mean = labels.iter().sum::<f64>() / labels.len() as f64;
        let (test_feats, test_labels) = noisy_quadratic(128, 3, 12);
        let test_rows = RowsView::new(&test_feats, 3);
        let mut preds = Vec::new();
        forest.predict_batch(test_rows, &mut preds);
        let forest_mse = crate::metrics::mse(&preds, &test_labels);
        let mean_preds = vec![mean; test_labels.len()];
        let mean_mse = crate::metrics::mse(&mean_preds, &test_labels);
        assert!(
            forest_mse < 0.5 * mean_mse,
            "forest mse {forest_mse} not clearly below constant-mean mse {mean_mse}"
        );
    }

    #[test]
    fn batch_prediction_equals_per_row_prediction() {
        let (feats, labels) = noisy_quadratic(256, 4, 21);
        let rows = RowsView::new(&feats, 4);
        let forest = RandomForest::fit(&ForestConfig::default(), rows, &labels);
        let mut batch = Vec::new();
        forest.predict_batch(rows, &mut batch);
        for (r, &batched) in batch.iter().enumerate() {
            assert_eq!(batched, forest.predict(rows.row(r)), "row {r} diverges");
        }
    }

    #[test]
    fn equal_seeds_fit_identical_forests() {
        let (feats, labels) = noisy_quadratic(200, 4, 31);
        let rows = RowsView::new(&feats, 4);
        let cfg = ForestConfig {
            n_trees: 16,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&cfg, rows, &labels);
        let b = RandomForest::fit(&cfg, rows, &labels);
        let (probe, _) = noisy_quadratic(64, 4, 32);
        let probe_rows = RowsView::new(&probe, 4);
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        a.predict_batch(probe_rows, &mut pa);
        b.predict_batch(probe_rows, &mut pb);
        assert_eq!(pa, pb, "same seed must reproduce bit-identical predictions");
    }

    #[test]
    fn different_seeds_fit_different_forests() {
        let (feats, labels) = noisy_quadratic(200, 4, 41);
        let rows = RowsView::new(&feats, 4);
        let a = RandomForest::fit(
            &ForestConfig {
                seed: 1,
                ..ForestConfig::default()
            },
            rows,
            &labels,
        );
        let b = RandomForest::fit(
            &ForestConfig {
                seed: 2,
                ..ForestConfig::default()
            },
            rows,
            &labels,
        );
        let probe: Vec<f64> = vec![0.3, -0.7, 1.1, 0.0];
        assert_ne!(a.predict(&probe), b.predict(&probe));
    }

    #[test]
    fn dist_batch_mean_is_bit_identical_to_point_batch() {
        let (feats, labels) = noisy_quadratic(300, 4, 51);
        let rows = RowsView::new(&feats, 4);
        let forest = RandomForest::fit(&ForestConfig::default(), rows, &labels);
        let mut point = Vec::new();
        let mut dist = CostDistribution::new();
        forest.predict_batch(rows, &mut point);
        forest.predict_dist_batch(rows, &mut dist);
        assert_eq!(dist.len(), point.len());
        for (r, (&p, &m)) in point.iter().zip(&dist.mean).enumerate() {
            assert_eq!(p.to_bits(), m.to_bits(), "mean bits diverge at row {r}");
        }
    }

    #[test]
    fn dist_batch_reports_ordered_quantiles_and_real_spread() {
        let (feats, labels) = noisy_quadratic(300, 4, 61);
        let rows = RowsView::new(&feats, 4);
        let forest = RandomForest::fit(&ForestConfig::default(), rows, &labels);
        let mut dist = CostDistribution::new();
        forest.predict_dist_batch(rows, &mut dist);
        let mut any_spread = false;
        for r in 0..dist.len() {
            assert!(dist.q10[r] <= dist.q50[r], "row {r}");
            assert!(dist.q50[r] <= dist.q90[r], "row {r}");
            assert!(dist.std[r] >= 0.0);
            any_spread |= dist.std[r] > 0.0;
        }
        assert!(any_spread, "bagged trees on noisy data must disagree");
        // Seed-deterministic: a second pass reproduces identical bits.
        let mut again = CostDistribution::new();
        forest.predict_dist_batch(rows, &mut again);
        assert_eq!(dist.std, again.std);
        assert_eq!(dist.q90, again.q90);
    }
}
