//! Accuracy metrics for cost-model evaluation (paper §VI-B, Fig 9).
//!
//! MSE and MAE are computed in whatever space the caller's values live in
//! (the training pipeline fits in `ln(1 + seconds)` space, so those two are
//! log-space errors there). The **q-error** is the paper's scale-free
//! ranking metric, `max(pred / actual, actual / pred)`, and is meaningful
//! on raw seconds; both inputs are clamped to [`Q_EPS`] so zero runtimes
//! cannot divide by zero.

/// Lower clamp applied to both operands of the q-error ratio.
pub const Q_EPS: f64 = 1e-9;

/// Mean squared error. Panics if lengths differ or the slices are empty.
pub fn mse(preds: &[f64], actuals: &[f64]) -> f64 {
    check(preds, actuals);
    let sum: f64 = preds
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    sum / preds.len() as f64
}

/// Mean absolute error. Panics if lengths differ or the slices are empty.
pub fn mae(preds: &[f64], actuals: &[f64]) -> f64 {
    check(preds, actuals);
    let sum: f64 = preds.iter().zip(actuals).map(|(p, a)| (p - a).abs()).sum();
    sum / preds.len() as f64
}

/// Scale-free q-error of a single prediction:
/// `max(pred / actual, actual / pred)` with both operands clamped to
/// [`Q_EPS`]. Always `>= 1`; exactly `1` for a perfect prediction.
pub fn q_error(pred: f64, actual: f64) -> f64 {
    let p = pred.max(Q_EPS);
    let a = actual.max(Q_EPS);
    (p / a).max(a / p)
}

/// Aggregate accuracy report over one (predictions, actuals) pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub mse: f64,
    pub mae: f64,
    /// Mean q-error across the set.
    pub q_mean: f64,
    /// Worst (largest) q-error across the set.
    pub q_max: f64,
}

impl Metrics {
    /// Evaluate all four metrics in one pass over the pairing.
    pub fn evaluate(preds: &[f64], actuals: &[f64]) -> Metrics {
        check(preds, actuals);
        let mut q_sum = 0.0;
        let mut q_max = 0.0_f64;
        for (&p, &a) in preds.iter().zip(actuals) {
            let q = q_error(p, a);
            q_sum += q;
            q_max = q_max.max(q);
        }
        Metrics {
            mse: mse(preds, actuals),
            mae: mae(preds, actuals),
            q_mean: q_sum / preds.len() as f64,
            q_max,
        }
    }
}

fn check(preds: &[f64], actuals: &[f64]) {
    assert_eq!(
        preds.len(),
        actuals.len(),
        "prediction/label length mismatch"
    );
    assert!(!preds.is_empty(), "metrics over an empty set are undefined");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae_on_known_values() {
        let preds = [1.0, 2.0, 4.0];
        let actuals = [1.0, 4.0, 1.0];
        assert!((mse(&preds, &actuals) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!((mae(&preds, &actuals) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), 2.0);
        assert_eq!(q_error(10.0, 20.0), 2.0);
        assert!(q_error(0.0, 1.0) >= 1.0);
        assert!(
            q_error(1.0, 0.0).is_finite(),
            "zero actual must not divide by zero"
        );
    }

    #[test]
    fn q_error_clamps_at_eps() {
        // Both operands at the clamp: ratio is exactly 1.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(1.0, 0.0), 1.0 / Q_EPS);
    }

    #[test]
    fn evaluate_aggregates_all_four() {
        let preds = [2.0, 8.0];
        let actuals = [4.0, 4.0];
        let m = Metrics::evaluate(&preds, &actuals);
        assert!((m.mse - (4.0 + 16.0) / 2.0).abs() < 1e-12);
        assert!((m.mae - 3.0).abs() < 1e-12);
        assert!((m.q_mean - 2.0).abs() < 1e-12);
        assert_eq!(m.q_max, 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_are_rejected() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
