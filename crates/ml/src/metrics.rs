//! Accuracy metrics for cost-model evaluation (paper §VI-B, Figs 8/9).
//!
//! MSE and MAE are computed in whatever space the caller's values live in
//! (the training pipeline fits in `ln(1 + seconds)` space, so those two are
//! log-space errors there). The **q-error** is the paper's scale-free
//! ranking metric, `max(pred / actual, actual / pred)`, and is meaningful
//! on raw seconds; both inputs are clamped to [`Q_EPS`] so zero runtimes
//! cannot divide by zero. **Spearman rank correlation** is the metric that
//! actually matters to the optimizer — enumeration only consumes the cost
//! *ranking*, and Fig 8's claim is that interpolated labels preserve it —
//! while **R²** reports explained variance in the fit space.

/// Lower clamp applied to both operands of the q-error ratio.
pub const Q_EPS: f64 = 1e-9;

/// Mean squared error. Panics if lengths differ or the slices are empty.
pub fn mse(preds: &[f64], actuals: &[f64]) -> f64 {
    check(preds, actuals);
    let sum: f64 = preds
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    sum / preds.len() as f64
}

/// Mean absolute error. Panics if lengths differ or the slices are empty.
pub fn mae(preds: &[f64], actuals: &[f64]) -> f64 {
    check(preds, actuals);
    let sum: f64 = preds.iter().zip(actuals).map(|(p, a)| (p - a).abs()).sum();
    sum / preds.len() as f64
}

/// Scale-free q-error of a single prediction:
/// `max(pred / actual, actual / pred)` with both operands clamped to
/// [`Q_EPS`]. Always `>= 1`; exactly `1` for a perfect prediction.
pub fn q_error(pred: f64, actual: f64) -> f64 {
    let p = pred.max(Q_EPS);
    let a = actual.max(Q_EPS);
    (p / a).max(a / p)
}

/// Coefficient of determination: `1 - SS_res / SS_tot`. `1` is a perfect
/// fit, `0` no better than predicting the mean, negative worse than that.
/// When the actuals have zero variance (SS_tot = 0) the ratio is
/// undefined; returns `1.0` for an exact fit and `f64::NEG_INFINITY`
/// otherwise.
pub fn r_squared(preds: &[f64], actuals: &[f64]) -> f64 {
    check(preds, actuals);
    let mean = actuals.iter().sum::<f64>() / actuals.len() as f64;
    let ss_tot: f64 = actuals.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = preds
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

/// Spearman rank correlation: the Pearson correlation of the two value
/// sequences' ranks, with ties sharing their average rank. `1` means the
/// prediction ranks the set exactly like the actuals — the property plan
/// enumeration depends on. Returns `0.0` when either side is constant
/// (no ranking to correlate) or fewer than two points are given.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    if a.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(a), &ranks(b))
}

/// Fractional ranks (1-based, ties averaged).
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    // `total_cmp` keeps the sort deterministic (and panic-free) even if a
    // NaN sneaks in; rank correlation over NaN is undefined either way.
    idx.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut out = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && values[idx[end]] == values[idx[start]] {
            end += 1;
        }
        // Ranks are 1-based; a tie group [start, end) shares the average.
        let avg = (start + 1 + end) as f64 / 2.0;
        for &i in &idx[start..end] {
            out[i] = avg;
        }
        start = end;
    }
    out
}

/// Pearson correlation; `0.0` when either side has zero variance.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Aggregate accuracy report over one (predictions, actuals) pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub mse: f64,
    pub mae: f64,
    /// Mean q-error across the set.
    pub q_mean: f64,
    /// Worst (largest) q-error across the set.
    pub q_max: f64,
    /// Spearman rank correlation (ranking preservation).
    pub spearman: f64,
    /// Coefficient of determination in the caller's value space.
    pub r2: f64,
}

impl Metrics {
    /// Evaluate all six metrics in one pass over the pairing.
    pub fn evaluate(preds: &[f64], actuals: &[f64]) -> Metrics {
        check(preds, actuals);
        let mut q_sum = 0.0;
        let mut q_max = 0.0_f64;
        for (&p, &a) in preds.iter().zip(actuals) {
            let q = q_error(p, a);
            q_sum += q;
            q_max = q_max.max(q);
        }
        Metrics {
            mse: mse(preds, actuals),
            mae: mae(preds, actuals),
            q_mean: q_sum / preds.len() as f64,
            q_max,
            spearman: spearman(preds, actuals),
            r2: r_squared(preds, actuals),
        }
    }
}

fn check(preds: &[f64], actuals: &[f64]) {
    assert_eq!(
        preds.len(),
        actuals.len(),
        "prediction/label length mismatch"
    );
    assert!(!preds.is_empty(), "metrics over an empty set are undefined");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae_on_known_values() {
        let preds = [1.0, 2.0, 4.0];
        let actuals = [1.0, 4.0, 1.0];
        assert!((mse(&preds, &actuals) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!((mae(&preds, &actuals) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), 2.0);
        assert_eq!(q_error(10.0, 20.0), 2.0);
        assert!(q_error(0.0, 1.0) >= 1.0);
        assert!(
            q_error(1.0, 0.0).is_finite(),
            "zero actual must not divide by zero"
        );
    }

    #[test]
    fn q_error_clamps_at_eps() {
        // Both operands at the clamp: ratio is exactly 1.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(1.0, 0.0), 1.0 / Q_EPS);
    }

    #[test]
    fn evaluate_aggregates_all_six() {
        let preds = [2.0, 8.0];
        let actuals = [4.0, 4.0];
        let m = Metrics::evaluate(&preds, &actuals);
        assert!((m.mse - (4.0 + 16.0) / 2.0).abs() < 1e-12);
        assert!((m.mae - 3.0).abs() < 1e-12);
        assert!((m.q_mean - 2.0).abs() < 1e-12);
        assert_eq!(m.q_max, 2.0);
        // Constant actuals: no ranking, no variance to explain.
        assert_eq!(m.spearman, 0.0);
        assert_eq!(m.r2, f64::NEG_INFINITY);
    }

    #[test]
    fn spearman_detects_perfect_and_inverted_rankings() {
        let a = [1.0, 2.0, 3.0, 4.0];
        // Any monotone transform preserves Spearman exactly.
        let up = [10.0, 100.0, 1000.0, 10000.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-12);
        assert!((spearman(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_averages_tied_ranks() {
        // b ties its two middle values; correlation dips below 1 but stays
        // strongly positive and symmetric.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 2.0, 4.0];
        let s = spearman(&a, &b);
        assert!((s - spearman(&b, &a)).abs() < 1e-12, "must be symmetric");
        assert!(s > 0.9 && s < 1.0, "tied ranks give {s}");
    }

    #[test]
    fn r_squared_on_known_values() {
        let actuals = [1.0, 2.0, 3.0];
        assert!((r_squared(&actuals, &actuals) - 1.0).abs() < 1e-12);
        // Predicting the mean everywhere explains nothing: R² = 0.
        let mean_preds = [2.0, 2.0, 2.0];
        assert!(r_squared(&mean_preds, &actuals).abs() < 1e-12);
        // Anti-correlated predictions are worse than the mean: R² < 0.
        assert!(r_squared(&[3.0, 2.0, 1.0], &actuals) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_are_rejected() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
