//! CART regression tree: variance-reduction splits over [`RowsView`]
//! columns, flat struct-of-arrays node storage, deterministic fit.
//!
//! The tree is the forest's base learner. Fitting works on an explicit
//! node stack over a reusable index buffer — no recursion, no per-node
//! allocation beyond the shared scratch. Split search is deterministic:
//! candidate columns are visited in ascending order and rows are sorted by
//! `(feature value, row index)`, so equal-gain ties always resolve the
//! same way regardless of prior calls.

use robopt_plan::rng::SplitMix64;
use robopt_vector::RowsView;

use crate::model::Model;

/// Sentinel column id marking a leaf node.
const LEAF: u32 = u32::MAX;

/// Why a deserialized tree/forest was rejected by the validated
/// constructors ([`RegressionTree::from_parts`],
/// [`crate::RandomForest::from_trees`]). Malformed persisted models must
/// fail with one of these — never panic and never produce a tree whose
/// `predict` could loop or index out of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelImportError {
    /// A tree needs at least its root node; a forest at least one tree.
    Empty,
    /// The five node arrays must all have the same length.
    LengthMismatch {
        field: &'static str,
        expected: usize,
        got: usize,
    },
    /// Every tree of a forest must share the forest's feature width.
    WidthMismatch { expected: usize, got: usize },
    /// An internal node's split column is outside the feature width.
    SplitColOutOfRange { node: usize, col: u32 },
    /// A child index is out of bounds or not strictly greater than its
    /// parent (children follow parents in the flat arrays, which is what
    /// guarantees `predict` terminates).
    BadChild { node: usize, child: u32 },
    /// A threshold or leaf value is NaN/infinite.
    NonFinite { node: usize },
}

impl std::fmt::Display for ModelImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelImportError::Empty => write!(f, "model has no nodes/trees"),
            ModelImportError::LengthMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "node array `{field}` has {got} entries, expected {expected}"
            ),
            ModelImportError::WidthMismatch { expected, got } => {
                write!(f, "tree width {got} does not match forest width {expected}")
            }
            ModelImportError::SplitColOutOfRange { node, col } => {
                write!(
                    f,
                    "node {node} splits on column {col} outside the feature width"
                )
            }
            ModelImportError::BadChild { node, child } => {
                write!(
                    f,
                    "node {node} points at child {child} (out of range or non-forward)"
                )
            }
            ModelImportError::NonFinite { node } => {
                write!(f, "node {node} carries a non-finite threshold or value")
            }
        }
    }
}

impl std::error::Error for ModelImportError {}

/// Stopping and randomization knobs for a single [`RegressionTree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum node depth (root is depth 0).
    pub max_depth: usize,
    /// Nodes with fewer samples become leaves.
    pub min_samples_split: usize,
    /// A split is admissible only if both children keep at least this many.
    pub min_samples_leaf: usize,
    /// Number of feature columns tried per split (`mtry`); `None` tries
    /// every column (plain CART), `Some(m)` samples `m` without
    /// replacement per node — the forest's decorrelation lever.
    pub feature_candidates: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 14,
            min_samples_split: 4,
            min_samples_leaf: 2,
            feature_candidates: None,
        }
    }
}

/// A fitted CART regression tree in flat struct-of-arrays form.
///
/// Node `i` is a leaf iff `split_col[i] == u32::MAX`; internal nodes route
/// `row[split_col] <= threshold` left, else right.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    width: usize,
    split_col: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    value: Vec<f64>,
}

/// Borrowed views of a tree's flat node arrays, in
/// `(split_col, threshold, left, right, value)` order — what
/// [`RegressionTree::parts`] returns and persistence renderers consume.
pub type TreeParts<'a> = (&'a [u32], &'a [f64], &'a [u32], &'a [u32], &'a [f64]);

/// One pending node during fitting: its slice of the shared index buffer.
struct PendingNode {
    node: usize,
    start: usize,
    end: usize,
    depth: usize,
}

impl RegressionTree {
    /// Fit a tree on the rows selected by `idx` (indices into `rows`, with
    /// repeats allowed — the forest passes bootstrap samples directly).
    /// `rng` drives per-node feature subsampling only; with
    /// `feature_candidates: None` it is never consulted.
    pub fn fit_on_indices(
        config: &TreeConfig,
        rows: RowsView<'_>,
        labels: &[f64],
        idx: &[u32],
        rng: &mut SplitMix64,
    ) -> RegressionTree {
        assert_eq!(rows.rows(), labels.len(), "one label per feature row");
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        assert!(
            config.min_samples_leaf >= 1,
            "leaves need at least one sample"
        );
        let width = rows.width();
        let mut tree = RegressionTree {
            width,
            ..RegressionTree::default()
        };
        let mut order: Vec<u32> = idx.to_vec();
        // Scratch reused by every split search: (feature value, row id).
        let mut sorted: Vec<(f64, u32)> = Vec::with_capacity(order.len());
        // Scratch reused by every partition (right-child spill buffer).
        let mut spill: Vec<u32> = Vec::with_capacity(order.len());
        let mut cols: Vec<usize> = (0..width).collect();
        let root = tree.push_leaf(mean_label(labels, &order));
        let mut stack = vec![PendingNode {
            node: root,
            start: 0,
            end: order.len(),
            depth: 0,
        }];
        while let Some(pending) = stack.pop() {
            let span = &order[pending.start..pending.end];
            let n = span.len();
            if pending.depth >= config.max_depth || n < config.min_samples_split {
                continue; // stays the leaf it was pushed as
            }
            let (total_sum, total_sse) = sum_and_sse(labels, span);
            if total_sse <= 1e-12 {
                continue; // pure node: nothing to reduce
            }
            let candidates = Self::pick_candidates(config, &mut cols, rng);
            let mut best: Option<Split> = None;
            for &col in candidates {
                sorted.clear();
                sorted.extend(span.iter().map(|&r| (rows.value(r as usize, col), r)));
                // Sort by (value, row index): total order ⇒ deterministic
                // prefix scan and threshold choice under ties.
                sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                for i in 0..n - 1 {
                    let y = labels[sorted[i].1 as usize];
                    left_sum += y;
                    left_sq += y * y;
                    let n_left = i + 1;
                    let n_right = n - n_left;
                    if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
                        continue;
                    }
                    if sorted[i].0 == sorted[i + 1].0 {
                        continue; // cannot separate equal feature values
                    }
                    let right_sum = total_sum - left_sum;
                    let left_sse = left_sq - left_sum * left_sum / n_left as f64;
                    // SSE(right) via the parent identity saves a second pass.
                    let right_sse = (total_sse + total_sum * total_sum / n as f64 - left_sq)
                        - right_sum * right_sum / n_right as f64;
                    let gain = total_sse - left_sse - right_sse;
                    // Strict `>` keeps the first (lowest column, lowest
                    // threshold) of any equal-gain candidates.
                    if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                        best = Some(Split {
                            gain,
                            col,
                            threshold: midpoint(sorted[i].0, sorted[i + 1].0),
                        });
                    }
                }
            }
            let Some(split) = best else { continue };
            // Stable partition of the node's index span around the split:
            // compact left rows forward, spill right rows to scratch.
            spill.clear();
            let mut write = pending.start;
            for i in pending.start..pending.end {
                let r = order[i];
                if rows.value(r as usize, split.col) <= split.threshold {
                    order[write] = r;
                    write += 1;
                } else {
                    spill.push(r);
                }
            }
            let mid = write;
            order[mid..pending.end].copy_from_slice(&spill);
            let left_node = tree.push_leaf(mean_label(labels, &order[pending.start..mid]));
            let right_node = tree.push_leaf(mean_label(labels, &order[mid..pending.end]));
            tree.split_col[pending.node] = split.col as u32;
            tree.threshold[pending.node] = split.threshold;
            tree.left[pending.node] = left_node as u32;
            tree.right[pending.node] = right_node as u32;
            stack.push(PendingNode {
                node: right_node,
                start: mid,
                end: pending.end,
                depth: pending.depth + 1,
            });
            stack.push(PendingNode {
                node: left_node,
                start: pending.start,
                end: mid,
                depth: pending.depth + 1,
            });
        }
        tree
    }

    /// The candidate columns for one node: all of them, or `m` sampled
    /// without replacement (partial Fisher-Yates over the shared buffer),
    /// returned sorted ascending for deterministic visit order.
    fn pick_candidates<'c>(
        config: &TreeConfig,
        cols: &'c mut [usize],
        rng: &mut SplitMix64,
    ) -> &'c [usize] {
        match config.feature_candidates {
            None => cols,
            Some(m) => {
                let m = m.clamp(1, cols.len());
                for i in 0..m {
                    let j = i + rng.gen_range(cols.len() - i);
                    cols.swap(i, j);
                }
                cols[..m].sort_unstable();
                &cols[..m]
            }
        }
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.split_col.push(LEAF);
        self.threshold.push(0.0);
        self.left.push(0);
        self.right.push(0);
        self.value.push(value);
        self.split_col.len() - 1
    }

    /// Sentinel `split_col` entry marking a leaf (public so persistence
    /// code can render/parse the flat arrays without magic numbers).
    pub const LEAF_SENTINEL: u32 = LEAF;

    /// Reassemble a tree from its flat node arrays, validating every
    /// structural invariant `predict` relies on. The inverse of the
    /// [`RegressionTree::parts`] accessor; persistence loaders must come
    /// through here so a corrupted file can never build a tree that loops
    /// or indexes out of bounds.
    pub fn from_parts(
        width: usize,
        split_col: Vec<u32>,
        threshold: Vec<f64>,
        left: Vec<u32>,
        right: Vec<u32>,
        value: Vec<f64>,
    ) -> Result<RegressionTree, ModelImportError> {
        let n = split_col.len();
        if n == 0 {
            return Err(ModelImportError::Empty);
        }
        for (field, got) in [
            ("threshold", threshold.len()),
            ("left", left.len()),
            ("right", right.len()),
            ("value", value.len()),
        ] {
            if got != n {
                return Err(ModelImportError::LengthMismatch {
                    field,
                    expected: n,
                    got,
                });
            }
        }
        for node in 0..n {
            if !value[node].is_finite() {
                return Err(ModelImportError::NonFinite { node });
            }
            if split_col[node] == LEAF {
                continue;
            }
            if split_col[node] as usize >= width {
                return Err(ModelImportError::SplitColOutOfRange {
                    node,
                    col: split_col[node],
                });
            }
            if !threshold[node].is_finite() {
                return Err(ModelImportError::NonFinite { node });
            }
            // Children must exist and sit strictly after their parent —
            // the fitter pushes children after parents, and this forward
            // ordering is exactly what bounds every root→leaf walk.
            for child in [left[node], right[node]] {
                if child as usize >= n || child as usize <= node {
                    return Err(ModelImportError::BadChild { node, child });
                }
            }
        }
        Ok(RegressionTree {
            width,
            split_col,
            threshold,
            left,
            right,
            value,
        })
    }

    /// The flat node arrays `(split_col, threshold, left, right, value)` —
    /// the tree's full persistent state alongside [`Model::width`].
    pub fn parts(&self) -> TreeParts<'_> {
        (
            &self.split_col,
            &self.threshold,
            &self.left,
            &self.right,
            &self.value,
        )
    }

    /// Number of nodes (internal + leaves).
    pub fn n_nodes(&self) -> usize {
        self.split_col.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.split_col.iter().filter(|&&c| c == LEAF).count()
    }

    /// Predict one row by walking root → leaf.
    #[inline]
    pub fn predict(&self, feats: &[f64]) -> f64 {
        debug_assert_eq!(feats.len(), self.width);
        let mut node = 0usize;
        loop {
            let col = self.split_col[node];
            if col == LEAF {
                return self.value[node];
            }
            node = if feats[col as usize] <= self.threshold[node] {
                self.left[node] as usize
            } else {
                self.right[node] as usize
            };
        }
    }
}

impl Model for RegressionTree {
    fn width(&self) -> usize {
        assert!(!self.split_col.is_empty(), "RegressionTree::fit not called");
        self.width
    }

    fn fit(&mut self, rows: RowsView<'_>, labels: &[f64]) {
        let idx: Vec<u32> = (0..rows.rows() as u32).collect();
        let mut rng = SplitMix64::new(0);
        *self =
            RegressionTree::fit_on_indices(&TreeConfig::default(), rows, labels, &idx, &mut rng);
    }

    fn predict_row(&self, feats: &[f64]) -> f64 {
        self.predict(feats)
    }
}

// One tree is one estimator: the degenerate point distribution from the
// `DistModel` default is exact. The *forest* is where spread comes from.
impl crate::model::DistModel for RegressionTree {}

struct Split {
    gain: f64,
    col: usize,
    threshold: f64,
}

/// Midpoint threshold that is guaranteed to separate `lo < hi` even when
/// they are adjacent floats (the naive average can round back onto `hi`).
fn midpoint(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) * 0.5;
    if mid < hi {
        mid
    } else {
        lo
    }
}

fn mean_label(labels: &[f64], idx: &[u32]) -> f64 {
    let sum: f64 = idx.iter().map(|&r| labels[r as usize]).sum();
    sum / idx.len() as f64
}

/// Sum and sum of squared deviations (SSE) of the selected labels.
fn sum_and_sse(labels: &[f64], idx: &[u32]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut sq = 0.0;
    for &r in idx {
        let y = labels[r as usize];
        sum += y;
        sq += y * y;
    }
    (sum, sq - sum * sum / idx.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_all(config: &TreeConfig, feats: &[f64], width: usize, labels: &[f64]) -> RegressionTree {
        let rows = RowsView::new(feats, width);
        let idx: Vec<u32> = (0..rows.rows() as u32).collect();
        let mut rng = SplitMix64::new(7);
        RegressionTree::fit_on_indices(config, rows, labels, &idx, &mut rng)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        // y = 0 for x < 5, y = 10 for x >= 5: one split suffices.
        let feats: Vec<f64> = (0..10).map(f64::from).collect();
        let labels: Vec<f64> = feats
            .iter()
            .map(|&x| if x < 5.0 { 0.0 } else { 10.0 })
            .collect();
        let cfg = TreeConfig {
            min_samples_leaf: 1,
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let tree = fit_all(&cfg, &feats, 1, &labels);
        for (x, y) in feats.iter().zip(&labels) {
            assert_eq!(tree.predict(&[*x]), *y);
        }
        assert_eq!(tree.n_leaves(), 2, "a single split explains the step");
    }

    #[test]
    fn respects_max_depth_zero() {
        let feats: Vec<f64> = (0..8).map(f64::from).collect();
        let labels = feats.clone();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = fit_all(&cfg, &feats, 1, &labels);
        assert_eq!(tree.n_nodes(), 1);
        let mean = labels.iter().sum::<f64>() / labels.len() as f64;
        assert!((tree.predict(&[3.0]) - mean).abs() < 1e-12);
    }

    #[test]
    fn splits_on_the_informative_column() {
        // Column 0 is noise-free signal, column 1 is constant.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            feats.extend_from_slice(&[f64::from(i), 42.0]);
            labels.push(if i < 8 { -1.0 } else { 1.0 });
        }
        let tree = fit_all(&TreeConfig::default(), &feats, 2, &labels);
        assert_eq!(tree.split_col[0], 0, "root must split the signal column");
        assert_eq!(tree.predict(&[2.0, 42.0]), -1.0);
        assert_eq!(tree.predict(&[13.0, 42.0]), 1.0);
    }

    #[test]
    fn refitting_identical_inputs_is_deterministic() {
        let mut rng = SplitMix64::new(99);
        let n = 64;
        let width = 5;
        let feats: Vec<f64> = (0..n * width).map(|_| rng.next_f64()).collect();
        let labels: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
        let cfg = TreeConfig {
            feature_candidates: Some(2),
            ..TreeConfig::default()
        };
        let rows = RowsView::new(&feats, width);
        let idx: Vec<u32> = (0..n as u32).collect();
        let a = RegressionTree::fit_on_indices(&cfg, rows, &labels, &idx, &mut SplitMix64::new(5));
        let b = RegressionTree::fit_on_indices(&cfg, rows, &labels, &idx, &mut SplitMix64::new(5));
        assert_eq!(a.split_col, b.split_col);
        assert_eq!(a.threshold, b.threshold);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn parts_round_trip_preserves_predictions() {
        let feats: Vec<f64> = (0..32).map(f64::from).collect();
        let labels: Vec<f64> = feats.iter().map(|&x| (x * 0.7).sin()).collect();
        let tree = fit_all(&TreeConfig::default(), &feats, 1, &labels);
        let (sc, th, l, r, v) = tree.parts();
        let rebuilt = RegressionTree::from_parts(
            1,
            sc.to_vec(),
            th.to_vec(),
            l.to_vec(),
            r.to_vec(),
            v.to_vec(),
        )
        .unwrap();
        for x in &feats {
            assert_eq!(
                tree.predict(&[*x]).to_bits(),
                rebuilt.predict(&[*x]).to_bits()
            );
        }
    }

    #[test]
    fn from_parts_rejects_malformed_trees() {
        // Empty.
        assert!(matches!(
            RegressionTree::from_parts(1, vec![], vec![], vec![], vec![], vec![]),
            Err(ModelImportError::Empty)
        ));
        // Array length drift.
        assert!(matches!(
            RegressionTree::from_parts(1, vec![LEAF], vec![0.0], vec![0], vec![0], vec![]),
            Err(ModelImportError::LengthMismatch { field: "value", .. })
        ));
        // Split column outside the width.
        assert!(matches!(
            RegressionTree::from_parts(
                1,
                vec![5, LEAF, LEAF],
                vec![0.5; 3],
                vec![1, 0, 0],
                vec![2, 0, 0],
                vec![0.0; 3]
            ),
            Err(ModelImportError::SplitColOutOfRange { node: 0, col: 5 })
        ));
        // Self-referencing child would loop forever in predict.
        assert!(matches!(
            RegressionTree::from_parts(
                1,
                vec![0, LEAF],
                vec![0.5, 0.0],
                vec![0, 0],
                vec![1, 0],
                vec![0.0, 1.0]
            ),
            Err(ModelImportError::BadChild { node: 0, child: 0 })
        ));
        // Child index past the end.
        assert!(matches!(
            RegressionTree::from_parts(
                1,
                vec![0, LEAF],
                vec![0.5, 0.0],
                vec![1, 0],
                vec![9, 0],
                vec![0.0, 1.0]
            ),
            Err(ModelImportError::BadChild { node: 0, child: 9 })
        ));
        // NaN leaf value.
        assert!(matches!(
            RegressionTree::from_parts(1, vec![LEAF], vec![0.0], vec![0], vec![0], vec![f64::NAN]),
            Err(ModelImportError::NonFinite { node: 0 })
        ));
    }

    #[test]
    fn midpoint_always_separates() {
        let lo = 1.0_f64;
        let hi = lo + f64::EPSILON; // adjacent representable values near 1
        let m = midpoint(lo, hi);
        assert!(lo <= m && m < hi);
    }
}
