//! The training-data contract: [`TrainingSet`] (a labelled plan-vector
//! matrix that knows its own [`FeatureLayout`]) and [`TrainingSource`]
//! (anything that can produce one on demand).
//!
//! The trait is the seam between *model fitting* and *label provenance*:
//! `Model::fit_set` and the experiment binaries consume a `TrainingSet`
//! and never care whether its labels came from direct simulator calls
//! ([`crate::training::SimulatorSource`]) or from TDGEN's interpolated
//! curves (`robopt_tdgen::TdgenGenerator`). Both implement
//! [`TrainingSource`]; swapping one for the other is a one-line change at
//! every call site. The trait is object-safe — harnesses hold
//! `&mut dyn TrainingSource` to sweep over sources.

use robopt_vector::{FeatureLayout, RowsView};

/// A labelled training matrix: `len()` rows of `layout.width` features,
/// with labels in both log space (what models fit) and raw seconds (what
/// q-error and end-to-end comparisons need).
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// The Fig-5 layout every row is encoded with. Carrying it here (not
    /// as a side-channel argument) is what lets `fit_set` check width
    /// agreement and lets sources be swapped without re-plumbing.
    pub layout: FeatureLayout,
    /// Row-major `len() * layout.width` feature matrix.
    pub rows: Vec<f64>,
    /// Fit targets: `ln(1 + seconds)` per row.
    pub labels: Vec<f64>,
    /// Runtime in seconds per row (simulated or interpolated).
    pub seconds: Vec<f64>,
}

impl TrainingSet {
    /// An empty set over `layout`.
    pub fn empty(layout: FeatureLayout) -> TrainingSet {
        TrainingSet::with_capacity(layout, 0)
    }

    /// An empty set with room for `n` rows.
    pub fn with_capacity(layout: FeatureLayout, n: usize) -> TrainingSet {
        TrainingSet {
            layout,
            rows: Vec::with_capacity(n * layout.width),
            labels: Vec::with_capacity(n),
            seconds: Vec::with_capacity(n),
        }
    }

    /// Feature row width (`layout.width`).
    #[inline]
    pub fn width(&self) -> usize {
        self.layout.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the set has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Append one row labelled with a *measured* runtime: the fit target
    /// is derived as `ln(1 + seconds)`.
    pub fn push_simulated(&mut self, feats: &[f64], seconds: f64) {
        self.push_labelled(feats, seconds.ln_1p(), seconds);
    }

    /// Append one row with an explicit log-space label (TDGEN's
    /// interpolated rows carry a synthesized label, not a measurement;
    /// `seconds` is its inverse transform).
    pub fn push_labelled(&mut self, feats: &[f64], label: f64, seconds: f64) {
        assert_eq!(feats.len(), self.layout.width, "feature row width mismatch");
        self.rows.extend_from_slice(feats);
        self.labels.push(label);
        self.seconds.push(seconds);
    }

    /// Borrow the feature matrix as a [`RowsView`].
    pub fn rows_view(&self) -> RowsView<'_> {
        RowsView::new(&self.rows, self.layout.width)
    }

    /// The first `n` rows as an independent set — the Fig-9 sweep trains
    /// on growing prefixes of one draw so that each size strictly extends
    /// the previous one.
    pub fn truncated(&self, n: usize) -> TrainingSet {
        assert!(
            n <= self.len(),
            "cannot truncate {} rows to {n}",
            self.len()
        );
        TrainingSet {
            layout: self.layout,
            rows: self.rows[..n * self.layout.width].to_vec(),
            labels: self.labels[..n].to_vec(),
            seconds: self.seconds[..n].to_vec(),
        }
    }

    /// Convert a log-space prediction back to seconds (inverse of the
    /// label transform, clamped at zero).
    pub fn label_to_seconds(label: f64) -> f64 {
        (label.exp() - 1.0).max(0.0)
    }
}

/// A producer of labelled training data.
///
/// Implementations must be deterministic: a source built from the same
/// configuration (seed included) yields bit-identical sets for the same
/// call sequence. `generate` takes `&mut self` because successive calls
/// continue the source's random stream — two `generate(n)` calls on one
/// source produce disjoint draws, while two fresh sources with equal
/// seeds reproduce each other.
pub trait TrainingSource {
    /// The feature layout every generated row is encoded with.
    fn layout(&self) -> FeatureLayout;

    /// Produce exactly `n` labelled rows.
    fn generate(&mut self, n: usize) -> TrainingSet;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FeatureLayout {
        FeatureLayout::new(2, 24)
    }

    #[test]
    fn push_simulated_derives_the_log_label() {
        let l = layout();
        let mut set = TrainingSet::empty(l);
        let row = vec![1.0; l.width];
        set.push_simulated(&row, 9.0);
        assert_eq!(set.len(), 1);
        assert!((set.labels[0] - 10.0_f64.ln()).abs() < 1e-12);
        assert_eq!(set.seconds[0], 9.0);
        assert!((TrainingSet::label_to_seconds(set.labels[0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rows_are_rejected() {
        let mut set = TrainingSet::empty(layout());
        set.push_simulated(&[1.0, 2.0], 1.0);
    }

    #[test]
    fn truncated_is_a_strict_prefix() {
        let l = layout();
        let mut set = TrainingSet::empty(l);
        for i in 0..4 {
            set.push_simulated(&vec![i as f64; l.width], i as f64 + 1.0);
        }
        let half = set.truncated(2);
        assert_eq!(half.len(), 2);
        assert_eq!(half.rows, set.rows[..2 * l.width]);
        assert_eq!(half.labels, set.labels[..2]);
        assert_eq!(half.layout, set.layout);
    }
}
