//! Simulator-labelled training data (the paper's TDGEN role, §V).
//!
//! [`simulator_training_set`] draws (plan, platform-assignment) pairs from
//! a fixed pool of workload shapes, vectorizes each complete plan with the
//! production Fig-5 encoder, and labels it with the
//! [`RuntimeSimulator`]'s ground-truth seconds. Labels are stored as
//! `ln(1 + seconds)`: the runtime surface spans five orders of magnitude,
//! and fitting in log space keeps the squared-error objective from being
//! dominated by the handful of slowest plans, while the monotone map
//! preserves exactly the ranking the enumerator consumes.
//!
//! The pool mixes the Fig-1 workloads (WordCount, TPC-H Q3, synthetic
//! pipelines) across input scales with random connected DAGs of 3–20
//! operators, so models also see rows resembling the *small subplans* the
//! enumerator costs mid-search, not just full-size plans.

use robopt_core::vectorize::vectorize_assignment;
use robopt_plan::rng::SplitMix64;
use robopt_plan::{workloads, LogicalPlan};
use robopt_platforms::{PlatformRegistry, RuntimeSimulator};
use robopt_vector::{FeatureLayout, RowsView};

/// Knobs for [`simulator_training_set`].
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Number of labelled rows to draw.
    pub n_samples: usize,
    /// Seed for plan choice, assignment sampling and simulator noise.
    pub seed: u64,
    /// Simulator noise amplitude in `[0, 1)` (0 = noiseless labels).
    pub noise: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            n_samples: 2000,
            seed: 0x007d_6e11,
            noise: 0.05,
        }
    }
}

/// A labelled training matrix: `n` rows of `width` features, with labels
/// in both log space (what models fit) and raw seconds (what q-error and
/// end-to-end comparisons need).
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// Feature row width.
    pub width: usize,
    /// Row-major `len() * width` feature matrix.
    pub feats: Vec<f64>,
    /// Fit targets: `ln(1 + seconds)` per row.
    pub labels: Vec<f64>,
    /// Raw simulated runtime in seconds per row.
    pub seconds: Vec<f64>,
}

impl TrainingSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the set has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrow the feature matrix as a [`RowsView`].
    pub fn rows_view(&self) -> RowsView<'_> {
        RowsView::new(&self.feats, self.width)
    }

    /// The first `n` rows as an independent set — the Fig-9 sweep trains
    /// on growing prefixes of one draw so that each size strictly extends
    /// the previous one.
    pub fn truncated(&self, n: usize) -> TrainingSet {
        assert!(
            n <= self.len(),
            "cannot truncate {} rows to {n}",
            self.len()
        );
        TrainingSet {
            width: self.width,
            feats: self.feats[..n * self.width].to_vec(),
            labels: self.labels[..n].to_vec(),
            seconds: self.seconds[..n].to_vec(),
        }
    }

    /// Convert a log-space prediction back to seconds (inverse of the
    /// label transform, clamped at zero).
    pub fn label_to_seconds(label: f64) -> f64 {
        (label.exp() - 1.0).max(0.0)
    }
}

/// The fixed plan pool the sampler cycles through.
fn plan_pool(rng: &mut SplitMix64) -> Vec<LogicalPlan> {
    let mut pool = vec![
        workloads::wordcount(1e4),
        workloads::wordcount(1e5),
        workloads::wordcount(1e6),
        workloads::wordcount(1e7),
        workloads::wordcount(1e8),
        workloads::tpch_q3(1e4),
        workloads::tpch_q3(1e5),
        workloads::tpch_q3(1e6),
        workloads::synthetic_pipeline(10, 1e6),
        workloads::synthetic_pipeline(20, 1e5),
        workloads::synthetic_pipeline(40, 1e4),
    ];
    for n in [3, 5, 8, 12, 16, 20] {
        pool.push(workloads::random_connected_dag(rng, n, 0.15));
    }
    pool
}

/// Draw one *feasible* platform assignment for `plan`: half the draws
/// place everything on one random base platform (falling back per
/// operator where it lacks the kind), half assign uniformly over each
/// operator's available platforms. Returns `None` if `attempts` draws all
/// came out infeasible (no conversion path between some pair).
fn sample_assignment(
    plan: &LogicalPlan,
    registry: &PlatformRegistry,
    sim: &RuntimeSimulator<'_>,
    rng: &mut SplitMix64,
    attempts: usize,
) -> Option<(Vec<u8>, f64)> {
    let k = registry.len();
    let mut assign = vec![0u8; plan.n_ops()];
    for _ in 0..attempts {
        let base = if rng.next_f64() < 0.5 {
            Some(rng.gen_range(k))
        } else {
            None
        };
        for op in 0..plan.n_ops() as u32 {
            let kind = plan.op(op).kind;
            let avail: Vec<u8> = registry
                .available_platforms(kind)
                .map(|p| p.raw())
                .collect();
            debug_assert!(!avail.is_empty(), "registry leaves {kind:?} unplaceable");
            assign[op as usize] = match base {
                Some(b) if avail.contains(&(b as u8)) => b as u8,
                _ => avail[rng.gen_range(avail.len())],
            };
        }
        let seconds = sim.simulate_raw(plan, &assign);
        if seconds.is_finite() {
            return Some((assign, seconds));
        }
    }
    None
}

/// Sample `cfg.n_samples` labelled plan vectors from the simulator.
///
/// Deterministic for a fixed `(registry, layout, cfg)`; the same config
/// with a different seed yields an independent draw (held-out sets).
pub fn simulator_training_set(
    registry: &PlatformRegistry,
    layout: &FeatureLayout,
    cfg: &SamplerConfig,
) -> TrainingSet {
    assert_eq!(layout.n_platforms, registry.len());
    let mut rng = SplitMix64::new(cfg.seed);
    let sim = RuntimeSimulator::new(registry, cfg.seed ^ 0x5157).with_noise(cfg.noise);
    let pool = plan_pool(&mut rng);
    let mut set = TrainingSet {
        width: layout.width,
        feats: Vec::with_capacity(cfg.n_samples * layout.width),
        labels: Vec::with_capacity(cfg.n_samples),
        seconds: Vec::with_capacity(cfg.n_samples),
    };
    let mut feats_buf = Vec::new();
    let mut i = 0usize;
    while set.len() < cfg.n_samples {
        // Round-robin over the pool keeps every workload shape equally
        // represented at every truncation prefix.
        let plan = &pool[i % pool.len()];
        i += 1;
        let Some((assign, seconds)) = sample_assignment(plan, registry, &sim, &mut rng, 16) else {
            continue;
        };
        vectorize_assignment(plan, layout, &assign, &mut feats_buf);
        set.feats.extend_from_slice(&feats_buf);
        set.labels.push(seconds.ln_1p());
        set.seconds.push(seconds);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::N_OPERATOR_KINDS;

    fn named_setup() -> (PlatformRegistry, FeatureLayout) {
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        (registry, layout)
    }

    #[test]
    fn sampler_is_deterministic_and_fills_the_request() {
        let (registry, layout) = named_setup();
        let cfg = SamplerConfig {
            n_samples: 64,
            ..SamplerConfig::default()
        };
        let a = simulator_training_set(&registry, &layout, &cfg);
        let b = simulator_training_set(&registry, &layout, &cfg);
        assert_eq!(a.len(), 64);
        assert_eq!(a.feats, b.feats);
        assert_eq!(a.labels, b.labels);
        assert!(a.seconds.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn different_seeds_draw_different_sets() {
        let (registry, layout) = named_setup();
        let a = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig {
                n_samples: 32,
                seed: 1,
                noise: 0.0,
            },
        );
        let b = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig {
                n_samples: 32,
                seed: 2,
                noise: 0.0,
            },
        );
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn truncation_is_a_strict_prefix() {
        let (registry, layout) = named_setup();
        let cfg = SamplerConfig {
            n_samples: 48,
            ..SamplerConfig::default()
        };
        let full = simulator_training_set(&registry, &layout, &cfg);
        let half = full.truncated(24);
        assert_eq!(half.len(), 24);
        assert_eq!(half.feats, full.feats[..24 * full.width]);
        assert_eq!(half.labels, full.labels[..24]);
    }

    #[test]
    fn labels_are_log_transformed_seconds() {
        let (registry, layout) = named_setup();
        let set = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig {
                n_samples: 16,
                seed: 9,
                noise: 0.0,
            },
        );
        for (label, seconds) in set.labels.iter().zip(&set.seconds) {
            assert!((label - seconds.ln_1p()).abs() < 1e-12);
            assert!((TrainingSet::label_to_seconds(*label) - seconds).abs() < 1e-9 * seconds);
        }
    }
}
