//! Simulator-labelled training data — the *direct labelling* baseline the
//! paper's TDGEN is measured against (§V).
//!
//! [`SimulatorSource`] draws (plan, platform-assignment) pairs from a
//! fixed pool of workload shapes, vectorizes each complete plan with the
//! production Fig-5 encoder, and labels it with the
//! [`RuntimeSimulator`]'s ground-truth seconds — **one simulator call per
//! row**, which is exactly the label-collection cost TDGEN's interpolation
//! amortizes away. Labels are stored as `ln(1 + seconds)`: the runtime
//! surface spans five orders of magnitude, and fitting in log space keeps
//! the squared-error objective from being dominated by the handful of
//! slowest plans, while the monotone map preserves exactly the ranking the
//! enumerator consumes.
//!
//! The pool mixes the Fig-1 workloads (WordCount, TPC-H Q3, synthetic
//! pipelines) across input scales with random connected DAGs of 3–20
//! operators, so models also see rows resembling the *small subplans* the
//! enumerator costs mid-search, not just full-size plans.
//!
//! Both this source and `robopt_tdgen::TdgenGenerator` implement
//! [`TrainingSource`], so everything downstream of label generation is
//! source-agnostic.

use robopt_core::vectorize::vectorize_assignment;
use robopt_plan::rng::SplitMix64;
use robopt_plan::{workloads, LogicalPlan};
use robopt_platforms::{ExecutionBackend, PlatformRegistry, RuntimeSimulator};
use robopt_vector::FeatureLayout;

use crate::source::{TrainingSet, TrainingSource};

/// Knobs for [`SimulatorSource`], assembled builder-style like
/// `robopt_core::EnumOptions` (and mirrored by `TdgenConfig` in
/// `robopt_tdgen`, so the two sources stay drop-in interchangeable).
///
/// ```
/// # use robopt_ml::SamplerConfig;
/// let cfg = SamplerConfig::new().with_seed(7).with_noise(0.1);
/// assert_eq!(cfg.seed(), 7);
/// assert_eq!(cfg.noise(), 0.1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    seed: u64,
    noise: f64,
}

impl SamplerConfig {
    /// The default configuration: fixed seed, 5% label noise.
    pub fn new() -> Self {
        SamplerConfig {
            seed: 0x007d_6e11,
            noise: 0.05,
        }
    }

    /// Seed for plan choice, assignment sampling and simulator noise.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulator noise amplitude in `[0, 1)` (0 = noiseless labels).
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise amplitude in [0, 1)");
        self.noise = noise;
        self
    }

    /// The configured seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured noise amplitude.
    #[inline]
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::new()
    }
}

/// The fixed plan pool the sampler cycles through.
fn plan_pool(rng: &mut SplitMix64) -> Vec<LogicalPlan> {
    let mut pool = vec![
        workloads::wordcount(1e4),
        workloads::wordcount(1e5),
        workloads::wordcount(1e6),
        workloads::wordcount(1e7),
        workloads::wordcount(1e8),
        workloads::tpch_q3(1e4),
        workloads::tpch_q3(1e5),
        workloads::tpch_q3(1e6),
        workloads::synthetic_pipeline(10, 1e6),
        workloads::synthetic_pipeline(20, 1e5),
        workloads::synthetic_pipeline(40, 1e4),
    ];
    for n in [3, 5, 8, 12, 16, 20] {
        pool.push(workloads::random_connected_dag(rng, n, 0.15));
    }
    pool
}

/// Draw one *feasible* platform assignment for `plan`: half the draws
/// place everything on one random base platform (falling back per
/// operator where it lacks the kind), half assign uniformly over each
/// operator's available platforms. Returns `None` if `attempts` draws all
/// came out infeasible (no conversion path between some pair). Labels come
/// from whatever [`ExecutionBackend`] the caller hands in — the analytic
/// simulator prices the draw, the real engine runs it.
fn sample_assignment(
    plan: &LogicalPlan,
    registry: &PlatformRegistry,
    backend: &dyn ExecutionBackend,
    rng: &mut SplitMix64,
    attempts: usize,
) -> Option<(Vec<u8>, f64)> {
    let k = registry.len();
    let mut assign = vec![0u8; plan.n_ops()];
    for _ in 0..attempts {
        let base = if rng.next_f64() < 0.5 {
            Some(rng.gen_range(k))
        } else {
            None
        };
        for op in 0..plan.n_ops() as u32 {
            let kind = plan.op(op).kind;
            let avail: Vec<u8> = registry
                .available_platforms(kind)
                .map(|p| p.raw())
                .collect();
            debug_assert!(!avail.is_empty(), "registry leaves {kind:?} unplaceable");
            assign[op as usize] = match base {
                Some(b) if avail.contains(&(b as u8)) => b as u8,
                _ => avail[rng.gen_range(avail.len())],
            };
        }
        let report = backend.execute_raw(plan, &assign);
        if report.feasible && report.seconds.is_finite() {
            return Some((assign, report.seconds));
        }
    }
    None
}

/// A [`TrainingSource`] labelling every row with a direct simulator call.
///
/// Deterministic for a fixed `(registry, layout, cfg)` and call sequence;
/// the same config with a different seed yields an independent draw
/// (held-out sets). Successive [`TrainingSource::generate`] calls continue
/// the random stream, so one source never repeats rows.
#[derive(Debug, Clone)]
pub struct SimulatorSource<'a> {
    registry: &'a PlatformRegistry,
    layout: FeatureLayout,
    cfg: SamplerConfig,
    rng: SplitMix64,
    pool: Vec<LogicalPlan>,
    cursor: usize,
}

impl<'a> SimulatorSource<'a> {
    /// A source over `registry`, encoding rows with `layout`.
    pub fn new(registry: &'a PlatformRegistry, layout: FeatureLayout, cfg: SamplerConfig) -> Self {
        assert_eq!(
            layout.n_platforms,
            registry.len(),
            "layout platform count must match the registry"
        );
        let mut rng = SplitMix64::new(cfg.seed());
        let pool = plan_pool(&mut rng);
        SimulatorSource {
            registry,
            layout,
            cfg,
            rng,
            pool,
            cursor: 0,
        }
    }

    /// The configuration this source draws under.
    #[inline]
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }
}

impl TrainingSource for SimulatorSource<'_> {
    fn layout(&self) -> FeatureLayout {
        self.layout
    }

    fn generate(&mut self, n: usize) -> TrainingSet {
        // Labels flow through the ExecutionBackend seam; for the simulator
        // `ExecutionReport::seconds` is bit-identical to `simulate_raw`, so
        // this path reproduces the pre-seam training sets exactly.
        let sim = RuntimeSimulator::new(self.registry, self.cfg.seed() ^ 0x5157)
            .with_noise(self.cfg.noise());
        let mut set = TrainingSet::with_capacity(self.layout, n);
        let mut feats_buf = Vec::new();
        while set.len() < n {
            // Round-robin over the pool keeps every workload shape equally
            // represented at every truncation prefix.
            let plan = &self.pool[self.cursor % self.pool.len()];
            self.cursor += 1;
            let Some((assign, seconds)) =
                sample_assignment(plan, self.registry, &sim, &mut self.rng, 16)
            else {
                continue;
            };
            vectorize_assignment(plan, &self.layout, &assign, &mut feats_buf);
            set.push_simulated(&feats_buf, seconds);
        }
        set
    }
}

/// A [`TrainingSource`] labelling rows through **any**
/// [`ExecutionBackend`] — hand it the real engine and every row's label is
/// a *measured* runtime; hand it the simulator and it reproduces
/// [`SimulatorSource`] bit-for-bit (same seed, same pool, same stream).
///
/// Plan/assignment *choice* is deterministic for a fixed `(seed, pool)`;
/// label *values* inherit the backend's contract (modeled = reproducible,
/// measured = wall clock). Use [`BackendSource::with_pool`] to swap in
/// engine-scale workloads — the default pool's largest inputs are sized
/// for the analytic simulator and would dominate measured generation time.
#[derive(Debug)]
pub struct BackendSource<'a> {
    backend: &'a dyn ExecutionBackend,
    registry: &'a PlatformRegistry,
    layout: FeatureLayout,
    rng: SplitMix64,
    pool: Vec<LogicalPlan>,
    cursor: usize,
}

impl<'a> BackendSource<'a> {
    /// A source labelling through `backend`, drawing plans/assignments
    /// from the default [`SimulatorSource`] pool under `seed`.
    pub fn new(
        backend: &'a dyn ExecutionBackend,
        registry: &'a PlatformRegistry,
        layout: FeatureLayout,
        seed: u64,
    ) -> Self {
        assert_eq!(
            layout.n_platforms,
            registry.len(),
            "layout platform count must match the registry"
        );
        let mut rng = SplitMix64::new(seed);
        let pool = plan_pool(&mut rng);
        BackendSource {
            backend,
            registry,
            layout,
            rng,
            pool,
            cursor: 0,
        }
    }

    /// Replace the plan pool (e.g. engine-scale workloads). Panics on an
    /// empty pool — a source that can never produce a row is a caller bug.
    pub fn with_pool(mut self, pool: Vec<LogicalPlan>) -> Self {
        assert!(!pool.is_empty(), "BackendSource pool must be non-empty");
        self.pool = pool;
        self
    }

    /// The backend labelling this source's rows.
    #[inline]
    pub fn backend(&self) -> &dyn ExecutionBackend {
        self.backend
    }
}

impl TrainingSource for BackendSource<'_> {
    fn layout(&self) -> FeatureLayout {
        self.layout
    }

    fn generate(&mut self, n: usize) -> TrainingSet {
        let mut set = TrainingSet::with_capacity(self.layout, n);
        let mut feats_buf = Vec::new();
        while set.len() < n {
            let plan = &self.pool[self.cursor % self.pool.len()];
            self.cursor += 1;
            let Some((assign, seconds)) =
                sample_assignment(plan, self.registry, self.backend, &mut self.rng, 16)
            else {
                continue;
            };
            vectorize_assignment(plan, &self.layout, &assign, &mut feats_buf);
            set.push_simulated(&feats_buf, seconds);
        }
        set
    }
}

/// Sample `n` labelled plan vectors from a fresh [`SimulatorSource`] —
/// convenience for call sites that need exactly one draw.
pub fn simulator_training_set(
    registry: &PlatformRegistry,
    layout: &FeatureLayout,
    cfg: &SamplerConfig,
    n: usize,
) -> TrainingSet {
    SimulatorSource::new(registry, *layout, *cfg).generate(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::N_OPERATOR_KINDS;

    fn named_setup() -> (PlatformRegistry, FeatureLayout) {
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        (registry, layout)
    }

    #[test]
    fn sampler_is_deterministic_and_fills_the_request() {
        let (registry, layout) = named_setup();
        let cfg = SamplerConfig::new();
        let a = simulator_training_set(&registry, &layout, &cfg, 64);
        let b = simulator_training_set(&registry, &layout, &cfg, 64);
        assert_eq!(a.len(), 64);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.labels, b.labels);
        assert!(a.seconds.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn successive_generate_calls_continue_the_stream() {
        let (registry, layout) = named_setup();
        let cfg = SamplerConfig::new().with_seed(5).with_noise(0.0);
        let mut source = SimulatorSource::new(&registry, layout, cfg);
        let first = source.generate(32);
        let second = source.generate(32);
        assert_ne!(
            first.labels, second.labels,
            "one source must not repeat its draw"
        );
        // A fresh source reproduces the concatenation of both calls.
        let both = SimulatorSource::new(&registry, layout, cfg).generate(64);
        assert_eq!(&both.labels[..32], &first.labels[..]);
        assert_eq!(&both.labels[32..], &second.labels[..]);
    }

    #[test]
    fn different_seeds_draw_different_sets() {
        let (registry, layout) = named_setup();
        let a = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig::new().with_seed(1).with_noise(0.0),
            32,
        );
        let b = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig::new().with_seed(2).with_noise(0.0),
            32,
        );
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn truncation_is_a_strict_prefix() {
        let (registry, layout) = named_setup();
        let full = simulator_training_set(&registry, &layout, &SamplerConfig::new(), 48);
        let half = full.truncated(24);
        assert_eq!(half.len(), 24);
        assert_eq!(half.rows, full.rows[..24 * full.width()]);
        assert_eq!(half.labels, full.labels[..24]);
    }

    #[test]
    fn labels_are_log_transformed_seconds() {
        let (registry, layout) = named_setup();
        let set = simulator_training_set(
            &registry,
            &layout,
            &SamplerConfig::new().with_seed(9).with_noise(0.0),
            16,
        );
        for (label, seconds) in set.labels.iter().zip(&set.seconds) {
            assert!((label - seconds.ln_1p()).abs() < 1e-12);
            assert!((TrainingSet::label_to_seconds(*label) - seconds).abs() < 1e-9 * seconds);
        }
    }

    #[test]
    fn backend_source_over_simulator_reproduces_simulator_source() {
        let (registry, layout) = named_setup();
        let cfg = SamplerConfig::new().with_seed(11).with_noise(0.0);
        let direct = simulator_training_set(&registry, &layout, &cfg, 32);
        // Same seed split as SimulatorSource::generate: pool/assignment rng
        // from cfg.seed, simulator noise stream from cfg.seed ^ 0x5157.
        let sim = RuntimeSimulator::new(&registry, cfg.seed() ^ 0x5157).with_noise(cfg.noise());
        let via_seam = BackendSource::new(&sim, &registry, layout, cfg.seed()).generate(32);
        assert_eq!(direct.rows, via_seam.rows);
        assert_eq!(direct.labels, via_seam.labels);
    }

    #[test]
    fn backend_source_honors_a_custom_pool() {
        let (registry, layout) = named_setup();
        let sim = RuntimeSimulator::new(&registry, 3);
        let pool = vec![workloads::wordcount(1e4), workloads::kmeans(1e4, 3)];
        let mut source = BackendSource::new(&sim, &registry, layout, 9).with_pool(pool);
        let set = source.generate(16);
        assert_eq!(set.len(), 16);
        assert!(set.seconds.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn source_is_object_safe() {
        let (registry, layout) = named_setup();
        let mut source = SimulatorSource::new(&registry, layout, SamplerConfig::new());
        let dyn_source: &mut dyn TrainingSource = &mut source;
        assert_eq!(dyn_source.layout().width, layout.width);
        assert_eq!(dyn_source.generate(8).len(), 8);
    }
}
