//! `robopt-ml`: dense-matrix mini-linalg, CART regression trees, a bagged
//! random forest (the paper's cost model), linear-regression baseline and
//! accuracy metrics.
//!
//! **Stub** — lands in a later PR (see ROADMAP.md "Open items"). Until
//! then, `robopt_core::AnalyticOracle` implements the `CostOracle` trait
//! the forest will plug into.

/// Placeholder so dependents can reference the crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct Placeholder;
