//! `robopt-ml`: the learned cost model (paper §IV-C, §V, Fig 9).
//!
//! * [`model`] — the [`Model`] estimator contract (fit / predict over flat
//!   row-major matrices) and [`ModelOracle`], the adapter that puts any
//!   fitted model behind `&dyn robopt_core::CostOracle` so it can drive
//!   enumeration interchangeably with the analytic oracle;
//! * [`tree`] — CART regression trees: variance-reduction splits over
//!   [`robopt_vector::RowsView`] columns, flat struct-of-arrays storage;
//! * [`forest`] — bagged random forest: bootstrap sampling, per-split
//!   feature subsampling, thread-parallel deterministic training, batched
//!   allocation-free inference;
//! * [`linreg`] — closed-form ridge linear regression, the baseline the
//!   forest must beat (Fig 9);
//! * [`metrics`] — MSE / MAE / q-error / Spearman / R² accuracy reports;
//! * [`source`] — the training-data contract: [`TrainingSet`] (labelled
//!   plan-vector matrix carrying its [`robopt_vector::FeatureLayout`]) and
//!   the object-safe [`TrainingSource`] trait every label generator
//!   implements;
//! * [`training`] — [`SimulatorSource`], the direct-labelling source (one
//!   simulator call per row) that TDGEN's interpolated generation is
//!   measured against, with `ln(1 + seconds)` fit targets; and
//!   [`BackendSource`], the same sampler generalized over any
//!   `robopt_platforms::ExecutionBackend` so forests can train on runtimes
//!   *measured* by the real engine.
//!
//! Everything is dependency-free: randomness comes from
//! `robopt_plan::rng::SplitMix64`, parallelism from `std::thread::scope`,
//! and linear algebra from the in-tree Cholesky solver.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod forest;
pub mod linreg;
pub mod metrics;
pub mod model;
pub mod source;
pub mod training;
pub mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use linreg::LinearModel;
pub use metrics::{mae, mse, q_error, r_squared, spearman, Metrics};
pub use model::{DistModel, Model, ModelOracle};
pub use robopt_core::{CostDistribution, RiskPolicy};
pub use source::{TrainingSet, TrainingSource};
pub use training::{simulator_training_set, BackendSource, SamplerConfig, SimulatorSource};
pub use tree::{ModelImportError, RegressionTree, TreeConfig};
