//! Closed-form ridge linear regression — the accuracy baseline the forest
//! must beat (paper Fig 9: linear cost models collapse on non-linear
//! runtime surfaces; see also DESIGN §6.2).
//!
//! Fit solves the normal equations `(XᵀX + λ·diag(XᵀX))·w = Xᵀy` with a
//! bias column appended to `X`, via an in-tree Cholesky factorization.
//! The ridge is *relative* (each diagonal entry scaled by its own
//! magnitude), so the regularization is invariant to per-feature scale —
//! plan-vector columns span ~15 orders of magnitude between operator
//! counts and tuple cardinalities.

use robopt_vector::RowsView;

use crate::model::{DistModel, Model};

/// Ridge-regularized linear model with intercept.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Relative ridge factor λ (0 disables regularization; the default
    /// `1e-6` merely guards rank deficiency from constant columns).
    pub ridge: f64,
    /// `width + 1` coefficients after fitting; last entry is the bias.
    weights: Vec<f64>,
}

impl LinearModel {
    /// An unfitted model with the default ridge.
    pub fn new() -> Self {
        LinearModel {
            ridge: 1e-6,
            weights: Vec::new(),
        }
    }

    /// An unfitted model with an explicit relative ridge factor.
    pub fn with_ridge(ridge: f64) -> Self {
        assert!(ridge >= 0.0, "ridge factor must be non-negative");
        LinearModel {
            ridge,
            weights: Vec::new(),
        }
    }

    /// Fitted coefficients (feature weights, then bias). Empty before fit.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Default for LinearModel {
    fn default() -> Self {
        LinearModel::new()
    }
}

impl Model for LinearModel {
    fn width(&self) -> usize {
        assert!(!self.weights.is_empty(), "LinearModel::fit not called");
        self.weights.len() - 1
    }

    fn fit(&mut self, rows: RowsView<'_>, labels: &[f64]) {
        let n = rows.rows();
        assert_eq!(n, labels.len(), "one label per feature row");
        assert!(n >= 1, "cannot fit on zero samples");
        let w = rows.width();
        // Accumulate XᵀX (symmetric, stored dense row-major, plus a bias
        // column of ones) and Xᵀy.
        let d = w + 1;
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        for (r, &y) in labels.iter().enumerate() {
            let row = rows.row(r);
            for i in 0..w {
                let xi = row[i];
                if xi == 0.0 {
                    continue; // plan vectors are sparse; skip zero terms
                }
                for (j, &xj) in row.iter().enumerate().skip(i) {
                    xtx[i * d + j] += xi * xj;
                }
                xtx[i * d + w] += xi; // bias column is all ones
                xty[i] += xi * y;
            }
            xtx[w * d + w] += 1.0;
            xty[w] += y;
        }
        // Mirror the upper triangle and apply the relative ridge.
        for i in 0..d {
            for j in 0..i {
                xtx[i * d + j] = xtx[j * d + i];
            }
            let diag = xtx[i * d + i];
            // The floor keeps all-zero columns (unused layout cells)
            // invertible instead of producing NaN weights.
            xtx[i * d + i] = diag + self.ridge * diag.max(1.0);
        }
        self.weights = cholesky_solve(&mut xtx, &xty, d);
    }

    fn predict_row(&self, feats: &[f64]) -> f64 {
        let w = self.width();
        debug_assert_eq!(feats.len(), w);
        let mut acc = self.weights[w]; // bias
        for (x, coef) in feats.iter().zip(&self.weights[..w]) {
            acc += x * coef;
        }
        acc
    }
}

// A single closed-form estimator has no ensemble spread: the `DistModel`
// default (zero std, quantiles at the mean) is its exact distribution.
impl DistModel for LinearModel {}

/// Solve `A·x = b` for symmetric positive-definite `A` (destroyed in
/// place) via Cholesky `A = L·Lᵀ` and two triangular substitutions.
fn cholesky_solve(a: &mut [f64], b: &[f64], d: usize) -> Vec<f64> {
    // Factor: L overwrites the lower triangle of `a`.
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[i * d + j];
            for k in 0..j {
                sum -= a[i * d + k] * a[j * d + k];
            }
            if i == j {
                assert!(
                    sum > 0.0,
                    "XtX not positive definite (column {i}); raise the ridge"
                );
                a[i * d + i] = sum.sqrt();
            } else {
                a[i * d + j] = sum / a[j * d + j];
            }
        }
    }
    // Forward: L·z = b.
    let mut x = b.to_vec();
    for i in 0..d {
        for k in 0..i {
            x[i] -= a[i * d + k] * x[k];
        }
        x[i] /= a[i * d + i];
    }
    // Backward: Lᵀ·w = z.
    for i in (0..d).rev() {
        for k in i + 1..d {
            x[i] -= a[k * d + i] * x[k];
        }
        x[i] /= a[i * d + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::rng::SplitMix64;

    #[test]
    fn recovers_an_exact_linear_relationship() {
        // y = 3·x0 - 2·x1 + 5, noise-free: ridge ~0 recovers it.
        let mut rng = SplitMix64::new(3);
        let n = 50;
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let (x0, x1) = (rng.next_f64() * 10.0, rng.next_f64() * 10.0);
            feats.extend_from_slice(&[x0, x1]);
            labels.push(3.0 * x0 - 2.0 * x1 + 5.0);
        }
        let mut model = LinearModel::with_ridge(1e-12);
        model.fit(RowsView::new(&feats, 2), &labels);
        let w = model.weights();
        assert!((w[0] - 3.0).abs() < 1e-6, "slope x0: {}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-6, "slope x1: {}", w[1]);
        assert!((w[2] - 5.0).abs() < 1e-5, "bias: {}", w[2]);
        assert!((model.predict_row(&[1.0, 1.0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn tolerates_constant_and_zero_columns() {
        // Column 1 is always zero, column 2 constant: rank-deficient
        // without the ridge floor.
        let feats = [
            1.0, 0.0, 7.0, //
            2.0, 0.0, 7.0, //
            3.0, 0.0, 7.0, //
            4.0, 0.0, 7.0,
        ];
        let labels = [2.0, 4.0, 6.0, 8.0];
        let mut model = LinearModel::new();
        model.fit(RowsView::new(&feats, 3), &labels);
        let pred = model.predict_row(&[2.5, 0.0, 7.0]);
        assert!(pred.is_finite());
        assert!((pred - 5.0).abs() < 1e-3, "interpolation off: {pred}");
    }
}
