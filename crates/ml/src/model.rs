//! The estimator contract: [`Model`] (fit / predict over flat row-major
//! matrices) and [`ModelOracle`], the adapter that lets any fitted model
//! drive enumeration behind `&dyn robopt_core::CostOracle` (DESIGN §3).
//!
//! The split into two traits is deliberate: `CostOracle` is what the
//! enumerators consume — predict-only, object-safe, batched — while
//! `Model` adds training. `ModelOracle` bridges them, so the analytic
//! oracle, the linear baseline and the random forest are interchangeable
//! at every enumeration call site with no monomorphized duplicates of the
//! enumeration loop.

use robopt_core::{CostDistribution, CostOracle};
use robopt_vector::RowsView;

use crate::source::TrainingSet;

/// A trainable regression model over fixed-width feature rows.
///
/// Implementations must be deterministic: fitting twice on the same rows,
/// labels and configuration yields a model with identical predictions.
/// The trait is object-safe; `&dyn Model` works where needed.
pub trait Model {
    /// Feature width this model was fitted for. Panics if called before
    /// [`Model::fit`].
    fn width(&self) -> usize;

    /// Fit the model on `rows` (one feature row per label). Refitting
    /// replaces the previous state entirely.
    fn fit(&mut self, rows: RowsView<'_>, labels: &[f64]);

    /// Fit on a [`TrainingSet`] produced by any
    /// [`crate::source::TrainingSource`] — the call sites' entry point:
    /// the set carries its matrix, labels and layout together, so no
    /// ad-hoc `(Vec<f64>, Vec<f64>)` pairs travel between the generator
    /// and the model.
    fn fit_set(&mut self, set: &TrainingSet) {
        self.fit(set.rows_view(), &set.labels);
    }

    /// Predict a single row of exactly [`Model::width`] features.
    fn predict_row(&self, feats: &[f64]) -> f64;

    /// Predict every row of `rows` into `out` (cleared first). The default
    /// forwards to [`Model::predict_row`]; implementations override it when
    /// a flat pass over the matrix is cheaper than row-at-a-time calls.
    fn predict_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to a model expecting {}",
            rows.width(),
            self.width()
        );
        out.clear();
        out.reserve(rows.rows());
        for r in 0..rows.rows() {
            out.push(self.predict_row(rows.row(r)));
        }
    }
}

/// A [`Model`] that can report its predictions as *distributions*
/// (DESIGN §12).
///
/// Object-safe like its supertrait. The default implementation is the
/// degenerate point distribution — mean from [`Model::predict_batch`],
/// zero spread, quantiles equal to the mean — which is exactly right for
/// single-estimator models ([`crate::LinearModel`], a lone
/// [`crate::RegressionTree`]): they have no ensemble to disagree with
/// itself. Ensemble models override it, filling mean *and* spread in one
/// batched pass over the members (the forest contract forbids a second
/// traversal), with the mean column bit-identical to `predict_batch`.
pub trait DistModel: Model {
    /// Predict every row of `rows` into `out` as a distribution.
    fn predict_dist_batch(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to a model expecting {}",
            rows.width(),
            self.width()
        );
        self.predict_batch(rows, &mut out.mean);
        out.fill_point_from_mean();
    }
}

/// Adapter making any fitted [`Model`] a [`CostOracle`].
///
/// Predictions are used directly as costs. The training pipeline fits
/// models on `ln(1 + seconds)` labels; the log is strictly monotone, so
/// cost *ranking* — the only thing enumeration consumes — is preserved
/// without converting back to seconds.
#[derive(Debug, Clone)]
pub struct ModelOracle<M> {
    model: M,
}

impl<M: Model> ModelOracle<M> {
    /// Wrap a fitted model. Panics (via [`Model::width`]) if the model has
    /// not been fitted yet — an unfitted oracle can only mislead.
    pub fn new(model: M) -> Self {
        let _ = model.width();
        ModelOracle { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Unwrap back into the model (e.g. to refit).
    pub fn into_model(self) -> M {
        self.model
    }
}

// `CostOracle: Sync` (the parallel enumerator shares one oracle across its
// workers), so the wrapped model must be `Sync` too. Every in-tree model
// is: fitted state is immutable weight/tree tables. The bound is
// `DistModel` (not bare `Model`) so `cost_batch_dist` can forward to the
// model's distributional pass — stable Rust has no specialization to do
// that selectively, and the `DistModel` default makes the stricter bound
// one empty `impl` per point-estimate model.
impl<M: DistModel + Sync> CostOracle for ModelOracle<M> {
    fn width(&self) -> usize {
        self.model.width()
    }

    fn cost_row(&self, feats: &[f64]) -> f64 {
        self.model.predict_row(feats)
    }

    fn cost_batch(&self, rows: RowsView<'_>, out: &mut Vec<f64>) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        self.model.predict_batch(rows, out);
    }

    fn cost_batch_dist(&self, rows: RowsView<'_>, out: &mut CostDistribution) {
        debug_assert_eq!(
            rows.width(),
            self.width(),
            "batch rows of width {} fed to an oracle expecting {}",
            rows.width(),
            self.width()
        );
        self.model.predict_dist_batch(rows, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal model: predicts the sum of the features.
    struct SumModel {
        width: Option<usize>,
    }

    impl Model for SumModel {
        fn width(&self) -> usize {
            self.width.expect("SumModel::fit not called")
        }
        fn fit(&mut self, rows: RowsView<'_>, labels: &[f64]) {
            assert_eq!(rows.rows(), labels.len());
            self.width = Some(rows.width());
        }
        fn predict_row(&self, feats: &[f64]) -> f64 {
            feats.iter().sum()
        }
    }

    // Point estimator: the `DistModel` default (zero spread) is correct.
    impl DistModel for SumModel {}

    #[test]
    fn default_batch_matches_per_row() {
        let feats = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rows = RowsView::new(&feats, 2);
        let mut m = SumModel { width: None };
        m.fit(rows, &[0.0, 0.0, 0.0]);
        let mut out = vec![99.0; 7]; // stale contents must be discarded
        m.predict_batch(rows, &mut out);
        assert_eq!(out, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn model_oracle_is_object_safe_and_forwards() {
        let feats = [1.0, 2.0, 3.0, 4.0];
        let rows = RowsView::new(&feats, 2);
        let mut m = SumModel { width: None };
        m.fit(rows, &[0.0, 0.0]);
        let oracle = ModelOracle::new(m);
        let dyn_oracle: &dyn CostOracle = &oracle;
        assert_eq!(dyn_oracle.width(), 2);
        assert_eq!(dyn_oracle.cost_row(&[5.0, 6.0]), 11.0);
        let mut out = Vec::new();
        dyn_oracle.cost_batch(rows, &mut out);
        assert_eq!(out, vec![3.0, 7.0]);
        // The distributional path is reachable through the same vtable and
        // reports the point model's degenerate spread.
        let mut dist = CostDistribution::new();
        dyn_oracle.cost_batch_dist(rows, &mut dist);
        assert_eq!(dist.mean, vec![3.0, 7.0]);
        assert_eq!(dist.std, vec![0.0, 0.0]);
        assert_eq!(dist.q90, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn wrapping_an_unfitted_model_panics() {
        let _ = ModelOracle::new(SumModel { width: None });
    }
}
