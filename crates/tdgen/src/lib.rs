//! `robopt-tdgen`: the scalable training-data generator (TDGEN, paper §V,
//! Fig 8).
//!
//! Learned cost models need far more labelled plans than real executions
//! can affordably provide. TDGEN closes the gap with three moves:
//!
//! * [`shapes`] — seeded **job-shape templates** (pipeline, fan-in,
//!   fan-out, diamond, iterative) whose operator population is driven by
//!   the `robopt_platforms::PlatformRegistry` availability matrix, and
//!   which instantiate at any input scale;
//! * [`switches`] — **platform-switch pruning**: candidate assignments
//!   whose worst source→sink path exceeds β switches (default 3) are
//!   discarded before any label is paid for;
//! * [`interpolate`] — **runtime interpolation**: the simulator runs only
//!   at a log-spaced knot set of scales per (skeleton, assignment) curve;
//!   a piecewise degree-5 polynomial in log-log space synthesizes labels
//!   everywhere else.
//!
//! [`generator::TdgenGenerator`] composes the three behind
//! `robopt_ml::TrainingSource`, so model-fitting code cannot tell (and
//! does not care) whether labels were simulated or interpolated. The
//! `fig08_tdgen` bench binary measures the resulting simulator-call
//! reduction and label fidelity.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod generator;
pub mod interpolate;
pub mod shapes;
pub mod switches;

pub use generator::{tdgen_training_set, TdgenConfig, TdgenGenerator, TdgenStats};
pub use interpolate::{log_knots, PiecewisePoly, WINDOW};
pub use shapes::{sample_skeleton, JobSkeleton, ShapeKind, SkeletonOp};
pub use switches::{count_assignments, enumerate_assignments, max_switches, sample_assignment};
