//! `robopt-tdgen`: the scalable training-data generator (TDGEN) — synthetic
//! job shapes, operator population, platform-switch pruning (beta = 3), and
//! piecewise degree-5 polynomial runtime interpolation.
//!
//! **Stub** — lands in a later PR (see ROADMAP.md "Open items").

/// Placeholder so dependents can reference the crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct Placeholder;
