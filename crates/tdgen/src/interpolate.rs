//! Piecewise degree-5 polynomial runtime interpolation (paper §V-C).
//!
//! TDGEN executes (simulates) each (skeleton, assignment) pair only at a
//! small log-spaced *knot set* of input cardinalities, fits a piecewise
//! degree-5 polynomial through the knots, and synthesizes labels at every
//! other scale from the fit — that is where the simulator-call reduction
//! comes from. Fitting happens in **log-log space** (`ln scale` against
//! `ln(1 + seconds)`): runtime curves that look violently non-polynomial
//! in linear space (startup floors, `n·log n` shuffles, memory-cliff
//! jumps) are gentle there, and degree 5 over a 6-knot window tracks them
//! to small q-error.
//!
//! The polynomial is kept in Newton divided-difference form, which is
//! exact at its own knots up to roundoff — the property test in
//! `tests/tdgen_training.rs` pins that down.

/// Knots per polynomial piece: degree-5 pieces interpolate 6 points.
pub const WINDOW: usize = 6;

/// A piecewise polynomial through `k` knots, `(k - 1) % (WINDOW - 1) == 0`,
/// one degree-5 Newton-form piece per window of [`WINDOW`] knots; adjacent
/// windows share their boundary knot.
#[derive(Debug, Clone)]
pub struct PiecewisePoly {
    /// Strictly increasing knot abscissae.
    xs: Vec<f64>,
    /// Newton coefficients, [`WINDOW`] per piece.
    coeffs: Vec<f64>,
}

impl PiecewisePoly {
    /// Fit the interpolant through `(xs[i], ys[i])`. Panics unless `xs` is
    /// strictly increasing with a window-compatible length (6, 11, 16, …).
    pub fn fit(xs: &[f64], ys: &[f64]) -> PiecewisePoly {
        assert_eq!(xs.len(), ys.len(), "one ordinate per knot");
        assert!(
            xs.len() >= WINDOW && (xs.len() - 1).is_multiple_of(WINDOW - 1),
            "knot count must be 6, 11, 16, … (got {})",
            xs.len()
        );
        assert!(
            xs.iter().zip(xs.iter().skip(1)).all(|(a, b)| a < b),
            "knot abscissae must be strictly increasing"
        );
        let n_pieces = (xs.len() - 1) / (WINDOW - 1);
        let mut coeffs = Vec::with_capacity(n_pieces * WINDOW);
        for piece in 0..n_pieces {
            let lo = piece * (WINDOW - 1);
            coeffs.extend_from_slice(&newton_coeffs(&xs[lo..lo + WINDOW], &ys[lo..lo + WINDOW]));
        }
        PiecewisePoly {
            xs: xs.to_vec(),
            coeffs,
        }
    }

    /// Evaluate at `x`. Inside the knot range the covering piece is used;
    /// outside, the nearest boundary piece extrapolates.
    pub fn eval(&self, x: f64) -> f64 {
        let n_pieces = self.coeffs.len() / WINDOW;
        // Index of the last piece whose left boundary is <= x.
        let piece = self.xs[..self.xs.len() - 1]
            .iter()
            .step_by(WINDOW - 1)
            .take_while(|&&left| left <= x)
            .count()
            .saturating_sub(1)
            .min(n_pieces - 1);
        let lo = piece * (WINDOW - 1);
        let nodes = &self.xs[lo..lo + WINDOW];
        let c = &self.coeffs[piece * WINDOW..(piece + 1) * WINDOW];
        // Horner in Newton form.
        let mut acc = c[WINDOW - 1];
        for j in (0..WINDOW - 1).rev() {
            acc = acc * (x - nodes[j]) + c[j];
        }
        acc
    }

    /// The knot abscissae.
    #[inline]
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }
}

/// Newton divided-difference coefficients for one window.
// lint:allow(index-literal) fixed-size [f64; WINDOW] arrays, in-bounds by construction
fn newton_coeffs(xs: &[f64], ys: &[f64]) -> [f64; WINDOW] {
    // lint:allow(panic-expect) callers slice exact WINDOW-length windows out of the knot grid
    let mut table: [f64; WINDOW] = ys.try_into().expect("window of 6 ordinates");
    let mut out = [0.0; WINDOW];
    out[0] = table[0];
    for order in 1..WINDOW {
        for i in 0..WINDOW - order {
            table[i] = (table[i + 1] - table[i]) / (xs[i + order] - xs[i]);
        }
        out[order] = table[0];
    }
    out
}

/// `k` log-spaced knots covering `[lo, hi]`: the geometric progression
/// whose endpoints are exactly `lo` and `hi`.
pub fn log_knots(lo: f64, hi: f64, k: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(k >= 2, "need at least both endpoints");
    let (lln, hln) = (lo.ln(), hi.ln());
    (0..k)
        .map(|i| (lln + (hln - lln) * i as f64 / (k - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_window_reproduces_a_degree_5_polynomial_everywhere() {
        let p = |x: f64| 2.0 - x + 0.5 * x.powi(2) + 0.125 * x.powi(5);
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| p(x)).collect();
        let poly = PiecewisePoly::fit(&xs, &ys);
        for i in 0..=50 {
            let x = i as f64 * 0.1;
            assert!(
                (poly.eval(x) - p(x)).abs() < 1e-9 * (1.0 + p(x).abs()),
                "degree-5 data must be reproduced exactly at x = {x}"
            );
        }
    }

    #[test]
    fn multi_window_interpolant_is_exact_at_every_knot() {
        let xs = log_knots(1.0, 1e5, 11);
        let ys: Vec<f64> = xs.iter().map(|x| x.ln().sin() + 0.01 * x.ln()).collect();
        let poly = PiecewisePoly::fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert!(
                (poly.eval(*x) - y).abs() < 1e-9 * (1.0 + y.abs()),
                "interpolant must pass through its knots"
            );
        }
        assert_eq!(poly.knots().len(), 11);
    }

    #[test]
    fn window_boundaries_pick_a_piece_consistently() {
        // Piecewise fit of a smooth function: evaluation just left and
        // right of a shared boundary knot must agree closely even though
        // different pieces serve the two sides.
        let xs: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (0.3 * x).cos()).collect();
        let poly = PiecewisePoly::fit(&xs, &ys);
        let boundary = xs[5];
        let eps = 1e-7;
        let (l, r) = (poly.eval(boundary - eps), poly.eval(boundary + eps));
        assert!((l - r).abs() < 1e-4, "pieces must agree at the boundary");
    }

    #[test]
    fn log_knots_hit_both_endpoints() {
        let ks = log_knots(1e4, 1e9, 11);
        assert_eq!(ks.len(), 11);
        assert!((ks[0] - 1e4).abs() < 1e-6);
        assert!((ks[10] - 1e9).abs() < 1e-3);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "knot count")]
    fn incompatible_knot_counts_are_rejected() {
        let xs: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let ys = vec![0.0; 9];
        PiecewisePoly::fit(&xs, &ys);
    }
}
