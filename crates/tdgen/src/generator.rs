//! The TDGEN generator: shape templates × β-bounded assignments ×
//! interpolated runtime curves, behind the [`TrainingSource`] API.
//!
//! One *curve* is a (skeleton, assignment) pair swept over input scales.
//! The simulator runs only at the log-spaced knot scales; every other row
//! of the curve carries a label synthesized from the piecewise degree-5
//! log-log fit ([`crate::interpolate::PiecewisePoly`]). With the defaults
//! (11 knots, 64 rows per curve) each simulator call yields ~5.8 training
//! rows — the Fig-8 reduction — and [`TdgenStats`] reports the exact
//! ratio achieved.

use robopt_core::vectorize::vectorize_assignment;
use robopt_ml::{TrainingSet, TrainingSource};
use robopt_plan::rng::SplitMix64;
use robopt_platforms::{PlatformRegistry, RuntimeSimulator};
use robopt_vector::FeatureLayout;

use crate::interpolate::{log_knots, PiecewisePoly, WINDOW};
use crate::shapes::{sample_skeleton, ShapeKind};
use crate::switches::sample_assignment;

/// Knobs for [`TdgenGenerator`], assembled builder-style like
/// `robopt_ml::SamplerConfig` and `robopt_core::EnumOptions` — the two
/// training sources keep an identical configuration surface.
///
/// ```
/// # use robopt_tdgen::TdgenConfig;
/// let cfg = TdgenConfig::new().with_seed(7).with_beta(2).with_knots(16);
/// assert_eq!(cfg.beta(), 2);
/// assert_eq!(cfg.knots(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TdgenConfig {
    seed: u64,
    noise: f64,
    beta: usize,
    knots: usize,
    scale_lo: f64,
    scale_hi: f64,
    shape_mix: Vec<ShapeKind>,
    min_ops: usize,
    max_ops: usize,
    assignments_per_skeleton: usize,
    rows_per_curve: usize,
}

impl TdgenConfig {
    /// Paper-flavoured defaults: β = 3, 11 knots over scales
    /// `[1e4, 1e9]`, all five shapes, 4–14 operators (small skeletons
    /// resemble the subplans the enumerator costs mid-search), 4
    /// assignments per skeleton, 64 rows per curve (≈ 5.8 rows per
    /// simulator call).
    pub fn new() -> Self {
        TdgenConfig {
            seed: 0x7d9e_0001,
            noise: 0.05,
            beta: 3,
            knots: 11,
            scale_lo: 1e4,
            scale_hi: 1e9,
            shape_mix: ShapeKind::ALL.to_vec(),
            min_ops: 4,
            max_ops: 14,
            assignments_per_skeleton: 4,
            rows_per_curve: 64,
        }
    }

    /// Seed for skeleton sampling, assignment choice, scale placement and
    /// simulator noise.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulator noise amplitude in `[0, 1)`. Noise is keyed per
    /// (operator, platform), not per scale, so curves stay smooth and
    /// interpolable.
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise amplitude in [0, 1)");
        self.noise = noise;
        self
    }

    /// Maximum platform switches along any source→sink path
    /// (`usize::MAX` disables pruning).
    pub fn with_beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    /// Knot count per curve: the number of scales actually simulated.
    /// Must be window-compatible (6, 11, 16, …).
    pub fn with_knots(mut self, knots: usize) -> Self {
        assert!(
            knots >= WINDOW && (knots - 1).is_multiple_of(WINDOW - 1),
            "knot count must be 6, 11, 16, … (got {knots})"
        );
        self.knots = knots;
        self
    }

    /// Input-scale range `[lo, hi]` (tuples) each curve sweeps.
    pub fn with_scale_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        self.scale_lo = lo;
        self.scale_hi = hi;
        self
    }

    /// Restrict the shape families drawn from (uniformly).
    pub fn with_shape_mix(mut self, mix: &[ShapeKind]) -> Self {
        assert!(!mix.is_empty(), "shape mix must not be empty");
        self.shape_mix = mix.to_vec();
        self
    }

    /// Operator-count range per skeleton (inclusive; shapes raise the
    /// lower end to their structural minimum).
    pub fn with_ops_range(mut self, min_ops: usize, max_ops: usize) -> Self {
        assert!(min_ops >= 3 && max_ops >= min_ops, "need 3 <= min <= max");
        self.min_ops = min_ops;
        self.max_ops = max_ops;
        self
    }

    /// Candidate assignments drawn per skeleton (one curve each).
    pub fn with_assignments_per_skeleton(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one assignment per skeleton");
        self.assignments_per_skeleton = n;
        self
    }

    /// Total rows emitted per curve: `knots` simulated + the rest
    /// interpolated. Must be at least the knot count.
    pub fn with_rows_per_curve(mut self, n: usize) -> Self {
        self.rows_per_curve = n;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
    pub fn noise(&self) -> f64 {
        self.noise
    }
    pub fn beta(&self) -> usize {
        self.beta
    }
    pub fn knots(&self) -> usize {
        self.knots
    }
    /// The swept scale range `(lo, hi)`.
    pub fn scale_range(&self) -> (f64, f64) {
        (self.scale_lo, self.scale_hi)
    }
    pub fn shape_mix(&self) -> &[ShapeKind] {
        &self.shape_mix
    }
    /// The operator-count range `(min, max)`.
    pub fn ops_range(&self) -> (usize, usize) {
        (self.min_ops, self.max_ops)
    }
    pub fn assignments_per_skeleton(&self) -> usize {
        self.assignments_per_skeleton
    }
    pub fn rows_per_curve(&self) -> usize {
        self.rows_per_curve
    }
}

impl Default for TdgenConfig {
    fn default() -> Self {
        TdgenConfig::new()
    }
}

/// Work counters of one [`TdgenGenerator`] — the Fig-8 bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TdgenStats {
    /// Simulator invocations (one per knot per curve).
    pub sim_calls: u64,
    /// Training rows produced (counted when a curve materializes them;
    /// rows buffered for a later `generate` call are already included).
    pub rows: u64,
    /// Curves completed (knot sweep + fit).
    pub curves: u64,
    /// Skeletons sampled.
    pub skeletons: u64,
}

impl TdgenStats {
    /// Rows produced per simulator call — the label-generation speedup
    /// over direct labelling (which is 1 row per call by definition).
    pub fn reduction(&self) -> f64 {
        if self.sim_calls == 0 {
            return 0.0;
        }
        self.rows as f64 / self.sim_calls as f64
    }
}

/// One buffered training row awaiting emission.
#[derive(Debug, Clone)]
struct PendingRow {
    feats: Vec<f64>,
    label: f64,
    seconds: f64,
}

/// The TDGEN [`TrainingSource`]: labels most rows by interpolation.
///
/// Deterministic for a fixed `(registry, layout, cfg)` and call sequence;
/// successive [`TrainingSource::generate`] calls continue the stream
/// (rows left over from a partially-consumed curve are buffered, never
/// dropped, so the reduction statistic reflects all simulated work).
#[derive(Debug, Clone)]
pub struct TdgenGenerator<'a> {
    registry: &'a PlatformRegistry,
    layout: FeatureLayout,
    cfg: TdgenConfig,
    rng: SplitMix64,
    sim_seed: u64,
    stats: TdgenStats,
    pending: Vec<PendingRow>,
}

impl<'a> TdgenGenerator<'a> {
    /// A generator over `registry`, encoding rows with `layout`.
    pub fn new(registry: &'a PlatformRegistry, layout: FeatureLayout, cfg: TdgenConfig) -> Self {
        assert_eq!(
            layout.n_platforms,
            registry.len(),
            "layout platform count must match the registry"
        );
        assert!(
            cfg.rows_per_curve >= cfg.knots,
            "rows per curve ({}) must cover the {} knots",
            cfg.rows_per_curve,
            cfg.knots
        );
        let rng = SplitMix64::new(cfg.seed);
        let sim_seed = cfg.seed ^ 0x51d7;
        TdgenGenerator {
            registry,
            layout,
            cfg,
            rng,
            sim_seed,
            stats: TdgenStats::default(),
            pending: Vec::new(),
        }
    }

    /// The configuration this generator draws under.
    pub fn config(&self) -> &TdgenConfig {
        &self.cfg
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> TdgenStats {
        self.stats
    }

    /// Candidate assignments for one skeleton, **stratified by switch
    /// budget**: the i-th candidate is drawn with `beta` clamped to
    /// `i mod (beta + 1)`, so every skeleton contributes homogeneous
    /// (0-switch) and near-homogeneous curves alongside multi-switch
    /// ones. Optimal plans live in the low-switch region, and a uniform
    /// β-bounded walk almost never lands there — without stratification
    /// the model never learns the region the optimizer queries hardest.
    fn pick_assignments(&mut self, skel: &crate::shapes::JobSkeleton) -> Vec<Vec<u8>> {
        let want = self.cfg.assignments_per_skeleton;
        let beta = self.cfg.beta;
        let mut picked: Vec<Vec<u8>> = Vec::with_capacity(want);
        for i in 0..want {
            let budget = if beta == usize::MAX {
                beta
            } else {
                i % (beta + 1)
            };
            let drawn =
                sample_assignment(skel, self.registry, budget, &mut self.rng, 64).or_else(|| {
                    // A tight budget can be structurally infeasible (e.g.
                    // no single platform covers every kind on a path);
                    // retry at the full β before giving up on this slot.
                    sample_assignment(skel, self.registry, beta, &mut self.rng, 64)
                });
            match drawn {
                Some(a) if !picked.contains(&a) => picked.push(a),
                _ => {}
            }
        }
        picked
    }

    /// Generate one curve for (skeleton, assignment): simulate the knots,
    /// fit the piecewise polynomial, synthesize the interpolated rows.
    /// Returns `false` if any knot simulated to a non-finite runtime.
    fn generate_curve(
        &mut self,
        skel: &crate::shapes::JobSkeleton,
        assign: &[u8],
        sim: &RuntimeSimulator<'_>,
        knot_scales: &[f64],
    ) -> bool {
        let mut ln_xs = Vec::with_capacity(knot_scales.len());
        let mut ys = Vec::with_capacity(knot_scales.len());
        let mut knot_rows = Vec::with_capacity(knot_scales.len());
        for &scale in knot_scales {
            let plan = skel.instantiate(scale);
            let seconds = sim.simulate_raw(&plan, assign);
            self.stats.sim_calls += 1;
            if !seconds.is_finite() {
                return false;
            }
            let mut feats = Vec::with_capacity(self.layout.width);
            vectorize_assignment(&plan, &self.layout, assign, &mut feats);
            ln_xs.push(scale.ln());
            ys.push(seconds.ln_1p());
            knot_rows.push(PendingRow {
                feats,
                label: seconds.ln_1p(),
                seconds,
            });
        }
        let poly = PiecewisePoly::fit(&ln_xs, &ys);
        self.pending.extend(knot_rows);
        // lint:allow(index-literal) the knot grid always holds KNOTS >= 6 abscissae
        let (lln, hln) = (ln_xs[0], ln_xs[ln_xs.len() - 1]);
        for _ in 0..self.cfg.rows_per_curve - knot_scales.len() {
            let ln_s = lln + (hln - lln) * self.rng.next_f64();
            let label = poly.eval(ln_s);
            let seconds = TrainingSet::label_to_seconds(label);
            let plan = skel.instantiate(ln_s.exp());
            let mut feats = Vec::with_capacity(self.layout.width);
            vectorize_assignment(&plan, &self.layout, assign, &mut feats);
            self.pending.push(PendingRow {
                feats,
                label,
                seconds,
            });
        }
        self.stats.curves += 1;
        self.stats.rows += self.cfg.rows_per_curve as u64;
        true
    }

    /// Produce curves until at least `n` rows are buffered.
    fn refill(&mut self, n: usize) {
        let sim = RuntimeSimulator::new(self.registry, self.sim_seed).with_noise(self.cfg.noise);
        let knot_scales = log_knots(self.cfg.scale_lo, self.cfg.scale_hi, self.cfg.knots);
        while self.pending.len() < n {
            let shape = self.cfg.shape_mix[self.rng.gen_range(self.cfg.shape_mix.len())];
            let span = self.cfg.max_ops - self.cfg.min_ops + 1;
            let n_ops = self.cfg.min_ops + self.rng.gen_range(span);
            let skel = sample_skeleton(&mut self.rng, self.registry, shape, n_ops);
            self.stats.skeletons += 1;
            for assign in self.pick_assignments(&skel) {
                self.generate_curve(&skel, &assign, &sim, &knot_scales);
            }
        }
    }
}

impl TrainingSource for TdgenGenerator<'_> {
    fn layout(&self) -> FeatureLayout {
        self.layout
    }

    fn generate(&mut self, n: usize) -> TrainingSet {
        self.refill(n);
        let mut set = TrainingSet::with_capacity(self.layout, n);
        for row in self.pending.drain(..n) {
            set.push_labelled(&row.feats, row.label, row.seconds);
        }
        set
    }
}

/// Generate `n` labelled plan vectors from a fresh [`TdgenGenerator`] —
/// convenience mirroring `robopt_ml::simulator_training_set`.
pub fn tdgen_training_set(
    registry: &PlatformRegistry,
    layout: &FeatureLayout,
    cfg: &TdgenConfig,
    n: usize,
) -> TrainingSet {
    TdgenGenerator::new(registry, *layout, cfg.clone()).generate(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::N_OPERATOR_KINDS;

    fn named_setup() -> (PlatformRegistry, FeatureLayout) {
        let registry = PlatformRegistry::named();
        let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
        (registry, layout)
    }

    fn quick_cfg() -> TdgenConfig {
        TdgenConfig::new()
            .with_knots(6)
            .with_rows_per_curve(24)
            .with_assignments_per_skeleton(2)
            .with_ops_range(5, 8)
    }

    #[test]
    fn generates_the_requested_row_count() {
        let (registry, layout) = named_setup();
        let set = tdgen_training_set(&registry, &layout, &quick_cfg(), 100);
        assert_eq!(set.len(), 100);
        assert_eq!(set.width(), layout.width);
        assert!(set.seconds.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert!(set.labels.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn reduction_beats_direct_labelling() {
        let (registry, layout) = named_setup();
        let mut g = TdgenGenerator::new(&registry, layout, quick_cfg());
        let _ = g.generate(200);
        let stats = g.stats();
        assert!(stats.sim_calls > 0 && stats.curves > 0 && stats.skeletons > 0);
        // 24 rows per 6-knot curve: exactly 4 rows per sim call once
        // buffered rows are accounted; emitted-row reduction is below
        // that only by the still-buffered remainder.
        assert!(
            stats.reduction() > 2.0,
            "reduction {} must beat direct labelling",
            stats.reduction()
        );
    }

    #[test]
    fn successive_calls_continue_the_stream() {
        let (registry, layout) = named_setup();
        let cfg = quick_cfg().with_seed(9);
        let mut g = TdgenGenerator::new(&registry, layout, cfg.clone());
        let first = g.generate(40);
        let second = g.generate(40);
        assert_ne!(first.labels, second.labels, "no repeated draws");
        let both = TdgenGenerator::new(&registry, layout, cfg).generate(80);
        assert_eq!(&both.labels[..40], &first.labels[..]);
        assert_eq!(&both.labels[40..], &second.labels[..]);
    }

    #[test]
    fn source_is_object_safe_and_swappable() {
        let (registry, layout) = named_setup();
        let mut tdgen = TdgenGenerator::new(&registry, layout, quick_cfg());
        let mut direct =
            robopt_ml::SimulatorSource::new(&registry, layout, robopt_ml::SamplerConfig::new());
        let sources: [&mut dyn TrainingSource; 2] = [&mut tdgen, &mut direct];
        for source in sources {
            let set = source.generate(16);
            assert_eq!(set.len(), 16);
            assert_eq!(set.width(), layout.width);
        }
    }
}
