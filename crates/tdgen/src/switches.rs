//! Platform-switch pruning (paper §V-B).
//!
//! Real cross-platform plans rarely hop platforms more than a few times:
//! every switch pays a conversion, so an optimizer output with many
//! switches along one dataflow path is almost never optimal. TDGEN
//! therefore discards candidate assignments whose **maximum number of
//! platform switches along any source→sink path** exceeds β (default 3),
//! concentrating the label budget on the region of assignment space the
//! optimizer will actually query.
//!
//! The bound composes along paths, so it prunes *prefixes*: once a partial
//! assignment already carries more than β switches on some path, no
//! completion can repair it — the DFS in [`enumerate_assignments`] cuts
//! whole subtrees, and the random walk in [`sample_assignment`] restarts.

use robopt_plan::rng::SplitMix64;
use robopt_platforms::{PlatformId, PlatformRegistry};

use crate::shapes::JobSkeleton;

/// Maximum number of platform switches along any source→sink path of
/// `skeleton` under `assign` (raw platform ids, one per operator).
///
/// Runs the path DP in one pass: skeleton edges are topologically ordered
/// (`from < to`), so `best[v] = max over preds u of best[u] + switch(u,v)`
/// is final by the time `v` is read.
pub fn max_switches(skeleton: &JobSkeleton, assign: &[u8]) -> usize {
    assert_eq!(assign.len(), skeleton.n_ops(), "one platform per operator");
    let mut best = vec![0usize; skeleton.n_ops()];
    let mut overall = 0;
    for &(u, v) in &skeleton.edges {
        debug_assert!(u < v, "skeleton edges must be topologically ordered");
        let (u, v) = (u as usize, v as usize);
        let hop = best[u] + usize::from(assign[u] != assign[v]);
        if hop > best[v] {
            best[v] = hop;
            overall = overall.max(hop);
        }
    }
    overall
}

/// Incremental DFS state: `best[v]` = worst switch count on any path from
/// a source to `v`, over the assigned prefix `0..=v`.
fn prefix_switches(skeleton: &JobSkeleton, assign: &[u8], best: &mut [usize], v: usize) -> usize {
    let mut worst = 0;
    for &(a, b) in &skeleton.edges {
        if b as usize != v {
            continue;
        }
        let hop = best[a as usize] + usize::from(assign[a as usize] != assign[v]);
        worst = worst.max(hop);
    }
    best[v] = worst;
    worst
}

/// Platforms on which operator `op` of `skeleton` may run: available for
/// the kind, and reachable (conversion-wise) from every already-assigned
/// predecessor.
fn placeable(
    skeleton: &JobSkeleton,
    registry: &PlatformRegistry,
    assign: &[u8],
    op: usize,
) -> Vec<u8> {
    registry
        .available_platforms(skeleton.ops[op].kind)
        .filter(|&p| {
            skeleton.edges.iter().all(|&(a, b)| {
                b as usize != op
                    || registry.convertible(PlatformId::from_index(assign[a as usize] as usize), p)
            })
        })
        .map(|p| p.raw())
        .collect()
}

/// Enumerate feasible assignments of `skeleton` whose max source→sink
/// switch count stays ≤ `beta`, stopping after `limit` results.
///
/// Feasible means: every operator on a platform that can execute its kind,
/// every edge between convertible platforms. With `beta = usize::MAX` this
/// is exactly the unpruned feasible set.
pub fn enumerate_assignments(
    skeleton: &JobSkeleton,
    registry: &PlatformRegistry,
    beta: usize,
    limit: usize,
) -> Vec<Vec<u8>> {
    let n = skeleton.n_ops();
    let mut out = Vec::new();
    let mut assign = vec![0u8; n];
    let mut best = vec![0usize; n];
    dfs(
        skeleton,
        registry,
        beta,
        limit,
        0,
        &mut assign,
        &mut best,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    skeleton: &JobSkeleton,
    registry: &PlatformRegistry,
    beta: usize,
    limit: usize,
    op: usize,
    assign: &mut [u8],
    best: &mut [usize],
    out: &mut Vec<Vec<u8>>,
) {
    if out.len() >= limit {
        return;
    }
    if op == skeleton.n_ops() {
        out.push(assign.to_vec());
        return;
    }
    for p in placeable(skeleton, registry, assign, op) {
        assign[op] = p;
        if prefix_switches(skeleton, assign, best, op) <= beta {
            dfs(skeleton, registry, beta, limit, op + 1, assign, best, out);
        }
    }
}

/// Number of feasible β-bounded assignments, capped at `limit`.
pub fn count_assignments(
    skeleton: &JobSkeleton,
    registry: &PlatformRegistry,
    beta: usize,
    limit: usize,
) -> usize {
    enumerate_assignments(skeleton, registry, beta, limit).len()
}

/// Draw one feasible β-bounded assignment by a random topological walk:
/// each operator picks uniformly among the placeable platforms that keep
/// the prefix within β, restarting (up to `attempts` times) when a walk
/// strands itself — an earlier pick can exhaust the switch budget of a
/// path that later forces a switch.
pub fn sample_assignment(
    skeleton: &JobSkeleton,
    registry: &PlatformRegistry,
    beta: usize,
    rng: &mut SplitMix64,
    attempts: usize,
) -> Option<Vec<u8>> {
    let n = skeleton.n_ops();
    let mut assign = vec![0u8; n];
    let mut best = vec![0usize; n];
    'attempt: for _ in 0..attempts {
        for op in 0..n {
            let admissible: Vec<u8> = placeable(skeleton, registry, &assign, op)
                .into_iter()
                .filter(|&p| {
                    assign[op] = p;
                    prefix_switches(skeleton, &assign, &mut best, op) <= beta
                })
                .collect();
            if admissible.is_empty() {
                continue 'attempt;
            }
            assign[op] = admissible[rng.gen_range(admissible.len())];
            // Re-run the DP for the kept pick so `best[op]` is its value,
            // not the last candidate's.
            prefix_switches(skeleton, &assign, &mut best, op);
        }
        return Some(assign);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{sample_skeleton, ShapeKind};

    fn setup(shape: ShapeKind, n: usize) -> (PlatformRegistry, JobSkeleton) {
        let registry = PlatformRegistry::named();
        let mut rng = SplitMix64::new(0xbeef);
        let skel = sample_skeleton(&mut rng, &registry, shape, n);
        (registry, skel)
    }

    #[test]
    fn max_switches_counts_the_worst_path() {
        let (_, skel) = setup(ShapeKind::Pipeline, 5);
        // 5-op chain: alternating platforms touch every edge.
        assert_eq!(max_switches(&skel, &[0, 0, 0, 0, 0]), 0);
        assert_eq!(max_switches(&skel, &[0, 1, 0, 1, 0]), 4);
        assert_eq!(max_switches(&skel, &[0, 0, 1, 1, 1]), 1);
    }

    #[test]
    fn enumerated_assignments_respect_beta() {
        let (registry, skel) = setup(ShapeKind::FanIn, 6);
        for beta in [0, 1, 2] {
            for a in enumerate_assignments(&skel, &registry, beta, 10_000) {
                assert!(max_switches(&skel, &a) <= beta);
            }
        }
    }

    #[test]
    fn beta_counts_are_monotone_and_max_recovers_unpruned() {
        let (registry, skel) = setup(ShapeKind::Diamond, 7);
        let cap = 1_000_000;
        let unpruned = count_assignments(&skel, &registry, usize::MAX, cap);
        let mut prev = 0;
        for beta in 0..6 {
            let c = count_assignments(&skel, &registry, beta, cap);
            assert!(c >= prev, "count must grow with beta");
            assert!(c <= unpruned);
            prev = c;
        }
        // Longest path in a 7-op diamond is short enough that beta = 6
        // can no longer prune anything.
        assert_eq!(count_assignments(&skel, &registry, 6, cap), unpruned);
        assert!(unpruned > 0, "the skeleton must be placeable at all");
    }

    #[test]
    fn sampled_assignments_are_feasible_and_bounded() {
        let (registry, skel) = setup(ShapeKind::Iterative, 8);
        let mut rng = SplitMix64::new(3);
        for _ in 0..32 {
            let a = sample_assignment(&skel, &registry, 2, &mut rng, 64)
                .expect("named registry always admits a 2-switch assignment");
            assert!(max_switches(&skel, &a) <= 2);
            for (op, &p) in a.iter().enumerate() {
                assert!(
                    registry.is_available(skel.ops[op].kind, PlatformId::from_index(p as usize))
                );
            }
        }
    }
}
