//! Job-shape templates (paper §V-A): seeded skeleton generators for the
//! five DAG families TDGEN draws training plans from.
//!
//! A [`JobSkeleton`] is a *scale-free* plan: operator kinds, jittered
//! selectivities/widths and edges are fixed, but source cardinalities are
//! left symbolic. [`JobSkeleton::instantiate`] binds one input scale and
//! seals a concrete [`LogicalPlan`] — the same skeleton instantiated at
//! many scales is what makes runtime interpolation possible, because the
//! runtime of a fixed (skeleton, assignment) pair is a smooth function of
//! scale.
//!
//! Operator population is driven by the [`PlatformRegistry`] availability
//! matrix: a kind's chance of being drawn is proportional to how many
//! platforms can execute it, so the generated corpus over-samples the
//! operators that actually create cross-platform choice and never drifts
//! from what the registry can place.

use robopt_plan::rng::SplitMix64;
use robopt_plan::{LogicalPlan, Operator, OperatorKind};
use robopt_platforms::PlatformRegistry;

/// The five skeleton families (paper Fig 7 sketches the first four; the
/// iterative family models Rheem's loop jobs as an unrolled cache+repeat
/// pipeline, since [`LogicalPlan`] is acyclic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Single source → unary chain → sink.
    Pipeline,
    /// Two source branches merging at a binary juncture, then a tail.
    FanIn,
    /// One source splitting into two branches with independent sinks.
    FanOut,
    /// Split at the source side, re-merge at a binary juncture: the
    /// fan-out and fan-in composed, with a shared origin.
    Diamond,
    /// Cache + repeat-loop pipeline standing in for iterative jobs.
    Iterative,
}

impl ShapeKind {
    /// Every shape, in a stable order (the default `TdgenConfig` mix).
    pub const ALL: [ShapeKind; 5] = [
        ShapeKind::Pipeline,
        ShapeKind::FanIn,
        ShapeKind::FanOut,
        ShapeKind::Diamond,
        ShapeKind::Iterative,
    ];

    /// Stable lowercase name (artifact/report labels).
    pub fn name(self) -> &'static str {
        match self {
            ShapeKind::Pipeline => "pipeline",
            ShapeKind::FanIn => "fan-in",
            ShapeKind::FanOut => "fan-out",
            ShapeKind::Diamond => "diamond",
            ShapeKind::Iterative => "iterative",
        }
    }

    /// Smallest operator count this family can be built with.
    pub fn min_ops(self) -> usize {
        match self {
            ShapeKind::Pipeline => 3,
            ShapeKind::FanIn => 5,
            ShapeKind::FanOut => 5,
            ShapeKind::Diamond => 6,
            ShapeKind::Iterative => 5,
        }
    }
}

/// One operator slot of a skeleton: everything about the operator except
/// the input scale.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonOp {
    pub kind: OperatorKind,
    /// Jittered output/input ratio.
    pub selectivity: f64,
    /// Jittered output tuple width (bytes).
    pub tuple_width: f64,
    /// Fraction of the job's input scale this source contributes
    /// (`0.0` for non-source operators).
    pub source_share: f64,
}

/// A scale-free job skeleton: fixed kinds and topology, symbolic scale.
///
/// Invariant (checked at construction): operators are stored in a
/// topological order, so every edge satisfies `from < to` — the
/// switch-counting DP in [`crate::switches`] relies on it.
#[derive(Debug, Clone)]
pub struct JobSkeleton {
    pub shape: ShapeKind,
    pub ops: Vec<SkeletonOp>,
    pub edges: Vec<(u32, u32)>,
}

impl JobSkeleton {
    /// Number of operator slots.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Bind an input scale (tuples entering the job) and seal a concrete
    /// plan. Each source receives `scale * source_share` tuples.
    pub fn instantiate(&self, scale: f64) -> LogicalPlan {
        assert!(scale > 0.0, "input scale must be positive");
        let mut plan = LogicalPlan::new();
        for slot in &self.ops {
            let op = if slot.kind.is_source() {
                Operator::source(slot.kind, scale * slot.source_share)
            } else {
                Operator::new(slot.kind)
            }
            .with_selectivity(slot.selectivity)
            .with_tuple_width(slot.tuple_width);
            plan.add_op(op);
        }
        for &(u, v) in &self.edges {
            plan.connect(u, v);
        }
        plan.seal();
        plan
    }
}

/// Kinds eligible for unary mid-plan slots. Aggregating kinds with
/// near-zero selectivity (Aggregate, Count, …) are excluded: one of them
/// mid-chain collapses every downstream cardinality to ~0 and the rest of
/// the plan stops contributing signal.
const UNARY_POOL: [OperatorKind; 11] = [
    OperatorKind::Map,
    OperatorKind::FlatMap,
    OperatorKind::MapPartitions,
    OperatorKind::Filter,
    OperatorKind::Sample,
    OperatorKind::Distinct,
    OperatorKind::ReduceByKey,
    OperatorKind::GroupByKey,
    OperatorKind::Sort,
    OperatorKind::ZipWithId,
    OperatorKind::Cache,
];

/// Kinds eligible for binary merge junctures.
const MERGE_POOL: [OperatorKind; 3] = [
    OperatorKind::Join,
    OperatorKind::Union,
    OperatorKind::Intersect,
];

/// Source kinds.
const SOURCE_POOL: [OperatorKind; 3] = [
    OperatorKind::TextFileSource,
    OperatorKind::CollectionSource,
    OperatorKind::TableSource,
];

/// Draw one kind from `pool`, weighted by how many platforms of
/// `registry` can execute it (the availability matrix drives population).
fn weighted_kind(
    rng: &mut SplitMix64,
    registry: &PlatformRegistry,
    pool: &[OperatorKind],
) -> OperatorKind {
    let weights: Vec<usize> = pool
        .iter()
        .map(|&k| registry.available_platforms(k).count())
        .collect();
    let total: usize = weights.iter().sum();
    assert!(total > 0, "registry can place none of the pooled kinds");
    let mut draw = rng.gen_range(total);
    for (&kind, &w) in pool.iter().zip(&weights) {
        if draw < w {
            return kind;
        }
        draw -= w;
    }
    // lint:allow(panic-macro) draw < total = sum(weights) by gen_range's contract, so the loop always returns
    unreachable!("weighted draw exhausted the pool");
}

/// Jitter a kind into a [`SkeletonOp`]: selectivity and tuple width are
/// each scaled by an independent factor in `[0.5, 2)`, with selectivity
/// capped at 8 so no single operator explodes cardinality unboundedly.
fn jittered(rng: &mut SplitMix64, kind: OperatorKind) -> SkeletonOp {
    let jit = |rng: &mut SplitMix64| -> f64 { (2.0_f64).powf(2.0 * rng.next_f64() - 1.0) };
    let selectivity = if kind.is_sink() {
        0.0
    } else {
        (kind.default_selectivity() * jit(rng)).min(8.0)
    };
    SkeletonOp {
        kind,
        selectivity,
        tuple_width: kind.default_tuple_width() * jit(rng),
        source_share: 0.0,
    }
}

/// A jittered source slot contributing `share` of the job scale.
fn source_slot(rng: &mut SplitMix64, registry: &PlatformRegistry, share: f64) -> SkeletonOp {
    let kind = weighted_kind(rng, registry, &SOURCE_POOL);
    SkeletonOp {
        source_share: share,
        ..jittered(rng, kind)
    }
}

/// Append a chain of `n` jittered unary ops after `prev`; returns the last
/// op id of the chain (`prev` if `n == 0`).
fn grow_chain(
    rng: &mut SplitMix64,
    registry: &PlatformRegistry,
    skel: &mut JobSkeleton,
    mut prev: u32,
    n: usize,
) -> u32 {
    for _ in 0..n {
        let kind = weighted_kind(rng, registry, &UNARY_POOL);
        let id = push_op(skel, jittered(rng, kind));
        skel.edges.push((prev, id));
        prev = id;
    }
    prev
}

fn push_op(skel: &mut JobSkeleton, op: SkeletonOp) -> u32 {
    let id = skel.ops.len() as u32;
    skel.ops.push(op);
    id
}

fn push_sink(skel: &mut JobSkeleton, rng: &mut SplitMix64, prev: u32) {
    let id = push_op(skel, jittered(rng, OperatorKind::LocalCallbackSink));
    skel.edges.push((prev, id));
}

/// Sample one skeleton of `shape` with exactly `n_ops` operators
/// (raised to [`ShapeKind::min_ops`] if below it), populated against
/// `registry`'s availability matrix.
pub fn sample_skeleton(
    rng: &mut SplitMix64,
    registry: &PlatformRegistry,
    shape: ShapeKind,
    n_ops: usize,
) -> JobSkeleton {
    let n = n_ops.max(shape.min_ops());
    let mut skel = JobSkeleton {
        shape,
        ops: Vec::with_capacity(n),
        edges: Vec::with_capacity(n + 1),
    };
    match shape {
        ShapeKind::Pipeline => {
            // source → (n-2) unaries → sink.
            let src = push_op(&mut skel, source_slot(rng, registry, 1.0));
            let tail = grow_chain(rng, registry, &mut skel, src, n - 2);
            push_sink(&mut skel, rng, tail);
        }
        ShapeKind::FanIn => {
            // Two source branches → merge → tail → sink. The second source
            // contributes a minority share so branch scales differ.
            let spare = n - 5; // 2 sources + merge + 1 guaranteed branch op + sink
            let left_extra = rng.gen_range(spare + 1);
            let a = push_op(&mut skel, source_slot(rng, registry, 1.0));
            let left = grow_chain(rng, registry, &mut skel, a, 1 + left_extra);
            let minority_share = 0.1 + 0.4 * rng.next_f64();
            let b = push_op(&mut skel, source_slot(rng, registry, minority_share));
            let right = grow_chain(rng, registry, &mut skel, b, 0);
            let merge_kind = weighted_kind(rng, registry, &MERGE_POOL);
            let merge = push_op(&mut skel, jittered(rng, merge_kind));
            skel.edges.push((left, merge));
            skel.edges.push((right, merge));
            let tail = grow_chain(rng, registry, &mut skel, merge, spare - left_extra);
            push_sink(&mut skel, rng, tail);
        }
        ShapeKind::FanOut => {
            // source → two branches → two sinks.
            let spare = n - 5; // source + 1 op per branch + 2 sinks
            let upper_extra = rng.gen_range(spare + 1);
            let src = push_op(&mut skel, source_slot(rng, registry, 1.0));
            let up = grow_chain(rng, registry, &mut skel, src, 1 + upper_extra);
            push_sink(&mut skel, rng, up);
            let down = grow_chain(rng, registry, &mut skel, src, 1 + spare - upper_extra);
            push_sink(&mut skel, rng, down);
        }
        ShapeKind::Diamond => {
            // source → two branches → merge → tail → sink.
            let spare = n - 6; // source + 2 branch ops + merge + 1 tail op + sink
            let upper_extra = rng.gen_range(spare + 1);
            let src = push_op(&mut skel, source_slot(rng, registry, 1.0));
            let up = grow_chain(rng, registry, &mut skel, src, 1 + upper_extra);
            let down = grow_chain(rng, registry, &mut skel, src, 1);
            let merge_kind = weighted_kind(rng, registry, &MERGE_POOL);
            let merge = push_op(&mut skel, jittered(rng, merge_kind));
            skel.edges.push((up, merge));
            skel.edges.push((down, merge));
            let tail = grow_chain(rng, registry, &mut skel, merge, 1 + spare - upper_extra);
            push_sink(&mut skel, rng, tail);
        }
        ShapeKind::Iterative => {
            // source → Cache → RepeatLoop → body → sink (unrolled loop).
            let src = push_op(&mut skel, source_slot(rng, registry, 1.0));
            let cache = push_op(&mut skel, jittered(rng, OperatorKind::Cache));
            skel.edges.push((src, cache));
            let repeat = push_op(&mut skel, jittered(rng, OperatorKind::RepeatLoop));
            skel.edges.push((cache, repeat));
            let tail = grow_chain(rng, registry, &mut skel, repeat, n - 4);
            push_sink(&mut skel, rng, tail);
        }
    }
    debug_assert_eq!(skel.n_ops(), n, "shape builder dropped an operator");
    debug_assert!(
        skel.edges.iter().all(|&(u, v)| u < v),
        "skeleton edges must be topologically ordered"
    );
    skel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xd5a7)
    }

    #[test]
    fn every_shape_builds_connected_sealable_plans() {
        let registry = PlatformRegistry::named();
        let mut rng = rng();
        for shape in ShapeKind::ALL {
            for n in [shape.min_ops(), shape.min_ops() + 3, 14] {
                let skel = sample_skeleton(&mut rng, &registry, shape, n);
                assert_eq!(skel.n_ops(), n.max(shape.min_ops()));
                assert!(skel.edges.iter().all(|&(u, v)| u < v));
                let plan = skel.instantiate(1e6);
                assert!(plan.is_connected(), "{shape:?} plan must be connected");
                assert!(plan.in_tuples().iter().all(|t| t.is_finite()));
            }
        }
    }

    #[test]
    fn instantiate_scales_source_cardinality_linearly() {
        let registry = PlatformRegistry::named();
        let mut rng = rng();
        let skel = sample_skeleton(&mut rng, &registry, ShapeKind::Pipeline, 6);
        let small = skel.instantiate(1e4);
        let large = skel.instantiate(1e6);
        for (s, l) in small.out_card().iter().zip(large.out_card()) {
            if *s > 0.0 {
                assert!(
                    (l / s - 100.0).abs() < 1e-6,
                    "cardinality must scale linearly"
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let registry = PlatformRegistry::named();
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        let x = sample_skeleton(&mut a, &registry, ShapeKind::Diamond, 9);
        let y = sample_skeleton(&mut b, &registry, ShapeKind::Diamond, 9);
        assert_eq!(x.edges, y.edges);
        for (p, q) in x.ops.iter().zip(&y.ops) {
            assert_eq!(p.kind, q.kind);
            assert_eq!(p.selectivity.to_bits(), q.selectivity.to_bits());
            assert_eq!(p.tuple_width.to_bits(), q.tuple_width.to_bits());
        }
    }
}
