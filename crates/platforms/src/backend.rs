//! The **execution backend seam** (DESIGN §11).
//!
//! One object-safe trait that everything downstream of plan construction
//! consumes: the analytic [`RuntimeSimulator`] implements it by pricing the
//! plan, the real engine (`robopt-engine`) implements it by actually moving
//! records. Training sources, the service facade, and the fig binaries all
//! take `&dyn ExecutionBackend`, so measured engine runtimes flow into
//! training rows and accuracy checks through the exact same seam as
//! simulated ones.
//!
//! Contract:
//!
//! * `execute` never panics on a well-formed sealed plan with one
//!   assignment per operator; infeasible placements come back as an
//!   [`ExecutionReport`] with `feasible == false` and infinite `seconds`.
//! * For the simulator, `seconds` is **bit-identical** to
//!   [`RuntimeSimulator::simulate`] — the seam adds observability, never a
//!   different number.
//! * `output_digest` and `output_rows` are pure functions of the plan and
//!   the backend's data semantics; for the engine they are byte-stable
//!   across worker counts, while `seconds` is measured wall clock and
//!   deliberately **excluded** from every determinism digest.

use robopt_plan::LogicalPlan;

use crate::registry::PlatformId;
use crate::simulator::RuntimeSimulator;

/// Per-operator slice of an [`ExecutionReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorReport {
    /// Seconds attributed to this operator (work plus its fixed overhead).
    pub seconds: f64,
    /// Records this operator emitted (modeled or counted).
    pub output_rows: u64,
}

/// What executing one plan under one assignment produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Which backend produced this report (`"simulator"`, `"engine"`).
    pub backend: &'static str,
    /// Total runtime in seconds; `f64::INFINITY` when infeasible.
    pub seconds: f64,
    /// Seconds spent doing operator work.
    pub compute_seconds: f64,
    /// Seconds charged to startup, fixed per-operator costs, cross-platform
    /// conversions, and loop synchronization.
    pub overhead_seconds: f64,
    /// Whether the assignment was executable on its platforms.
    pub feasible: bool,
    /// `true` when `seconds` includes wall-clock measurement (engine);
    /// `false` when fully modeled (simulator).
    pub measured: bool,
    /// Records delivered to terminal operators.
    pub output_rows: u64,
    /// Digest of the terminal output records; `0` for backends that move
    /// no data.
    pub output_digest: u64,
    /// Per-operator breakdown in op-id order; empty when infeasible.
    pub per_op: Vec<OperatorReport>,
}

impl ExecutionReport {
    /// The canonical "this assignment cannot run" report.
    pub fn infeasible(backend: &'static str) -> Self {
        ExecutionReport {
            backend,
            seconds: f64::INFINITY,
            compute_seconds: f64::INFINITY,
            overhead_seconds: f64::INFINITY,
            feasible: false,
            measured: false,
            output_rows: 0,
            output_digest: 0,
            per_op: Vec::new(),
        }
    }
}

/// An execution backend: something that can run (or price) a sealed plan
/// under a per-operator platform assignment. Object-safe on purpose —
/// consumers hold `&dyn ExecutionBackend`.
pub trait ExecutionBackend: std::fmt::Debug {
    /// Stable short name used in reports and artifacts.
    fn name(&self) -> &'static str;

    /// Run `plan` with one [`PlatformId`] per operator (op-id order).
    fn execute(&self, plan: &LogicalPlan, assignments: &[PlatformId]) -> ExecutionReport;

    /// [`ExecutionBackend::execute`] over raw dense platform bytes (the
    /// encoding `EnumMatrix` rows and the ML training sampler carry).
    fn execute_raw(&self, plan: &LogicalPlan, assignments: &[u8]) -> ExecutionReport {
        let ids: Vec<PlatformId> = assignments
            .iter()
            .map(|&b| PlatformId::from_index(b as usize))
            .collect();
        self.execute(plan, &ids)
    }
}

/// Compute/overhead/per-operator observation filled by
/// [`RuntimeSimulator::simulate_profiled`].
#[derive(Debug, Default)]
pub(crate) struct SimProfile {
    pub per_op: Vec<f64>,
    pub compute: f64,
    pub overhead: f64,
}

/// Modeled output rows of operator `i`: propagated cardinality for regular
/// operators, delivered input for sinks (their selectivity is 0 but the
/// records still arrive).
fn modeled_rows(plan: &LogicalPlan, i: usize) -> u64 {
    let op = plan.op(i as u32);
    let card = if op.kind.is_sink() {
        plan.in_tuples().get(i).copied().unwrap_or(0.0)
    } else {
        plan.out_card().get(i).copied().unwrap_or(0.0)
    };
    saturate_rows(card)
}

/// Round a modeled cardinality to whole records (saturating `as` cast; NaN
/// maps to 0).
pub(crate) fn saturate_rows(card: f64) -> u64 {
    card.round().max(0.0) as u64
}

/// Operator ids with no successors — where a plan's data comes to rest.
pub(crate) fn terminal_ops(plan: &LogicalPlan) -> Vec<u32> {
    (0..plan.n_ops() as u32)
        .filter(|&op| plan.succs(op).is_empty())
        .collect()
}

impl ExecutionBackend for RuntimeSimulator<'_> {
    fn name(&self) -> &'static str {
        "simulator"
    }

    // lint:surface(deterministic)
    fn execute(&self, plan: &LogicalPlan, assignments: &[PlatformId]) -> ExecutionReport {
        let mut prof = SimProfile::default();
        let seconds = self.simulate_profiled(plan, assignments, &mut prof);
        if !seconds.is_finite() {
            return ExecutionReport::infeasible(self.name());
        }
        let per_op: Vec<OperatorReport> = (0..plan.n_ops())
            .map(|i| OperatorReport {
                seconds: prof.per_op.get(i).copied().unwrap_or(0.0),
                output_rows: modeled_rows(plan, i),
            })
            .collect();
        let output_rows = terminal_ops(plan)
            .iter()
            .map(|&op| modeled_rows(plan, op as usize))
            .sum();
        ExecutionReport {
            backend: self.name(),
            seconds,
            compute_seconds: prof.compute,
            overhead_seconds: prof.overhead,
            feasible: true,
            measured: false,
            output_rows,
            output_digest: 0,
            per_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PlatformRegistry;
    use robopt_plan::workloads;

    fn uniform(reg: &PlatformRegistry, name: &str, n: usize) -> Vec<PlatformId> {
        vec![reg.by_name(name).unwrap(); n]
    }

    #[test]
    fn simulator_backend_seconds_is_bit_identical_to_simulate() {
        let reg = PlatformRegistry::named();
        for plan in [
            workloads::wordcount(1e6),
            workloads::tpch_q3(1e5),
            workloads::pagerank(1e5, 10),
        ] {
            for name in ["java", "spark"] {
                let assign = uniform(&reg, name, plan.n_ops());
                let sim = RuntimeSimulator::new(&reg, 7).with_noise(0.1);
                let direct = sim.simulate(&plan, &assign);
                let backend: &dyn ExecutionBackend = &sim;
                let report = backend.execute(&plan, &assign);
                assert_eq!(direct.to_bits(), report.seconds.to_bits());
                assert!(report.feasible);
                assert!(!report.measured);
                assert_eq!(report.per_op.len(), plan.n_ops());
                // The breakdown re-sums to the total (modulo fp rounding).
                let parts = report.compute_seconds + report.overhead_seconds;
                assert!((parts - direct).abs() <= 1e-9 * direct.max(1.0));
            }
        }
    }

    #[test]
    fn infeasible_assignment_reports_cleanly() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e5);
        let sim = RuntimeSimulator::new(&reg, 0);
        let backend: &dyn ExecutionBackend = &sim;
        let report = backend.execute(&plan, &uniform(&reg, "postgres", plan.n_ops()));
        assert!(!report.feasible);
        assert!(report.seconds.is_infinite());
        assert!(report.per_op.is_empty());
    }

    #[test]
    fn execute_raw_matches_execute() {
        let reg = PlatformRegistry::named();
        let plan = workloads::kmeans(1e5, 5);
        let sim = RuntimeSimulator::new(&reg, 3).with_noise(0.2);
        let ids = uniform(&reg, "flink", plan.n_ops());
        let raw: Vec<u8> = ids.iter().map(|p| p.raw()).collect();
        let backend: &dyn ExecutionBackend = &sim;
        assert_eq!(
            backend.execute(&plan, &ids),
            backend.execute_raw(&plan, &raw)
        );
    }

    #[test]
    fn repeat_loop_iterations_raise_simulated_cost() {
        let reg = PlatformRegistry::named();
        let sim = RuntimeSimulator::new(&reg, 0);
        let few = workloads::pagerank(1e5, 2);
        let many = workloads::pagerank(1e5, 50);
        let assign = uniform(&reg, "java", few.n_ops());
        assert!(sim.simulate(&many, &assign) > sim.simulate(&few, &assign));
    }
}
