//! `robopt-platforms`: platform registry (Java/Spark/Flink/Postgres/Giraph),
//! execution operators and availability matrix, channel and
//! conversion-operator graphs (COT), and the analytic runtime simulator
//! standing in for the 10-node cluster.
//!
//! **Stub** — lands in a later PR (see ROADMAP.md "Open items"). The
//! enumeration fast path in `robopt-core` currently models platforms as
//! dense ids `0..k` with a conversion cost via the analytic oracle.

/// Placeholder platform identifier until the registry lands.
pub type PlatformId = u8;

/// Placeholder so dependents can reference the crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct Placeholder;
