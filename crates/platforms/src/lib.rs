//! `robopt-platforms`: the platforms subsystem — registry, availability
//! matrix, channel/conversion graph (COT), and the analytic runtime
//! simulator standing in for the paper's 10-node cluster.
//!
//! The optimizer in `robopt-core` enumerates *against a registry* rather
//! than dense platform ids `0..k`:
//!
//! * [`registry::PlatformRegistry`] — the five named platforms of the
//!   paper's testbed ([`PlatformRegistry::named`]: Java streams, Spark,
//!   Flink, Postgres, Giraph), synthetic uniform registries for parity
//!   tests and benchmarks ([`PlatformRegistry::uniform`]), and a builder
//!   for custom setups with up to [`MAX_PLATFORMS`] platforms;
//! * [`availability::AvailabilityMatrix`] — execution-operator
//!   availability per (operator kind × platform): enumeration never
//!   places an operator on a platform that cannot execute it;
//! * [`channels::ConversionGraph`] — direct data-movement channels with
//!   fixed + per-tuple costs and precomputed all-pairs cheapest conversion
//!   paths (multi-hop where no direct channel exists, `None` where
//!   conversion is structurally infeasible);
//! * [`simulator::RuntimeSimulator`] — a deterministic, seeded analytic
//!   runtime model with non-linear per-platform cost curves (startup
//!   floors, `n·log n` shuffle terms, memory cliffs) and a noise hook;
//!   it will generate TDGEN training labels;
//! * [`backend::ExecutionBackend`] — the object-safe execution seam
//!   (DESIGN §11) both the simulator and the real `robopt-engine`
//!   implement, returning an [`backend::ExecutionReport`] with
//!   per-operator timings and output cardinalities.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod availability;
pub mod backend;
pub mod channels;
pub mod registry;
pub mod simulator;

pub use availability::AvailabilityMatrix;
pub use backend::{ExecutionBackend, ExecutionReport, OperatorReport};
pub use channels::{ConversionGraph, ConversionPath, REF_TUPLES};
pub use registry::{Platform, PlatformId, PlatformRegistry, RegistryBuilder, MAX_PLATFORMS};
pub use simulator::RuntimeSimulator;
