//! The analytic **runtime simulator** — the stand-in for the paper's
//! 10-node cluster (DESIGN §2).
//!
//! Given a logical plan and a per-operator platform assignment, the
//! simulator produces a deterministic wall-clock estimate in seconds. Its
//! cost curves are deliberately *non-linear* in cardinality (startup
//! floors, `n·log n` shuffle terms, memory cliffs), so a linear cost model
//! mis-ranks plans exactly as in the paper while a learned model can
//! recover the true shape — this is what will generate TDGEN training
//! labels. The contract (also documented in DESIGN §2):
//!
//! * **Deterministic**: two simulators with equal seeds produce identical
//!   estimates for equal inputs, regardless of call order.
//! * **Seeded noise hook**: [`RuntimeSimulator::with_noise`] applies a
//!   multiplicative perturbation per operator drawn from
//!   (seed, plan, assignment) — off by default (`amplitude = 0`). The
//!   stream is independently seeded per (workload, assignment): two
//!   different candidate plans never share draws (shared draws would
//!   correlate their errors away, understating exactly the risk the
//!   robust policies exist to price), while re-simulating the same
//!   (plan, assignment) reproduces the same draws bit-exactly and the
//!   `amplitude = 0` path never computes the key at all.
//! * **Cost curve** per operator on platform `p`:
//!   `fixed_cost(p)·C_FIXED + in_tuples·tuple_rate(p)·shape(kind)·spill / parallelism(p)`
//!   where `shape` is `log2(2 + in_tuples)` for shuffle-heavy kinds and `1`
//!   otherwise, and `spill = 4` once the operator's working set exceeds the
//!   platform's memory budget.
//! * **Startup** is charged once per *distinct platform* used by the plan.
//! * **Conversions** are charged per dataflow edge whose endpoint platforms
//!   differ, at the cheapest COT path cost for the producer's output
//!   cardinality; an infeasible conversion yields `f64::INFINITY` (the
//!   plan is unexecutable).

use robopt_plan::{rng::mix64, LogicalPlan, OperatorKind};

use crate::backend::SimProfile;
use crate::registry::{PlatformId, PlatformRegistry};

/// Seconds of per-operator fixed overhead per unit of `Platform::fixed_cost`.
/// Public since ISSUE 8: the engine models its deterministic overheads on
/// the same calibration so simulator and engine rank assignments alike.
pub const C_FIXED: f64 = 0.05;

/// Spill multiplier once an operator's working set exceeds platform memory.
const SPILL_FACTOR: f64 = 4.0;

/// Deterministic analytic runtime simulator over a [`PlatformRegistry`].
#[derive(Debug, Clone)]
pub struct RuntimeSimulator<'a> {
    registry: &'a PlatformRegistry,
    seed: u64,
    noise: f64,
}

impl<'a> RuntimeSimulator<'a> {
    /// A noiseless simulator for `registry`, keyed by `seed` (the seed only
    /// matters once noise is enabled).
    pub fn new(registry: &'a PlatformRegistry, seed: u64) -> Self {
        RuntimeSimulator {
            registry,
            seed,
            noise: 0.0,
        }
    }

    /// Enable the multiplicative noise hook: each operator's runtime is
    /// scaled by `1 + amplitude·z` with `z ∈ [-1, 1)` drawn deterministically
    /// from `(seed, plan, assignment, operator, platform)`. `amplitude`
    /// must stay below 1.
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "noise amplitude in [0, 1)");
        self.noise = amplitude;
        self
    }

    /// The registry this simulator prices against.
    #[inline]
    pub fn registry(&self) -> &PlatformRegistry {
        self.registry
    }

    /// Shuffle-heavy kinds pay an `n·log n` term instead of linear scan.
    fn is_shuffle_heavy(kind: OperatorKind) -> bool {
        matches!(
            kind,
            OperatorKind::Sort
                | OperatorKind::Distinct
                | OperatorKind::GroupByKey
                | OperatorKind::ReduceByKey
                | OperatorKind::Join
                | OperatorKind::Intersect
        )
    }

    /// Chain the plan shape (operator kinds, cardinalities) and the full
    /// *resolved* assignment into one run key: the root of this run's
    /// noise stream. Resolving through `assignment` (not raw bytes) keeps
    /// [`RuntimeSimulator::simulate_raw`] bit-identical to
    /// [`RuntimeSimulator::simulate`]. Only computed when noise is on.
    fn run_key(&self, plan: &LogicalPlan, assignment: &impl Fn(usize) -> PlatformId) -> u64 {
        let mut key = mix64(self.seed ^ plan.n_ops() as u64);
        for op in 0..plan.n_ops() {
            let kind = plan.op(op as u32).kind as u64;
            key = mix64(key ^ (kind << 8 | assignment(op).raw() as u64));
            key = mix64(key ^ plan.out_card()[op].to_bits());
        }
        key
    }

    /// Deterministic per-operator noise factor in `[1 - noise, 1 + noise)`,
    /// drawn from the run key (so two different workloads or assignments
    /// never share a draw, even for the same operator slot and platform).
    #[inline]
    fn noise_factor(&self, run_key: u64, op: u32, platform: PlatformId) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        let key = mix64(run_key ^ ((op as u64) << 8 | platform.raw() as u64));
        let unit = (key >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        1.0 + self.noise * (2.0 * unit - 1.0)
    }

    /// Estimated wall-clock seconds of executing `plan` under `assignments`
    /// (one platform per operator, indexed by operator id).
    ///
    /// Returns `f64::INFINITY` for unexecutable plans: an operator placed on
    /// a platform lacking it, or a crossing edge with no conversion path.
    pub fn simulate(&self, plan: &LogicalPlan, assignments: &[PlatformId]) -> f64 {
        assert_eq!(
            assignments.len(),
            plan.n_ops(),
            "one platform assignment per operator"
        );
        self.simulate_with(plan, |i| assignments[i], None)
    }

    /// [`RuntimeSimulator::simulate`] over raw dense platform bytes (the
    /// encoding `EnumMatrix` rows and the ML training sampler carry) —
    /// avoids materializing a `Vec<PlatformId>` per labelled sample.
    pub fn simulate_raw(&self, plan: &LogicalPlan, assignments: &[u8]) -> f64 {
        assert_eq!(
            assignments.len(),
            plan.n_ops(),
            "one platform assignment per operator"
        );
        self.simulate_with(
            plan,
            |i| PlatformId::from_index(assignments[i] as usize),
            None,
        )
    }

    /// [`RuntimeSimulator::simulate`] that additionally fills a
    /// compute/overhead/per-operator breakdown for the [`crate::backend`]
    /// seam. The returned total is bit-identical to [`Self::simulate`] —
    /// profiling only *observes* the accumulation, it never reorders it.
    pub(crate) fn simulate_profiled(
        &self,
        plan: &LogicalPlan,
        assignments: &[PlatformId],
        profile: &mut SimProfile,
    ) -> f64 {
        assert_eq!(
            assignments.len(),
            plan.n_ops(),
            "one platform assignment per operator"
        );
        self.simulate_with(plan, |i| assignments[i], Some(profile))
    }

    fn simulate_with(
        &self,
        plan: &LogicalPlan,
        assignment: impl Fn(usize) -> PlatformId,
        mut profile: Option<&mut SimProfile>,
    ) -> f64 {
        // The noiseless path must not even look at the plan for randomness:
        // `run_key` is skipped entirely, so enabling noise elsewhere can
        // never perturb the unnoised stream.
        let run_key = if self.noise > 0.0 {
            self.run_key(plan, &assignment)
        } else {
            0
        };
        let mut total = 0.0;
        let mut used_mask = 0u8;
        for op in 0..plan.n_ops() as u32 {
            let i = op as usize;
            let p = assignment(i);
            let kind = plan.op(op).kind;
            if !self.registry.is_available(kind, p) {
                return f64::INFINITY;
            }
            used_mask |= 1u8 << p.index();
            let desc = self.registry.platform(p);
            let in_t = plan.in_tuples()[i];
            let shape = if Self::is_shuffle_heavy(kind) {
                (2.0 + in_t).log2()
            } else {
                1.0
            };
            let working_set = in_t * plan.op(op).tuple_width;
            let spill = if working_set > desc.mem_bytes {
                SPILL_FACTOR
            } else {
                1.0
            };
            // Iterative dataflow (`RepeatLoop` with a trip count) re-scans
            // its input every iteration and pays a per-iteration loop
            // synchronization surcharge on the fixed cost. Inert loops
            // (`iterations == 0`) multiply by exactly 1.0, so pre-existing
            // plans keep bit-identical estimates.
            let iters = plan.op(op).iterations;
            let (loop_work, loop_fixed) = if kind == OperatorKind::RepeatLoop && iters >= 1 {
                (f64::from(iters), 1.0 + 0.25 * f64::from(iters))
            } else {
                (1.0, 1.0)
            };
            let work = in_t * desc.tuple_rate * shape * spill * loop_work / desc.parallelism;
            let fixed = desc.fixed_cost * C_FIXED * loop_fixed;
            let noise = self.noise_factor(run_key, op, p);
            total += (fixed + work) * noise;
            if let Some(prof) = profile.as_deref_mut() {
                prof.per_op.push((fixed + work) * noise);
                prof.compute += work * noise;
                prof.overhead += fixed * noise;
            }
        }
        for p in self.registry.ids() {
            if used_mask & (1u8 << p.index()) != 0 {
                total += self.registry.platform(p).startup_s;
                if let Some(prof) = profile.as_deref_mut() {
                    prof.overhead += self.registry.platform(p).startup_s;
                }
            }
        }
        for &(u, v) in plan.edges() {
            let (pu, pv) = (assignment(u as usize), assignment(v as usize));
            if pu != pv {
                let c = self
                    .registry
                    .conversion_cost(pu, pv, plan.out_card()[u as usize]);
                if c.is_infinite() {
                    return f64::INFINITY;
                }
                // Conversion channel costs are calibrated in oracle cost
                // units; one unit ≈ C_FIXED seconds on the simulated cluster.
                total += c * C_FIXED;
                if let Some(prof) = profile.as_deref_mut() {
                    prof.overhead += c * C_FIXED;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robopt_plan::workloads;

    fn uniform_assign(reg: &PlatformRegistry, name: &str, n: usize) -> Vec<PlatformId> {
        vec![reg.by_name(name).unwrap(); n]
    }

    #[test]
    fn equal_seeds_produce_identical_estimates() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e6);
        let assign = uniform_assign(&reg, "spark", plan.n_ops());
        let a = RuntimeSimulator::new(&reg, 7).with_noise(0.1);
        let b = RuntimeSimulator::new(&reg, 7).with_noise(0.1);
        for _ in 0..3 {
            assert_eq!(a.simulate(&plan, &assign), b.simulate(&plan, &assign));
        }
    }

    #[test]
    fn different_seeds_perturb_noisy_estimates_only() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e6);
        let assign = uniform_assign(&reg, "java", plan.n_ops());
        let noiseless_a = RuntimeSimulator::new(&reg, 1).simulate(&plan, &assign);
        let noiseless_b = RuntimeSimulator::new(&reg, 2).simulate(&plan, &assign);
        assert_eq!(
            noiseless_a, noiseless_b,
            "seed must not matter without noise"
        );
        let noisy_a = RuntimeSimulator::new(&reg, 1)
            .with_noise(0.1)
            .simulate(&plan, &assign);
        let noisy_b = RuntimeSimulator::new(&reg, 2)
            .with_noise(0.1)
            .simulate(&plan, &assign);
        assert_ne!(noisy_a, noisy_b, "distinct seeds must perturb noisy runs");
        assert!((noisy_a / noiseless_a - 1.0).abs() <= 0.1 + 1e-9);
    }

    #[test]
    fn simulate_raw_matches_simulate() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e6);
        let sim = RuntimeSimulator::new(&reg, 3).with_noise(0.2);
        let ids = uniform_assign(&reg, "spark", plan.n_ops());
        let raw: Vec<u8> = ids.iter().map(|p| p.raw()).collect();
        assert_eq!(sim.simulate(&plan, &ids), sim.simulate_raw(&plan, &raw));
    }

    #[test]
    fn unavailable_operator_or_missing_conversion_is_infinite() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e5);
        let sim = RuntimeSimulator::new(&reg, 0);
        // TextFileSource is unavailable on Postgres.
        let pg = uniform_assign(&reg, "postgres", plan.n_ops());
        assert!(sim.simulate(&plan, &pg).is_infinite());
        // Postgres -> Giraph has no conversion path; force that crossing.
        let mut mixed = uniform_assign(&reg, "giraph", plan.n_ops());
        mixed[0] = reg.by_name("postgres").unwrap();
        assert!(sim.simulate(&plan, &mixed).is_infinite());
    }

    /// Regression (ISSUE 9): the noise stream must be independently seeded
    /// per (workload, assignment). The old draw keyed only on
    /// (seed, op, platform), so two *different* candidate assignments
    /// shared every draw on their common operators — correlating their
    /// errors away and understating exactly the risk the robust policies
    /// price. And turning noise on must leave the unnoised stream
    /// untouched.
    #[test]
    fn noise_is_independent_per_assignment_and_workload() {
        let reg = PlatformRegistry::named();
        let plan = workloads::wordcount(1e6);
        let n = plan.n_ops();
        let spark = uniform_assign(&reg, "spark", n);
        let mut flipped = spark.clone();
        flipped[0] = reg.by_name("java").unwrap();

        let per_op = |noise: f64, assign: &[PlatformId]| {
            let sim = RuntimeSimulator::new(&reg, 9);
            let sim = if noise > 0.0 {
                sim.with_noise(noise)
            } else {
                sim
            };
            let mut prof = SimProfile::default();
            let total = sim.simulate_profiled(&plan, assign, &mut prof);
            assert!(total.is_finite());
            prof.per_op
        };

        // Noiseless: the shared suffix (ops 1..) is bit-identical across
        // the two assignments — and stays so regardless of the noise knob
        // existing at all.
        let base_a = per_op(0.0, &spark);
        let base_b = per_op(0.0, &flipped);
        assert_eq!(base_a[1..], base_b[1..], "unnoised stream perturbed");

        // Noisy: every shared-suffix operator must draw independently —
        // same op, same platform, different assignment, different factor.
        let noisy_a = per_op(0.2, &spark);
        let noisy_b = per_op(0.2, &flipped);
        for i in 1..n {
            assert_ne!(
                noisy_a[i], noisy_b[i],
                "op {i}: two assignments shared a noise draw"
            );
        }
        // Determinism: re-simulating reproduces the exact bits.
        assert_eq!(noisy_a, per_op(0.2, &spark));

        // Different workloads draw independent streams too: the per-op
        // noise *factors* of two scales must not line up.
        let factors = |scale: f64| -> Vec<f64> {
            let p = workloads::wordcount(scale);
            let a = uniform_assign(&reg, "spark", p.n_ops());
            let mut clean = SimProfile::default();
            let mut noisy = SimProfile::default();
            RuntimeSimulator::new(&reg, 9).simulate_profiled(&p, &a, &mut clean);
            RuntimeSimulator::new(&reg, 9)
                .with_noise(0.2)
                .simulate_profiled(&p, &a, &mut noisy);
            noisy
                .per_op
                .iter()
                .zip(&clean.per_op)
                .map(|(x, y)| x / y)
                .collect()
        };
        assert_ne!(factors(1e6), factors(2e6), "workloads shared a stream");
    }

    #[test]
    fn big_inputs_favor_the_parallel_platform() {
        let reg = PlatformRegistry::named();
        let sim = RuntimeSimulator::new(&reg, 0);
        let small = workloads::wordcount(1e4);
        let big = workloads::wordcount(5e8);
        let java_small = sim.simulate(&small, &uniform_assign(&reg, "java", small.n_ops()));
        let spark_small = sim.simulate(&small, &uniform_assign(&reg, "spark", small.n_ops()));
        let java_big = sim.simulate(&big, &uniform_assign(&reg, "java", big.n_ops()));
        let spark_big = sim.simulate(&big, &uniform_assign(&reg, "spark", big.n_ops()));
        assert!(
            java_small < spark_small,
            "startup floor dominates tiny jobs"
        );
        assert!(spark_big < java_big, "parallelism dominates huge jobs");
    }
}
