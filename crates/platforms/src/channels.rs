//! The channel / conversion-operator graph (COT) with precomputed
//! all-pairs cheapest conversion paths.
//!
//! Moving an intermediate dataset from one platform to another traverses a
//! *conversion path*: one direct channel (e.g. Spark RDD → Postgres COPY)
//! or a multi-hop chain through intermediate formats when no direct channel
//! exists. Each direct channel carries a fixed setup cost plus a per-tuple
//! cost; a path sums both legs. All-pairs cheapest paths are precomputed at
//! registry build time (Floyd–Warshall, ranking paths by their total cost
//! at a reference cardinality of [`REF_TUPLES`] tuples), so the enumeration
//! hot path reads conversion costs with two multiplies and an add.

use crate::registry::PlatformId;

/// Reference cardinality at which alternative conversion paths are ranked.
///
/// A path's cost is affine in the tuple count (`fixed + per_tuple · t`), so
/// which path is cheapest can in principle flip with `t`; ranking once at a
/// representative mid-size cardinality keeps the table precomputable and
/// the enumeration deterministic. The chosen path's *exact* affine cost is
/// then charged at the actual cardinality.
pub const REF_TUPLES: f64 = 1e6;

/// Cheapest conversion path between one ordered platform pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionPath {
    /// Summed fixed setup cost of every channel on the path.
    pub fixed: f64,
    /// Summed per-tuple cost of every channel on the path.
    pub per_tuple: f64,
    /// Number of direct channels traversed (0 for the identity).
    pub hops: u8,
}

impl ConversionPath {
    /// Cost of moving `tuples` tuples along this path.
    #[inline]
    pub fn cost(&self, tuples: f64) -> f64 {
        self.fixed + self.per_tuple * tuples
    }
}

/// All-pairs conversion table over `k` platforms, flat row-major `k × k`.
#[derive(Debug, Clone)]
pub struct ConversionGraph {
    k: usize,
    /// `f64::INFINITY` fixed cost encodes "no path".
    path_fixed: Vec<f64>,
    path_rate: Vec<f64>,
    path_hops: Vec<u8>,
}

impl ConversionGraph {
    /// Build from direct channels `(from, to, fixed, per_tuple)` and run
    /// all-pairs cheapest paths. Duplicate declarations keep the cheaper
    /// channel (ranked at [`REF_TUPLES`]).
    pub fn from_channels(k: usize, channels: &[(PlatformId, PlatformId, f64, f64)]) -> Self {
        assert!(k >= 1);
        let idx = |a: usize, b: usize| a * k + b;
        let mut fixed = vec![f64::INFINITY; k * k];
        let mut rate = vec![f64::INFINITY; k * k];
        let mut hops = vec![u8::MAX; k * k];
        for p in 0..k {
            fixed[idx(p, p)] = 0.0;
            rate[idx(p, p)] = 0.0;
            hops[idx(p, p)] = 0;
        }
        for &(from, to, f, r) in channels {
            debug_assert!(
                from.index() < k && to.index() < k,
                "channel endpoint out of range"
            );
            debug_assert!(f >= 0.0 && r >= 0.0, "negative channel cost");
            let i = idx(from.index(), to.index());
            if f + r * REF_TUPLES < fixed[i] + rate[i] * REF_TUPLES {
                fixed[i] = f;
                rate[i] = r;
                hops[i] = 1;
            }
        }
        // Floyd–Warshall on the affine costs evaluated at REF_TUPLES.
        for via in 0..k {
            for a in 0..k {
                for b in 0..k {
                    let (i, j, t) = (idx(a, via), idx(via, b), idx(a, b));
                    let through_fixed = fixed[i] + fixed[j];
                    let through_rate = rate[i] + rate[j];
                    if through_fixed + through_rate * REF_TUPLES < fixed[t] + rate[t] * REF_TUPLES {
                        fixed[t] = through_fixed;
                        rate[t] = through_rate;
                        hops[t] = hops[i].saturating_add(hops[j]);
                    }
                }
            }
        }
        ConversionGraph {
            k,
            path_fixed: fixed,
            path_rate: rate,
            path_hops: hops,
        }
    }

    /// Number of platforms the table covers.
    #[inline]
    pub fn n_platforms(&self) -> usize {
        self.k
    }

    /// Cheapest path `from -> to`; `None` when structurally infeasible.
    /// The identity path (`from == to`) is free.
    #[inline]
    pub fn path(&self, from: PlatformId, to: PlatformId) -> Option<ConversionPath> {
        debug_assert!(
            from.index() < self.k && to.index() < self.k,
            "conversion lookup out of range"
        );
        let i = from.index() * self.k + to.index();
        let fixed = self.path_fixed[i];
        if fixed.is_infinite() {
            return None;
        }
        Some(ConversionPath {
            fixed,
            per_tuple: self.path_rate[i],
            hops: self.path_hops[i],
        })
    }

    /// Cost of moving `tuples` tuples `from -> to` (`0.0` identity,
    /// `f64::INFINITY` when no path exists).
    #[inline]
    pub fn cost(&self, from: PlatformId, to: PlatformId, tuples: f64) -> f64 {
        match self.path(from, to) {
            Some(p) => p.cost(tuples),
            None => f64::INFINITY,
        }
    }

    /// Mean fixed cost over all feasible inbound paths into `to` (excluding
    /// the identity). Feeds the per-destination-platform conversion weights
    /// of the analytic oracle, which sees only per-destination aggregate
    /// cells in the Fig-5 layout.
    pub fn mean_inbound_fixed(&self, to: PlatformId) -> f64 {
        self.mean_inbound(to, &self.path_fixed)
    }

    /// Mean per-tuple cost over all feasible inbound paths into `to`.
    pub fn mean_inbound_per_tuple(&self, to: PlatformId) -> f64 {
        self.mean_inbound(to, &self.path_rate)
    }

    fn mean_inbound(&self, to: PlatformId, table: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for from in 0..self.k {
            if from == to.index() {
                continue;
            }
            let v = table[from * self.k + to.index()];
            if v.is_finite() && self.path_fixed[from * self.k + to.index()].is_finite() {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PlatformId {
        PlatformId::from_index(i)
    }

    #[test]
    fn identity_is_free_and_missing_pairs_are_infeasible() {
        let g = ConversionGraph::from_channels(3, &[(pid(0), pid(1), 2.0, 1e-6)]);
        assert_eq!(g.cost(pid(0), pid(0), 1e9), 0.0);
        assert_eq!(g.path(pid(2), pid(1)), None);
        assert!(g.cost(pid(2), pid(1), 10.0).is_infinite());
        let p = g.path(pid(0), pid(1)).unwrap();
        assert_eq!(p.hops, 1);
        assert!((g.cost(pid(0), pid(1), 100.0) - (2.0 + 1e-4)).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_path_is_found_when_no_direct_channel_exists() {
        // 0 -> 1 -> 2, no direct 0 -> 2.
        let g = ConversionGraph::from_channels(
            3,
            &[(pid(0), pid(1), 1.0, 1e-7), (pid(1), pid(2), 2.0, 2e-7)],
        );
        let p = g.path(pid(0), pid(2)).expect("two-hop path");
        assert_eq!(p.hops, 2);
        assert!((p.fixed - 3.0).abs() < 1e-12);
        assert!((p.per_tuple - 3e-7).abs() < 1e-18);
    }

    #[test]
    fn cheaper_indirect_route_beats_an_expensive_direct_channel() {
        let g = ConversionGraph::from_channels(
            3,
            &[
                (pid(0), pid(2), 100.0, 1e-6),
                (pid(0), pid(1), 1.0, 1e-7),
                (pid(1), pid(2), 1.0, 1e-7),
            ],
        );
        let p = g.path(pid(0), pid(2)).unwrap();
        assert_eq!(p.hops, 2);
        assert!((p.fixed - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_channels_keep_the_cheaper_one() {
        let g = ConversionGraph::from_channels(
            2,
            &[(pid(0), pid(1), 9.0, 1e-6), (pid(0), pid(1), 3.0, 1e-6)],
        );
        assert!((g.path(pid(0), pid(1)).unwrap().fixed - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inbound_means_skip_infeasible_sources() {
        let g = ConversionGraph::from_channels(
            3,
            &[(pid(0), pid(2), 4.0, 2e-6), (pid(1), pid(2), 8.0, 4e-6)],
        );
        assert!((g.mean_inbound_fixed(pid(2)) - 6.0).abs() < 1e-12);
        assert!((g.mean_inbound_per_tuple(pid(2)) - 3e-6).abs() < 1e-18);
        // Platform 0 has no inbound paths at all.
        assert_eq!(g.mean_inbound_fixed(pid(0)), 0.0);
    }
}
