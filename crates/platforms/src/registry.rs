//! Platform identifiers, descriptors, and the [`PlatformRegistry`].
//!
//! The registry is the single source of truth the optimizer consults for
//! *which* platforms exist, *what* each one can execute (the availability
//! matrix), and *how much* moving data between them costs (the conversion
//! graph). `robopt_core::EnumOptions` carries a `&PlatformRegistry`, so
//! every enumerator — vector-based, object-graph baseline, exhaustive —
//! resolves platforms against the same registry instead of assuming dense
//! ids `0..k`.

use robopt_plan::{OperatorKind, N_OPERATOR_KINDS};

use crate::availability::AvailabilityMatrix;
use crate::channels::{ConversionGraph, ConversionPath};

/// Maximum number of platforms a registry may hold. Matches the Fig-5
/// feature layout's platform-dimension bound and the `u8` bitmask width of
/// the availability matrix.
pub const MAX_PLATFORMS: usize = 8;

/// Opaque platform identifier: an index into one [`PlatformRegistry`].
///
/// Replaces the former `pub type PlatformId = u8` placeholder. Ids are only
/// meaningful relative to the registry that issued them; constructing one
/// out of range is a programming error (debug-asserted, never silently
/// wrapped — the old `p % F.len()` aliasing bug class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct PlatformId(u8);

impl PlatformId {
    /// Id from a dense registry index. Debug-asserts `index < MAX_PLATFORMS`.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        debug_assert!(index < MAX_PLATFORMS, "platform index out of range");
        PlatformId(index as u8)
    }

    /// Dense registry index of this platform.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw `u8` representation (the enumeration matrices store assignments
    /// as raw bytes; see `robopt_vector::EnumMatrix`).
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "platform#{}", self.0)
    }
}

/// Descriptor of one execution platform.
///
/// The two cost scales (`fixed_cost`, `tuple_rate`) feed the analytic
/// cost-model weights in `robopt_core`; the remaining fields parameterize
/// the [`crate::simulator::RuntimeSimulator`] (DESIGN §2): parallelism,
/// job-startup floor, and the memory cliff past which the simulator charges
/// a spill penalty.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable name, unique within a registry.
    pub name: String,
    /// Fixed per-operator-instance cost scale (startup/instantiation of one
    /// execution operator on this platform).
    pub fixed_cost: f64,
    /// Processing cost per input tuple (single-threaded).
    pub tuple_rate: f64,
    /// Degree of parallelism the simulator divides tuple work by.
    pub parallelism: f64,
    /// One-time job startup latency in seconds (simulator).
    pub startup_s: f64,
    /// Memory budget in bytes before the simulator charges a spill penalty.
    pub mem_bytes: f64,
}

impl Platform {
    /// A descriptor with neutral defaults; tune with the `with_*` builders.
    pub fn new(name: &str) -> Self {
        Platform {
            name: name.to_string(),
            fixed_cost: 1.0,
            tuple_rate: 1e-6,
            parallelism: 1.0,
            startup_s: 0.1,
            mem_bytes: 8e9,
        }
    }

    pub fn with_fixed_cost(mut self, fixed_cost: f64) -> Self {
        self.fixed_cost = fixed_cost;
        self
    }

    pub fn with_tuple_rate(mut self, tuple_rate: f64) -> Self {
        self.tuple_rate = tuple_rate;
        self
    }

    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism;
        self
    }

    pub fn with_startup_s(mut self, startup_s: f64) -> Self {
        self.startup_s = startup_s;
        self
    }

    pub fn with_mem_bytes(mut self, mem_bytes: f64) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }
}

/// The platform registry: descriptors + availability matrix + conversion
/// graph (COT), built once and borrowed by everything downstream.
#[derive(Debug, Clone)]
pub struct PlatformRegistry {
    platforms: Vec<Platform>,
    availability: AvailabilityMatrix,
    conversions: ConversionGraph,
}

impl PlatformRegistry {
    /// Start building a custom registry.
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder::default()
    }

    /// The five named platforms of the paper's testbed (DESIGN §2):
    /// Java streams, Spark, Flink, Postgres, Giraph — each with a realistic
    /// availability profile and pairwise conversion channels (everything
    /// except Postgres↔Giraph has a direct channel; that pair routes
    /// through a third platform).
    pub fn named() -> Self {
        let mut b = PlatformRegistry::builder();
        let java = b.add(
            Platform::new("java")
                .with_fixed_cost(0.6)
                .with_tuple_rate(2.0e-6)
                .with_parallelism(1.0)
                .with_startup_s(0.05)
                .with_mem_bytes(4e9),
        );
        let spark = b.add(
            Platform::new("spark")
                .with_fixed_cost(40.0)
                .with_tuple_rate(1.1e-7)
                .with_parallelism(40.0)
                .with_startup_s(8.0)
                .with_mem_bytes(2.56e11),
        );
        let flink = b.add(
            Platform::new("flink")
                .with_fixed_cost(32.0)
                .with_tuple_rate(1.5e-7)
                .with_parallelism(40.0)
                .with_startup_s(6.0)
                .with_mem_bytes(2.56e11),
        );
        let postgres = b.add(
            Platform::new("postgres")
                .with_fixed_cost(3.0)
                .with_tuple_rate(8.0e-7)
                .with_parallelism(4.0)
                .with_startup_s(0.5)
                .with_mem_bytes(6.4e10),
        );
        let giraph = b.add(
            Platform::new("giraph")
                .with_fixed_cost(48.0)
                .with_tuple_rate(3.0e-7)
                .with_parallelism(40.0)
                .with_startup_s(10.0)
                .with_mem_bytes(2.56e11),
        );

        // Availability: Java and Spark execute the full operator algebra;
        // Flink lacks a table scan; Postgres executes the relational subset;
        // Giraph only the graph/iteration subset.
        b.restrict(
            postgres,
            &[
                OperatorKind::TableSource,
                OperatorKind::Filter,
                OperatorKind::Map,
                OperatorKind::Join,
                OperatorKind::GroupByKey,
                OperatorKind::ReduceByKey,
                OperatorKind::Aggregate,
                OperatorKind::Distinct,
                OperatorKind::Sort,
                OperatorKind::Count,
                OperatorKind::GlobalReduce,
                OperatorKind::Union,
                OperatorKind::Intersect,
                OperatorKind::CartesianProduct,
            ],
        );
        b.restrict(
            giraph,
            &[
                OperatorKind::Map,
                OperatorKind::FlatMap,
                OperatorKind::Filter,
                OperatorKind::ReduceByKey,
                OperatorKind::GroupByKey,
                OperatorKind::GlobalReduce,
                OperatorKind::Count,
                OperatorKind::Cache,
                OperatorKind::Broadcast,
                OperatorKind::RepeatLoop,
            ],
        );
        b.forbid(flink, OperatorKind::TableSource);
        // Result collection happens on the driver-capable engines only.
        b.restrict_kind(OperatorKind::LocalCallbackSink, &[java, spark, flink]);

        // Channels: symmetric endpoint costs (serialize out of one format +
        // materialize into the other), summed per direct edge.
        const CHAN: [(f64, f64); 5] = [
            (0.4, 4.0e-7), // java: in-process collections
            (2.2, 6.0e-7), // spark: RDD (de)serialization
            (2.2, 6.0e-7), // flink: dataset (de)serialization
            (3.6, 1.6e-6), // postgres: COPY in/out of tables
            (2.8, 8.0e-7), // giraph: vertex/edge file staging
        ];
        let ids = [java, spark, flink, postgres, giraph];
        for (i, &a) in ids.iter().enumerate() {
            for (j, &bid) in ids.iter().enumerate() {
                if i >= j {
                    continue;
                }
                // No direct Postgres<->Giraph channel: relational tables and
                // vertex sets only meet through a third platform's format.
                if (a == postgres && bid == giraph) || (a == giraph && bid == postgres) {
                    continue;
                }
                let fixed = CHAN[i].0 + CHAN[j].0;
                let rate = CHAN[i].1 + CHAN[j].1;
                b.connect(a, bid, fixed, rate);
            }
        }
        b.build()
    }

    /// A uniform synthetic registry of `k` platforms: every operator kind is
    /// available everywhere and every ordered pair has a direct conversion
    /// channel. Platform cost scales reproduce the dense-id analytic oracle
    /// of PR 1 exactly (same per-platform factor table, now registry data
    /// instead of a hard-coded table inside the oracle), so enumeration over
    /// `uniform(k)` is the "old dense-id" behaviour by construction.
    pub fn uniform(k: usize) -> Self {
        assert!(
            (1..=MAX_PLATFORMS).contains(&k),
            "uniform registry supports 1..={MAX_PLATFORMS} platforms, got {k}"
        );
        /// The PR-1 per-platform cost factors, preserved as registry data.
        const FACTORS: [f64; MAX_PLATFORMS] = [1.0, 0.55, 1.7, 0.8, 1.25, 0.65, 1.45, 0.9];
        let mut b = PlatformRegistry::builder();
        let ids: Vec<PlatformId> = (0..k)
            .map(|i| {
                b.add(
                    Platform::new(&format!("p{i}"))
                        .with_fixed_cost(FACTORS[i])
                        .with_tuple_rate(2e-6 * FACTORS[i]),
                )
            })
            .collect();
        for &from in &ids {
            for &to in &ids {
                if from != to {
                    // Directed: the per-tuple leg prices materialization
                    // *into* the destination platform.
                    b.connect_directed(from, to, 5.0, 8e-6 * FACTORS[to.index()]);
                }
            }
        }
        b.build()
    }

    /// Number of registered platforms.
    #[inline]
    pub fn len(&self) -> usize {
        self.platforms.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }

    /// All platform ids, in dense registration order.
    pub fn ids(&self) -> impl Iterator<Item = PlatformId> + '_ {
        (0..self.platforms.len()).map(PlatformId::from_index)
    }

    /// Descriptor of `id`. Debug-asserts the id belongs to this registry.
    #[inline]
    pub fn platform(&self, id: PlatformId) -> &Platform {
        debug_assert!(
            id.index() < self.platforms.len(),
            "{id} out of range for a registry of {} platforms",
            self.platforms.len()
        );
        &self.platforms[id.index()]
    }

    /// Look a platform up by name.
    pub fn by_name(&self, name: &str) -> Option<PlatformId> {
        self.platforms
            .iter()
            .position(|p| p.name == name)
            .map(PlatformId::from_index)
    }

    /// Can `kind` execute on `platform`? (The availability matrix.)
    #[inline]
    pub fn is_available(&self, kind: OperatorKind, platform: PlatformId) -> bool {
        self.availability.is_available(kind, platform)
    }

    /// Platforms that can execute `kind`, in dense order.
    pub fn available_platforms(&self, kind: OperatorKind) -> impl Iterator<Item = PlatformId> + '_ {
        self.ids().filter(move |&p| self.is_available(kind, p))
    }

    /// The availability matrix itself.
    #[inline]
    pub fn availability(&self) -> &AvailabilityMatrix {
        &self.availability
    }

    /// The conversion graph (COT) with precomputed all-pairs cheapest paths.
    #[inline]
    pub fn conversions(&self) -> &ConversionGraph {
        &self.conversions
    }

    /// Cheapest conversion path `from -> to`, if any (`None` = the pair is
    /// structurally infeasible; candidate plans requiring it are excluded
    /// during enumeration, DESIGN §6.3).
    #[inline]
    pub fn conversion(&self, from: PlatformId, to: PlatformId) -> Option<ConversionPath> {
        self.conversions.path(from, to)
    }

    /// True if data produced on `from` can reach `to` (possibly multi-hop).
    #[inline]
    pub fn convertible(&self, from: PlatformId, to: PlatformId) -> bool {
        self.conversions.path(from, to).is_some()
    }

    /// Cost of moving `tuples` tuples `from -> to` along the cheapest path
    /// (`0.0` when `from == to`, `f64::INFINITY` when infeasible).
    #[inline]
    pub fn conversion_cost(&self, from: PlatformId, to: PlatformId, tuples: f64) -> f64 {
        self.conversions.cost(from, to, tuples)
    }
}

/// Incremental [`PlatformRegistry`] construction.
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    platforms: Vec<Platform>,
    restrictions: Vec<(PlatformId, Vec<OperatorKind>)>,
    forbidden: Vec<(PlatformId, OperatorKind)>,
    kind_restrictions: Vec<(OperatorKind, Vec<PlatformId>)>,
    channels: Vec<(PlatformId, PlatformId, f64, f64)>,
}

impl RegistryBuilder {
    /// Register a platform; returns its id. Panics past [`MAX_PLATFORMS`]
    /// or on a duplicate name.
    pub fn add(&mut self, platform: Platform) -> PlatformId {
        assert!(
            self.platforms.len() < MAX_PLATFORMS,
            "registry holds at most {MAX_PLATFORMS} platforms"
        );
        assert!(
            self.platforms.iter().all(|p| p.name != platform.name),
            "duplicate platform name {:?}",
            platform.name
        );
        let id = PlatformId::from_index(self.platforms.len());
        self.platforms.push(platform);
        id
    }

    /// Restrict `platform` to exactly the listed operator kinds.
    pub fn restrict(&mut self, platform: PlatformId, kinds: &[OperatorKind]) -> &mut Self {
        self.restrictions.push((platform, kinds.to_vec()));
        self
    }

    /// Mark one operator kind unavailable on `platform`.
    pub fn forbid(&mut self, platform: PlatformId, kind: OperatorKind) -> &mut Self {
        self.forbidden.push((platform, kind));
        self
    }

    /// Restrict `kind` to exactly the listed platforms.
    pub fn restrict_kind(&mut self, kind: OperatorKind, platforms: &[PlatformId]) -> &mut Self {
        self.kind_restrictions.push((kind, platforms.to_vec()));
        self
    }

    /// Declare a symmetric direct conversion channel between `a` and `b`.
    pub fn connect(
        &mut self,
        a: PlatformId,
        b: PlatformId,
        fixed: f64,
        per_tuple: f64,
    ) -> &mut Self {
        self.channels.push((a, b, fixed, per_tuple));
        self.channels.push((b, a, fixed, per_tuple));
        self
    }

    /// Declare a one-way direct conversion channel `from -> to`.
    pub fn connect_directed(
        &mut self,
        from: PlatformId,
        to: PlatformId,
        fixed: f64,
        per_tuple: f64,
    ) -> &mut Self {
        self.channels.push((from, to, fixed, per_tuple));
        self
    }

    /// Finalize: builds the availability matrix, runs all-pairs cheapest
    /// conversion paths, and checks every operator kind is executable on at
    /// least one platform.
    pub fn build(self) -> PlatformRegistry {
        let k = self.platforms.len();
        assert!(k >= 1, "a registry needs at least one platform");
        let mut availability = AvailabilityMatrix::all_available(k);
        for (platform, kinds) in &self.restrictions {
            availability.restrict_platform(*platform, kinds);
        }
        for (kind, platforms) in &self.kind_restrictions {
            availability.restrict_kind(*kind, platforms);
        }
        for (platform, kind) in &self.forbidden {
            availability.set(*kind, *platform, false);
        }
        for kind in OperatorKind::ALL {
            assert!(
                (0..k).any(|p| availability.is_available(kind, PlatformId::from_index(p))),
                "operator kind {kind:?} is unavailable on every platform"
            );
        }
        debug_assert_eq!(N_OPERATOR_KINDS, OperatorKind::ALL.len());
        let conversions = ConversionGraph::from_channels(k, &self.channels);
        PlatformRegistry {
            platforms: self.platforms,
            availability,
            conversions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_registry_has_five_platforms_with_unique_names() {
        let reg = PlatformRegistry::named();
        assert_eq!(reg.len(), 5);
        for name in ["java", "spark", "flink", "postgres", "giraph"] {
            assert!(reg.by_name(name).is_some(), "missing platform {name}");
        }
        assert!(reg.by_name("graphchi").is_none());
    }

    #[test]
    fn registry_holds_up_to_max_platforms() {
        let mut b = PlatformRegistry::builder();
        for i in 0..MAX_PLATFORMS {
            b.add(Platform::new(&format!("x{i}")));
        }
        let reg = b.build();
        assert_eq!(reg.len(), MAX_PLATFORMS);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn registry_rejects_a_ninth_platform() {
        let mut b = PlatformRegistry::builder();
        for i in 0..=MAX_PLATFORMS {
            b.add(Platform::new(&format!("x{i}")));
        }
    }

    #[test]
    #[should_panic(expected = "unavailable on every platform")]
    fn build_rejects_globally_unavailable_kinds() {
        let mut b = PlatformRegistry::builder();
        let only = b.add(Platform::new("only"));
        b.restrict(only, &[OperatorKind::Map]);
        b.build();
    }

    #[test]
    fn java_and_spark_execute_everything_postgres_does_not() {
        let reg = PlatformRegistry::named();
        let java = reg.by_name("java").unwrap();
        let spark = reg.by_name("spark").unwrap();
        let postgres = reg.by_name("postgres").unwrap();
        for kind in OperatorKind::ALL {
            assert!(reg.is_available(kind, java));
            assert!(reg.is_available(kind, spark));
        }
        assert!(reg.is_available(OperatorKind::Join, postgres));
        assert!(!reg.is_available(OperatorKind::TextFileSource, postgres));
        assert!(!reg.is_available(OperatorKind::LocalCallbackSink, postgres));
    }

    #[test]
    fn uniform_registry_is_fully_available_and_fully_convertible() {
        let reg = PlatformRegistry::uniform(5);
        assert_eq!(reg.len(), 5);
        for kind in OperatorKind::ALL {
            assert_eq!(reg.available_platforms(kind).count(), 5);
        }
        for a in reg.ids() {
            for b in reg.ids() {
                assert!(reg.convertible(a, b));
            }
        }
    }
}
