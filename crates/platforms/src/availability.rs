//! The execution-operator **availability matrix**: operator kind × platform.
//!
//! RHEEMix (Kruse et al.) models which execution operators each platform
//! provides for every logical operator; enumeration must never place an
//! operator on a platform with no implementation. The matrix is a compact
//! `u8` bitmask per operator kind (one bit per platform, so
//! [`crate::registry::MAX_PLATFORMS`] = 8 bounds the registry size), read
//! on the enumeration hot path when singleton rows are seeded.

use robopt_plan::{OperatorKind, N_OPERATOR_KINDS};

use crate::registry::{PlatformId, MAX_PLATFORMS};

/// Bitmask availability matrix: `mask[kind]` has bit `p` set iff `kind`
/// can execute on platform index `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityMatrix {
    n_platforms: usize,
    masks: [u8; N_OPERATOR_KINDS],
}

impl AvailabilityMatrix {
    /// Every kind available on every one of the `n_platforms` platforms.
    pub fn all_available(n_platforms: usize) -> Self {
        assert!(
            (1..=MAX_PLATFORMS).contains(&n_platforms),
            "availability matrix supports 1..={MAX_PLATFORMS} platforms"
        );
        let full = if n_platforms == 8 {
            u8::MAX
        } else {
            (1u8 << n_platforms) - 1
        };
        AvailabilityMatrix {
            n_platforms,
            masks: [full; N_OPERATOR_KINDS],
        }
    }

    /// Number of platform columns.
    #[inline]
    pub fn n_platforms(&self) -> usize {
        self.n_platforms
    }

    /// Set one (kind, platform) cell.
    pub fn set(&mut self, kind: OperatorKind, platform: PlatformId, available: bool) {
        debug_assert!(
            platform.index() < self.n_platforms,
            "{platform} out of range for {} platforms",
            self.n_platforms
        );
        let bit = 1u8 << platform.index();
        if available {
            self.masks[kind.index()] |= bit;
        } else {
            self.masks[kind.index()] &= !bit;
        }
    }

    /// Restrict `platform` to exactly `kinds` (all other kinds cleared).
    pub fn restrict_platform(&mut self, platform: PlatformId, kinds: &[OperatorKind]) {
        for kind in OperatorKind::ALL {
            self.set(kind, platform, kinds.contains(&kind));
        }
    }

    /// Restrict `kind` to exactly `platforms` (all other platforms cleared).
    pub fn restrict_kind(&mut self, kind: OperatorKind, platforms: &[PlatformId]) {
        let mut mask = 0u8;
        for &p in platforms {
            debug_assert!(p.index() < self.n_platforms);
            mask |= 1u8 << p.index();
        }
        self.masks[kind.index()] = mask;
    }

    /// Can `kind` execute on `platform`?
    #[inline]
    pub fn is_available(&self, kind: OperatorKind, platform: PlatformId) -> bool {
        debug_assert!(
            platform.index() < self.n_platforms,
            "{platform} out of range for {} platforms",
            self.n_platforms
        );
        self.masks[kind.index()] & (1u8 << platform.index()) != 0
    }

    /// Number of platforms that can execute `kind`.
    #[inline]
    pub fn support_count(&self, kind: OperatorKind) -> u32 {
        self.masks[kind.index()].count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query_roundtrip() {
        let mut m = AvailabilityMatrix::all_available(3);
        let p1 = PlatformId::from_index(1);
        assert!(m.is_available(OperatorKind::Join, p1));
        m.set(OperatorKind::Join, p1, false);
        assert!(!m.is_available(OperatorKind::Join, p1));
        assert_eq!(m.support_count(OperatorKind::Join), 2);
        m.set(OperatorKind::Join, p1, true);
        assert_eq!(m.support_count(OperatorKind::Join), 3);
    }

    #[test]
    fn restrict_platform_clears_everything_else() {
        let mut m = AvailabilityMatrix::all_available(2);
        let p0 = PlatformId::from_index(0);
        let p1 = PlatformId::from_index(1);
        m.restrict_platform(p1, &[OperatorKind::Map, OperatorKind::Filter]);
        assert!(m.is_available(OperatorKind::Map, p1));
        assert!(m.is_available(OperatorKind::Filter, p1));
        assert!(!m.is_available(OperatorKind::Join, p1));
        assert!(m.is_available(OperatorKind::Join, p0));
    }

    #[test]
    fn restrict_kind_clears_other_platforms() {
        let mut m = AvailabilityMatrix::all_available(4);
        let p2 = PlatformId::from_index(2);
        m.restrict_kind(OperatorKind::LocalCallbackSink, &[p2]);
        assert_eq!(m.support_count(OperatorKind::LocalCallbackSink), 1);
        assert!(m.is_available(OperatorKind::LocalCallbackSink, p2));
    }

    #[test]
    fn eight_platform_full_mask_does_not_overflow() {
        let m = AvailabilityMatrix::all_available(8);
        for kind in OperatorKind::ALL {
            assert_eq!(m.support_count(kind), 8);
        }
    }
}
