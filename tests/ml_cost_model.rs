//! Learned-cost-model integration (DESIGN §3, paper Fig 9):
//!
//! * batched forest inference is bit-identical to per-row prediction on
//!   simulator-drawn plan vectors;
//! * training is deterministic under a fixed seed — two fits produce
//!   identical predictions despite thread-parallel tree construction;
//! * the forest beats the ridge linear baseline on held-out
//!   simulator-labelled plans (MSE ratio < 1);
//! * a trained forest installed behind the service facade drives the
//!   vectorized enumerator end-to-end, and its chosen WordCount(1e7) plan
//!   simulates no slower than the analytic oracle's choice.

use robopt::{OptimizeRequest, Optimizer, SimulateRequest, WorkloadSpec};
use robopt_ml::{
    mse, simulator_training_set, ForestConfig, LinearModel, Model, RandomForest, SamplerConfig,
};
use robopt_plan::N_OPERATOR_KINDS;
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

fn setup() -> (PlatformRegistry, FeatureLayout) {
    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    (registry, layout)
}

#[test]
fn forest_batch_prediction_matches_per_row_on_plan_vectors() {
    let (registry, layout) = setup();
    let cfg = SamplerConfig::new().with_seed(11).with_noise(0.05);
    let train = simulator_training_set(&registry, &layout, &cfg, 300);
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        },
        train.rows_view(),
        &train.labels,
    );
    let probe = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(12).with_noise(0.0),
        80,
    );
    let rows = probe.rows_view();
    let mut batch = Vec::new();
    forest.predict_batch(rows, &mut batch);
    assert_eq!(batch.len(), rows.rows());
    for (r, &batched) in batch.iter().enumerate() {
        assert_eq!(
            batched,
            forest.predict_row(rows.row(r)),
            "batched row {r} diverges from per-row prediction"
        );
    }
}

#[test]
fn forest_training_is_deterministic_under_a_fixed_seed() {
    let (registry, layout) = setup();
    let train = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(21).with_noise(0.05),
        250,
    );
    let cfg = ForestConfig {
        n_trees: 10,
        seed: 777,
        ..ForestConfig::default()
    };
    let a = RandomForest::fit(&cfg, train.rows_view(), &train.labels);
    let b = RandomForest::fit(&cfg, train.rows_view(), &train.labels);
    let probe = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(22).with_noise(0.0),
        60,
    );
    let (mut pa, mut pb) = (Vec::new(), Vec::new());
    a.predict_batch(probe.rows_view(), &mut pa);
    b.predict_batch(probe.rows_view(), &mut pb);
    assert_eq!(pa, pb, "equal seeds must reproduce bit-identical forests");
}

#[test]
fn forest_beats_linear_baseline_on_held_out_plans() {
    let (registry, layout) = setup();
    let train = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(31).with_noise(0.05),
        600,
    );
    let heldout = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(32).with_noise(0.0),
        200,
    );
    let mut linear = LinearModel::new();
    linear.fit_set(&train);
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        },
        train.rows_view(),
        &train.labels,
    );
    let (mut lp, mut fp) = (Vec::new(), Vec::new());
    linear.predict_batch(heldout.rows_view(), &mut lp);
    forest.predict_batch(heldout.rows_view(), &mut fp);
    let (linear_mse, forest_mse) = (mse(&lp, &heldout.labels), mse(&fp, &heldout.labels));
    assert!(
        forest_mse < linear_mse,
        "forest held-out MSE {forest_mse} not below linear baseline {linear_mse}"
    );
}

#[test]
fn trained_forest_behind_dyn_oracle_drives_enumeration_end_to_end() {
    let (registry, layout) = setup();
    let train = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(41).with_noise(0.05),
        600,
    );
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        },
        train.rows_view(),
        &train.labels,
    );

    // The facade accepts the forest only if its width matches the layout —
    // Ok(()) here is the old `dyn_oracle.width() == layout.width` assert.
    let mut forest_opt = Optimizer::named();
    forest_opt
        .install_forest(forest)
        .expect("trained forest width matches the named-registry layout");
    let mut analytic_opt = Optimizer::named();

    let spec = WorkloadSpec::WordCount { scale: 1e7 };
    let forest_resp = forest_opt
        .optimize(&OptimizeRequest::new(spec))
        .expect("forest-driven optimize");
    assert!(forest_resp.stats.generated > 0);
    let analytic_resp = analytic_opt
        .optimize(&OptimizeRequest::new(spec))
        .expect("analytic optimize");

    // Ground truth: the simulator the training labels came from (noise
    // off — both plans judged on the clean surface).
    let sim_req = |assignments: &[String]| SimulateRequest {
        workload: spec,
        assignments: assignments.to_vec(),
        seed: 42,
        noise: 0.0,
    };
    let forest_s = forest_opt
        .simulate(&sim_req(&forest_resp.assignments))
        .expect("simulate forest pick");
    let analytic_s = analytic_opt
        .simulate(&sim_req(&analytic_resp.assignments))
        .expect("simulate analytic pick");
    assert!(forest_s.feasible, "forest picked an unexecutable plan");
    assert!(
        forest_s.seconds <= analytic_s.seconds * (1.0 + 1e-9),
        "forest-picked plan ({:.2}s) slower than analytic pick ({:.2}s)",
        forest_s.seconds,
        analytic_s.seconds
    );
}
