//! TDGEN acceptance properties (paper §V, Fig 8):
//!
//! (a) the piecewise degree-5 log-log interpolant is **exact at its
//!     knots** and keeps a bounded q-error between them, on real
//!     (skeleton, assignment) runtime curves from the simulator;
//! (b) **β-pruning is sound and complete**: every sampled or enumerated
//!     assignment stays within β switches, and `β = usize::MAX` recovers
//!     exactly the unpruned feasible set (cross-checked against an
//!     independent brute force over all `k^n` codes);
//! (c) both [`TrainingSource`] implementations are **deterministic**:
//!     the same seed reproduces a bit-identical [`TrainingSet`].

use robopt_ml::{q_error, simulator_training_set, SamplerConfig, TrainingSet, TrainingSource};
use robopt_plan::{SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::{PlatformId, PlatformRegistry, RuntimeSimulator};
use robopt_tdgen::{
    enumerate_assignments, log_knots, max_switches, sample_assignment, sample_skeleton,
    tdgen_training_set, JobSkeleton, PiecewisePoly, ShapeKind, TdgenConfig, TdgenGenerator,
};
use robopt_vector::FeatureLayout;

fn named_setup() -> (PlatformRegistry, FeatureLayout) {
    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    (registry, layout)
}

/// Property (a): on noiseless simulator curves the fit reproduces every
/// knot to roundoff, and synthesized labels between knots stay within a
/// small q-error of direct simulation.
#[test]
fn interpolant_is_exact_at_knots_and_bounded_between_them() {
    let (registry, _) = named_setup();
    let sim = RuntimeSimulator::new(&registry, 42).with_noise(0.0);
    let mut rng = SplitMix64::new(0x07d9_ef17);
    let (lo, hi) = (1e4, 1e9);
    let knot_scales = log_knots(lo, hi, 11);
    let mut q_sum = 0.0;
    let mut probes = 0usize;
    let mut curves = 0usize;
    while curves < 12 {
        let shape = ShapeKind::ALL[rng.gen_range(ShapeKind::ALL.len())];
        let n_ops = shape.min_ops() + rng.gen_range(6);
        let skel = sample_skeleton(&mut rng, &registry, shape, n_ops);
        let Some(assign) = sample_assignment(&skel, &registry, 3, &mut rng, 64) else {
            continue;
        };
        let mut ln_xs = Vec::new();
        let mut ys = Vec::new();
        let mut secs = Vec::new();
        let mut finite = true;
        for &scale in &knot_scales {
            let s = sim.simulate_raw(&skel.instantiate(scale), &assign);
            if !s.is_finite() {
                finite = false;
                break;
            }
            ln_xs.push(scale.ln());
            ys.push(s.ln_1p());
            secs.push(s);
        }
        if !finite {
            continue;
        }
        let poly = PiecewisePoly::fit(&ln_xs, &ys);

        // Knot exactness: the Newton form must pass through its own data.
        for ((&x, &y), &s) in ln_xs.iter().zip(&ys).zip(&secs) {
            let at_knot = poly.eval(x);
            assert!(
                (at_knot - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "curve {curves}: knot at ln-scale {x} drifted: {at_knot} vs {y}"
            );
            assert!(q_error(TrainingSet::label_to_seconds(at_knot), s) < 1.0 + 1e-6);
        }

        // Held-out scales: bounded q-error against direct simulation.
        for _ in 0..16 {
            let ln_s = ln_xs[0] + (ln_xs[ln_xs.len() - 1] - ln_xs[0]) * rng.next_f64();
            let predicted = TrainingSet::label_to_seconds(poly.eval(ln_s));
            let actual = sim.simulate_raw(&skel.instantiate(ln_s.exp()), &assign);
            let q = q_error(predicted, actual);
            assert!(
                q < 10.0,
                "curve {curves}: runaway interpolation q-error {q} at ln-scale {ln_s}"
            );
            q_sum += q;
            probes += 1;
        }
        curves += 1;
    }
    let q_mean = q_sum / probes as f64;
    assert!(
        q_mean < 1.25,
        "mean held-out q-error {q_mean} over {probes} probes is too loose"
    );
}

/// Independent brute force over all `k^n` platform codes: feasible means
/// every operator's kind is available on its platform and every edge
/// connects convertible platforms. Deliberately shares no code with
/// `enumerate_assignments`.
fn brute_force_feasible(skel: &JobSkeleton, registry: &PlatformRegistry) -> Vec<Vec<u8>> {
    let k = registry.len();
    let n = skel.n_ops();
    let mut out = Vec::new();
    for mut code in 0..(k as u64).pow(n as u32) {
        let mut assign = vec![0u8; n];
        for slot in assign.iter_mut() {
            *slot = (code % k as u64) as u8;
            code /= k as u64;
        }
        let kinds_ok = assign.iter().enumerate().all(|(op, &p)| {
            registry.is_available(skel.ops[op].kind, PlatformId::from_index(p as usize))
        });
        let edges_ok = skel.edges.iter().all(|&(u, v)| {
            registry.convertible(
                PlatformId::from_index(assign[u as usize] as usize),
                PlatformId::from_index(assign[v as usize] as usize),
            )
        });
        if kinds_ok && edges_ok {
            out.push(assign);
        }
    }
    out
}

/// Property (b): β-pruning never lets a >β assignment through, and
/// disabling it (`β = usize::MAX`) recovers the unpruned feasible set.
#[test]
fn beta_pruning_is_sound_and_max_beta_recovers_the_feasible_set() {
    let (registry, _) = named_setup();
    let mut rng = SplitMix64::new(0xbe7a);
    for (case, &shape) in ShapeKind::ALL.iter().enumerate() {
        // Keep n small: the cross-check enumerates all 5^n codes.
        let n_ops = shape.min_ops().max(5);
        let skel = sample_skeleton(&mut rng, &registry, shape, n_ops);

        let brute = brute_force_feasible(&skel, &registry);
        let unpruned = enumerate_assignments(&skel, &registry, usize::MAX, usize::MAX);
        assert_eq!(
            unpruned.len(),
            brute.len(),
            "case {case} ({}): beta = MAX must recover the feasible set",
            shape.name()
        );

        for beta in [0usize, 1, 2, 3] {
            let pruned = enumerate_assignments(&skel, &registry, beta, usize::MAX);
            for a in &pruned {
                assert!(
                    max_switches(&skel, a) <= beta,
                    "case {case}: enumerated assignment {a:?} exceeds beta = {beta}"
                );
            }
            // The DFS must agree with filtering the brute-force set.
            let expected = brute
                .iter()
                .filter(|a| max_switches(&skel, a) <= beta)
                .count();
            assert_eq!(pruned.len(), expected, "case {case} beta {beta}: count");

            for draw in 0..8 {
                if let Some(a) = sample_assignment(&skel, &registry, beta, &mut rng, 64) {
                    assert!(
                        max_switches(&skel, &a) <= beta,
                        "case {case} draw {draw}: sampled assignment exceeds beta = {beta}"
                    );
                }
            }
        }
    }
}

fn assert_bit_identical(a: &TrainingSet, b: &TrainingSet) {
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.rows, b.rows, "feature matrices must match bit for bit");
    assert_eq!(a.labels, b.labels, "labels must match bit for bit");
    assert_eq!(a.seconds, b.seconds, "seconds must match bit for bit");
}

/// Property (c): both sources are pure functions of (config, call
/// sequence) — equal seeds reproduce bit-identical sets, and the split
/// `generate(n); generate(n)` stream equals one `generate(2n)` draw.
#[test]
fn equal_seeds_reproduce_bit_identical_training_sets() {
    let (registry, layout) = named_setup();

    let cfg = TdgenConfig::new()
        .with_seed(0x000d_5eed)
        .with_knots(6)
        .with_rows_per_curve(24)
        .with_ops_range(5, 8);
    let once = tdgen_training_set(&registry, &layout, &cfg, 120);
    let again = tdgen_training_set(&registry, &layout, &cfg, 120);
    assert_eq!(once.len(), 120);
    assert_bit_identical(&once, &again);

    let mut split = TdgenGenerator::new(&registry, layout, cfg.clone());
    let first = split.generate(60);
    let second = split.generate(60);
    assert_eq!(&once.labels[..60], &first.labels[..]);
    assert_eq!(&once.labels[60..], &second.labels[..]);

    let reseeded = tdgen_training_set(&registry, &layout, &cfg.with_seed(0x000d_5eee), 120);
    assert_ne!(once.labels, reseeded.labels, "the seed must matter");

    let sampler = SamplerConfig::new().with_seed(0x5eed).with_noise(0.05);
    let direct_a = simulator_training_set(&registry, &layout, &sampler, 80);
    let direct_b = simulator_training_set(&registry, &layout, &sampler, 80);
    assert_bit_identical(&direct_a, &direct_b);
}

/// The `TrainingSource` seam: a harness holding only `&mut dyn
/// TrainingSource` gets layout-consistent sets from either provenance.
#[test]
fn dyn_sources_agree_on_the_layout_contract() {
    let (registry, layout) = named_setup();
    let mut tdgen = TdgenGenerator::new(
        &registry,
        layout,
        TdgenConfig::new().with_knots(6).with_rows_per_curve(24),
    );
    let mut direct = robopt_ml::SimulatorSource::new(&registry, layout, SamplerConfig::new());
    let sources: [&mut dyn TrainingSource; 2] = [&mut tdgen, &mut direct];
    for source in sources {
        assert_eq!(source.layout(), layout);
        let set = source.generate(24);
        assert_eq!(set.len(), 24);
        assert_eq!(set.width(), layout.width);
        assert!(set.labels.iter().all(|l| l.is_finite()));
        for (&label, &seconds) in set.labels.iter().zip(&set.seconds) {
            assert!(
                (TrainingSet::label_to_seconds(label) - seconds).abs()
                    <= 1e-9 * (1.0 + seconds.abs()),
                "labels and seconds must stay inverse transforms"
            );
        }
    }
}
