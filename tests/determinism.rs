//! Cross-process determinism: a seeded run is a pure function of the seed.
//!
//! The enumeration path holds no per-process randomness (the
//! FootprintTable migration removed the last `HashMap` visit-order
//! dependence), so the digest of everything observable through the
//! service facade — chosen assignments, cost bits, enumeration stats,
//! object-baseline costs, and seeded forest predictions — must be
//! byte-identical across two child processes of the same binary, and
//! match the in-process digest.
//!
//! The digest is computed through [`robopt::Optimizer`] requests (ISSUE 7:
//! raw `EnumOptions` wiring stays inside `robopt_core`), and every case is
//! answered three times — cache-on cold, cache-on hit, cache-off
//! recompute — with all three responses asserted bit-identical before
//! they feed the digest: memoization must never be observable in the
//! bytes, only in the latency.

use std::process::Command;

use robopt::{ExecutionPolicy, OptimizeRequest, Optimizer, RiskPolicy, WorkloadSpec};
use robopt_baselines::ObjectEnumerator;
use robopt_engine::Engine;
use robopt_ml::{simulator_training_set, ForestConfig, RandomForest, SamplerConfig};
use robopt_plan::{SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::{ExecutionBackend, PlatformRegistry};
use robopt_vector::FeatureLayout;

const CHILD_ENV: &str = "ROBOPT_DETERMINISM_CHILD";

fn mix(h: &mut u64, v: u64) {
    *h = (*h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27);
}

fn mix_response(h: &mut u64, resp: &robopt::OptimizeResponse) {
    for name in &resp.assignments {
        for b in name.bytes() {
            mix(h, b as u64);
        }
    }
    mix(h, resp.signature);
    mix(h, resp.cost.to_bits());
    mix(h, resp.stats.generated);
    mix(h, resp.stats.kept);
    mix(h, resp.stats.merges);
    mix(h, resp.stats.peak_rows);
}

/// Digest every observable output of a fixed-seed optimizer run.
fn seeded_run_digest() -> u64 {
    let mut h = 0xD1657_u64;

    // Facade enumeration over random connected DAGs: serial (one split
    // part), split-parallel (clamp off: real scoped threads even on a
    // single-core host), and the object-graph baseline via the raw-options
    // escape hatch.
    let mut rng = SplitMix64::new(0xDE7E_4213);
    let mut object_enum = ObjectEnumerator::new();
    for _ in 0..12 {
        let n = 3 + rng.gen_range(6); // 3..=8 operators
        let k = 2 + rng.gen_range(3); // 2..=4 platforms
        let spec = WorkloadSpec::RandomDag {
            seed: rng.next_u64(),
            ops: n,
            density: 0.4,
        };
        let serial_req = OptimizeRequest::new(spec).with_policy(
            ExecutionPolicy::default()
                .with_workers(1)
                .with_split_parts(1),
        );
        let par_req = OptimizeRequest::new(spec).with_policy(
            ExecutionPolicy::default()
                .with_workers(2)
                .with_split_parts(3)
                .with_hardware_clamp(false),
        );

        // Three answers per request — cold, memoized, and recomputed with
        // the cache disabled — must be bit-identical before digesting.
        let mut warm = Optimizer::new(PlatformRegistry::uniform(k));
        let mut cold = Optimizer::new(PlatformRegistry::uniform(k));
        cold.set_cache_enabled(false);
        let best = warm.optimize(&serial_req).expect("serial optimize");
        let hit = warm.optimize(&serial_req).expect("memoized optimize");
        let recomputed = cold.optimize(&serial_req).expect("cache-off optimize");
        assert_eq!(best, hit, "cache hit changed the response bytes");
        assert_eq!(best, recomputed, "cache-off recompute diverged");
        mix_response(&mut h, &best);

        // ISSUE 9 parity contract: spelling out ExpectedCost must be
        // bit-identical to the unlabelled request — same cache line, same
        // cost bits, same uncertainty fields (the distributional seam's
        // degenerate point path is the classic path).
        let explicit = cold
            .optimize(&serial_req.with_risk(RiskPolicy::ExpectedCost))
            .expect("explicit expected-cost optimize");
        assert_eq!(best, explicit, "ExpectedCost diverged from the default");
        assert_eq!(best.cost.to_bits(), explicit.cost.to_bits());

        // Split-parallel: same winner, same canonical cost bits as serial
        // (merge trees differ, so EnumStats legitimately may not).
        let par = warm.optimize(&par_req).expect("parallel optimize");
        assert_eq!(par.assignments, best.assignments, "parallel vs serial");
        assert_eq!(par.cost.to_bits(), best.cost.to_bits());
        mix_response(&mut h, &par);

        // Object-graph baseline through the escape hatch.
        let plan = spec.build().expect("workload spec builds");
        let object = object_enum.enumerate(&plan, warm.layout(), warm.enum_options());
        mix(&mut h, object.cost.to_bits());
        for &p in &object.raw_assignments() {
            mix(&mut h, p as u64);
        }
    }

    // Seeded forest training (thread-parallel bagging) + inference.
    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    let cfg = SamplerConfig::new().with_seed(41).with_noise(0.05);
    let train = simulator_training_set(&registry, &layout, &cfg, 120);
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 8,
            ..ForestConfig::default()
        },
        train.rows_view(),
        &train.labels,
    );
    let probe = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(42).with_noise(0.0),
        24,
    );
    let rows = probe.rows_view();
    for r in 0..rows.rows() {
        mix(&mut h, forest.predict(rows.row(r)).to_bits());
    }

    // Real engine runs (ISSUE 8): output digests and cardinalities are
    // contractually pure functions of (plan, seed, row cap) — worker count
    // must not appear in the bytes, so different counts per workload feed
    // the same digest stream. Timings are measured and never digested.
    let java = registry.by_name("java").expect("named registry has java");
    for (spec, workers) in [
        (WorkloadSpec::WordCount { scale: 1.0e4 }, 1usize),
        (WorkloadSpec::TpchQ3 { scale: 5.0e3 }, 2),
        (
            WorkloadSpec::PageRank {
                scale: 2.0e3,
                iterations: 3,
            },
            3,
        ),
        (
            WorkloadSpec::KMeans {
                scale: 2.0e3,
                iterations: 3,
            },
            4,
        ),
    ] {
        let plan = spec.build().expect("workload spec builds");
        let engine = Engine::new(&registry)
            .with_workers(workers)
            .with_seed(0x00D1_6E57);
        let report = engine.execute(&plan, &vec![java; plan.n_ops()]);
        assert!(report.feasible, "all-java engine run must be feasible");
        mix(&mut h, report.output_digest);
        mix(&mut h, report.output_rows);
        for op in &report.per_op {
            mix(&mut h, op.output_rows);
        }
    }
    h
}

#[test]
fn seeded_run_is_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: print the digest for the parent and stop.
        println!("DIGEST={:016x}", seeded_run_digest());
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = Command::new(&exe)
            .args([
                "--exact",
                "seeded_run_is_byte_identical_across_processes",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness prints "test <name> ... " before the test's
        // own output, so the marker is not line-initial.
        String::from_utf8_lossy(&out.stdout)
            .split_once("DIGEST=")
            .map(|(_, rest)| {
                rest.chars()
                    .take_while(char::is_ascii_hexdigit)
                    .collect::<String>()
            })
            .expect("child printed a digest")
    };

    let first = child_digest();
    let second = child_digest();
    assert_eq!(
        first, second,
        "two processes of the same binary disagree on a seeded run"
    );
    assert_eq!(
        first,
        format!("{:016x}", seeded_run_digest()),
        "in-process digest disagrees with child processes"
    );
}
