//! Cross-process determinism: a seeded run is a pure function of the seed.
//!
//! The FootprintTable migration (this PR) removed the last per-process
//! randomness from the enumeration path — std's `HashMap` seeds its hasher
//! per process, so footprint-merge *visit order* (and thus any
//! tie-breaking, stats, and buffer growth pattern) could differ between
//! two runs of the same binary. This test re-executes itself in two child
//! processes and asserts the digest of everything observable — chosen
//! assignments, cost bits, enumeration stats, object-baseline costs, and
//! seeded forest predictions — is byte-identical across processes, and
//! matches the in-process digest.

use std::process::Command;

use robopt_baselines::ObjectEnumerator;
use robopt_core::{AnalyticOracle, EnumOptions, Enumerator, ParallelEnumerator, SplitOptions};
use robopt_ml::{simulator_training_set, ForestConfig, RandomForest, SamplerConfig};
use robopt_plan::{workloads, SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::PlatformRegistry;
use robopt_vector::FeatureLayout;

const CHILD_ENV: &str = "ROBOPT_DETERMINISM_CHILD";

fn mix(h: &mut u64, v: u64) {
    *h = (*h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27);
}

/// Digest every observable output of a fixed-seed optimizer run.
fn seeded_run_digest() -> u64 {
    let mut h = 0xD1657_u64;

    // Vectorized + object-graph enumeration over random connected DAGs.
    let mut rng = SplitMix64::new(0xDE7E_4213);
    let mut vector_enum = Enumerator::new();
    let mut object_enum = ObjectEnumerator::new();
    // Clamp off so the digest covers real scoped-thread scheduling even on
    // a single-core host — the split contract says results are
    // thread-count-independent, so the digest must be too.
    let mut parallel_enum = ParallelEnumerator::new(2)
        .with_split(SplitOptions::new(3))
        .with_hardware_clamp(false);
    for _ in 0..12 {
        let n = 3 + rng.gen_range(6); // 3..=8 operators
        let k = 2 + rng.gen_range(3); // 2..=4 platforms
        let plan = workloads::random_connected_dag(&mut rng, n, 0.4);
        let registry = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&registry, &layout);
        let opts = EnumOptions::new(&registry).with_oracle(&oracle);

        let (best, stats) = vector_enum.enumerate(&plan, &layout, opts);
        for &p in &best.raw_assignments() {
            mix(&mut h, p as u64);
        }
        mix(&mut h, best.cost.to_bits());
        mix(&mut h, stats.generated);
        mix(&mut h, stats.kept);
        mix(&mut h, stats.merges);
        mix(&mut h, stats.peak_rows);

        let object = object_enum.enumerate(&plan, &layout, opts);
        mix(&mut h, object.cost.to_bits());
        for &p in &object.raw_assignments() {
            mix(&mut h, p as u64);
        }

        // Split-parallel enumeration: same plan, threaded part phase. The
        // chosen assignment and canonical cost must match serial bit-for-bit
        // (asserted here, digested below together with the split stats).
        let (par, par_stats) = parallel_enum.enumerate(&plan, &layout, opts);
        assert_eq!(par.assignments, best.assignments, "parallel vs serial");
        assert_eq!(par.cost.to_bits(), best.cost.to_bits());
        mix(&mut h, par.cost.to_bits());
        mix(&mut h, par_stats.generated);
        mix(&mut h, par_stats.kept);
        mix(&mut h, par_stats.merges);
        mix(&mut h, par_stats.peak_rows);
    }

    // Seeded forest training (thread-parallel bagging) + inference.
    let registry = PlatformRegistry::named();
    let layout = FeatureLayout::new(registry.len(), N_OPERATOR_KINDS);
    let cfg = SamplerConfig::new().with_seed(41).with_noise(0.05);
    let train = simulator_training_set(&registry, &layout, &cfg, 120);
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 8,
            ..ForestConfig::default()
        },
        train.rows_view(),
        &train.labels,
    );
    let probe = simulator_training_set(
        &registry,
        &layout,
        &SamplerConfig::new().with_seed(42).with_noise(0.0),
        24,
    );
    let rows = probe.rows_view();
    for r in 0..rows.rows() {
        mix(&mut h, forest.predict(rows.row(r)).to_bits());
    }
    h
}

#[test]
fn seeded_run_is_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: print the digest for the parent and stop.
        println!("DIGEST={:016x}", seeded_run_digest());
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = Command::new(&exe)
            .args([
                "--exact",
                "seeded_run_is_byte_identical_across_processes",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness prints "test <name> ... " before the test's
        // own output, so the marker is not line-initial.
        String::from_utf8_lossy(&out.stdout)
            .split_once("DIGEST=")
            .map(|(_, rest)| {
                rest.chars()
                    .take_while(char::is_ascii_hexdigit)
                    .collect::<String>()
            })
            .expect("child printed a digest")
    };

    let first = child_digest();
    let second = child_digest();
    assert_eq!(
        first, second,
        "two processes of the same binary disagree on a seeded run"
    );
    assert_eq!(
        first,
        format!("{:016x}", seeded_run_digest()),
        "in-process digest disagrees with child processes"
    );
}
