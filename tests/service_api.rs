//! Service-facade integration (ISSUE 7, DESIGN §10):
//!
//! * model persistence — a forest trained through one facade survives the
//!   JSON round-trip and, installed into a second facade, answers every
//!   probe request bit-identically to the original;
//! * cache behaviour under pressure — a deliberately tiny capacity forces
//!   benefit-weighted evictions; the hit/miss/insertion/eviction counters
//!   stay mutually consistent and every post-eviction replay still matches
//!   a cache-off recompute bit-for-bit;
//! * request validation — malformed requests are rejected with
//!   `ServiceError`, never a panic.

use robopt::{
    forest_from_json, forest_to_json, ExecutionPolicy, OptimizeRequest, Optimizer, RiskPolicy,
    ServiceError, TrainRequest, WorkloadSpec,
};
use robopt_platforms::PlatformRegistry;

/// A spread of workload shapes that exercises every `WorkloadSpec` arm.
fn probe_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::WordCount { scale: 1e5 },
        WorkloadSpec::WordCount { scale: 1e7 },
        WorkloadSpec::TpchQ3 { scale: 1e6 },
        WorkloadSpec::Pipeline { ops: 9, scale: 1e5 },
        WorkloadSpec::Pipeline {
            ops: 17,
            scale: 1e6,
        },
        WorkloadSpec::RandomDag {
            seed: 0xF00D,
            ops: 7,
            density: 0.5,
        },
        WorkloadSpec::RandomDag {
            seed: 0xBEEF,
            ops: 10,
            density: 0.3,
        },
    ]
}

#[test]
fn forest_persistence_round_trip_preserves_every_decision() {
    // Train through facade A (the service verb, not the ml crate directly).
    let mut trainer = Optimizer::named();
    let summary = trainer
        .train(&TrainRequest::new(300))
        .expect("train 300 simulator rows");
    assert!(summary.train_mse.is_finite());
    let forest = trainer.forest().expect("train installs the forest");

    // JSON round-trip into facade B.
    let json = forest_to_json(forest);
    let restored = forest_from_json(&json).expect("forest survives its own JSON");
    let mut replica = Optimizer::named();
    replica
        .install_forest(restored)
        .expect("restored forest keeps the layout width");

    // Second encode must be byte-identical (canonical rendering).
    assert_eq!(
        json,
        forest_to_json(replica.forest().unwrap()),
        "forest JSON is not canonical across a round-trip"
    );

    // Both facades must answer every probe identically, cold caches.
    for spec in probe_specs() {
        let req = OptimizeRequest::new(spec);
        let a = trainer.optimize(&req).expect("trainer optimize");
        let b = replica.optimize(&req).expect("replica optimize");
        assert_eq!(a, b, "restored forest diverged on {}", a.workload);
    }
}

#[test]
fn tiny_cache_evicts_consistently_and_never_changes_responses() {
    let mut opt = Optimizer::new(PlatformRegistry::uniform(3));
    opt.set_cache_capacity(4);
    let mut reference = Optimizer::new(PlatformRegistry::uniform(3));
    reference.set_cache_enabled(false);

    // 12 distinct signatures through a 4-slot table: evictions guaranteed.
    let specs: Vec<WorkloadSpec> = (0..12)
        .map(|i| WorkloadSpec::RandomDag {
            seed: 0xCAFE + i,
            ops: 4 + (i as usize % 5),
            density: 0.4,
        })
        .collect();

    let cold: Vec<_> = specs
        .iter()
        .map(|&spec| opt.optimize(&OptimizeRequest::new(spec)).expect("cold"))
        .collect();
    let s = opt.cache_stats();
    assert_eq!(s.capacity, 4);
    assert_eq!(s.misses, 12, "12 distinct signatures must all miss");
    assert_eq!(s.insertions, 12);
    assert!(
        s.evictions >= 8,
        "12 insertions through 4 slots left only {} evictions",
        s.evictions
    );
    assert_eq!(
        s.insertions - s.evictions,
        s.len as u64,
        "insertions − evictions must equal live entries"
    );
    assert!(s.len <= s.capacity);

    // Replay the whole stream: hits where entries survived, recomputes
    // where they were evicted — either way bit-identical to the cold pass
    // and to a cache-off facade.
    for (spec, was) in specs.iter().zip(&cold) {
        let again = opt.optimize(&OptimizeRequest::new(*spec)).expect("replay");
        let recomputed = reference
            .optimize(&OptimizeRequest::new(*spec))
            .expect("cache-off");
        assert_eq!(&again, was, "replay diverged from the cold response");
        assert_eq!(again, recomputed, "cached path diverged from cache-off");
    }
    let s2 = opt.cache_stats();
    assert!(s2.hits >= 1, "the tail of the stream must still be cached");
    assert_eq!(
        s2.hits + s2.misses,
        24,
        "every lookup is either a hit or a miss"
    );
    assert_eq!(
        s2.insertions - s2.evictions,
        s2.len as u64,
        "counter consistency must survive the replay"
    );

    // clear_cache drops entries but keeps lifetime counters monotonic.
    opt.clear_cache();
    let s3 = opt.cache_stats();
    assert_eq!(s3.len, 0);
    assert_eq!(s3.hits, s2.hits);
}

#[test]
fn cache_key_separates_policies_that_change_the_answer() {
    // prune on/off and split_parts are part of the plan signature (they can
    // change the search), so flipping them must MISS; worker count and the
    // hardware clamp only change scheduling, so they must HIT.
    // 7 ops keeps the prune-off arm tractable (unpruned kept-rows grow
    // exponentially in plan depth over the 5-platform named registry).
    let mut opt = Optimizer::named();
    let spec = WorkloadSpec::Pipeline { ops: 7, scale: 1e6 };
    let base = OptimizeRequest::new(spec);
    opt.optimize(&base).expect("cold");
    assert_eq!(opt.cache_stats().misses, 1);

    let pruned_off =
        OptimizeRequest::new(spec).with_policy(ExecutionPolicy::default().with_prune(false));
    opt.optimize(&pruned_off).expect("prune off");
    assert_eq!(opt.cache_stats().misses, 2, "prune flag must be in the key");

    let more_workers =
        OptimizeRequest::new(spec).with_policy(ExecutionPolicy::default().with_workers(4));
    let hit = opt.optimize(&more_workers).expect("worker sweep");
    let stats = opt.cache_stats();
    assert_eq!(stats.misses, 2, "worker count must NOT be in the key");
    assert_eq!(stats.hits, 1);
    assert_eq!(hit.signature, opt.optimize(&base).unwrap().signature);
}

#[test]
fn risk_policies_get_their_own_cache_entries() {
    // ISSUE 9: the plan signature covers the risk policy, so the same
    // workload under two policies occupies two cache lines — a
    // MeanPlusKSigma hit must never serve an ExpectedCost entry.
    let mut opt = Optimizer::named();
    opt.train(&TrainRequest::new(200))
        .expect("train a forest so spreads are real");
    let spec = WorkloadSpec::Pipeline { ops: 7, scale: 1e6 };
    let expected = OptimizeRequest::new(spec);
    let robust = OptimizeRequest::new(spec).with_risk(RiskPolicy::MeanPlusKSigma(1.5));

    let e_cold = opt.optimize(&expected).expect("expected cold");
    assert_eq!(opt.cache_stats().misses, 1);
    let r_cold = opt.optimize(&robust).expect("sigma cold");
    let s = opt.cache_stats();
    assert_eq!(
        (s.hits, s.misses, s.insertions),
        (0, 2, 2),
        "two risk policies must occupy two cache entries"
    );
    assert_ne!(e_cold.signature, r_cold.signature);
    assert_eq!(e_cold.risk_policy, "expected");
    assert_eq!(r_cold.risk_policy, "sigma1.5");

    // Replays hit their own policy's entry and are bit-identical to cold.
    let e_hit = opt.optimize(&expected).expect("expected hit");
    let r_hit = opt.optimize(&robust).expect("sigma hit");
    let s2 = opt.cache_stats();
    assert_eq!((s2.hits, s2.misses), (2, 2));
    assert_eq!(e_hit, e_cold, "expected replay diverged");
    assert_eq!(r_hit, r_cold, "sigma replay diverged");
    assert_eq!(
        r_hit.risk_policy, "sigma1.5",
        "a sigma hit must never serve the expected entry"
    );

    // Cache-off recompute per policy stays bit-identical too, and the
    // forest-backed response carries a real (ordered) uncertainty band.
    let mut reference = Optimizer::named();
    reference.set_cache_enabled(false);
    reference
        .train(&TrainRequest::new(200))
        .expect("same training request, same forest");
    assert_eq!(reference.optimize(&expected).expect("cache-off"), e_cold);
    assert_eq!(reference.optimize(&robust).expect("cache-off"), r_cold);
    assert!(e_cold.cost_std >= 0.0);
    assert!(e_cold.cost_q10 <= e_cold.cost_q90, "quantiles are ordered");
}

#[test]
fn invalid_requests_error_instead_of_panicking() {
    let mut opt = Optimizer::named();
    let bad_ops = opt.optimize(&OptimizeRequest::new(WorkloadSpec::Pipeline {
        ops: 1,
        scale: 1e5,
    }));
    assert!(matches!(bad_ops, Err(ServiceError::InvalidRequest(_))));

    let bad_density = opt.optimize(&OptimizeRequest::new(WorkloadSpec::RandomDag {
        seed: 1,
        ops: 5,
        density: 1.5,
    }));
    assert!(matches!(bad_density, Err(ServiceError::InvalidRequest(_))));

    let bad_rows = opt.train(&TrainRequest::new(2));
    assert!(matches!(bad_rows, Err(ServiceError::InvalidRequest(_))));

    // Errors must not poison the facade: a valid request still succeeds.
    opt.optimize(&OptimizeRequest::new(WorkloadSpec::WordCount {
        scale: 1e5,
    }))
    .expect("facade stays usable after rejected requests");
}
