//! Property (a), DESIGN §4: incremental `merge` of subplan vectors equals
//! whole-plan `vectorize` on random DAGs.
//!
//! Seeded randomized testing is the offline stand-in for proptest: 96 random
//! connected DAGs, random platform counts, random assignments, and a random
//! merge order (including merges of not-yet-adjacent units — the kernel must
//! be correct for any contraction order).

use robopt_core::vectorize::{add_conversion_features, fill_singleton, vectorize_assignment};
use robopt_plan::{workloads, SplitMix64, N_OPERATOR_KINDS};
use robopt_vector::merge::{merge_assignments, merge_feats};
use robopt_vector::{FeatureLayout, Scope, NO_PLATFORM};

#[test]
fn incremental_merge_equals_whole_plan_vectorize() {
    let mut rng = SplitMix64::new(0xF16_0001);
    for case in 0..96 {
        let n = 3 + rng.gen_range(10);
        let k = 2 + rng.gen_range(3);
        let plan = workloads::random_connected_dag(&mut rng, n, 0.35);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let assign: Vec<u8> = (0..n).map(|_| rng.gen_range(k) as u8).collect();

        // Ground truth: one-shot whole-plan encoding.
        let mut expected = Vec::new();
        vectorize_assignment(&plan, &layout, &assign, &mut expected);

        // Incremental: singleton vectors, then merge units in random order,
        // adding conversion features for edges crossing the merged scopes.
        struct Unit {
            scope: Scope,
            feats: Vec<f64>,
            assign: Vec<u8>,
        }
        let mut units: Vec<Unit> = (0..n as u32)
            .map(|op| {
                let mut feats = vec![0.0; layout.width];
                fill_singleton(&plan, &layout, op, assign[op as usize], &mut feats);
                let mut a = vec![NO_PLATFORM; n];
                a[op as usize] = assign[op as usize];
                Unit {
                    scope: Scope::singleton(op),
                    feats,
                    assign: a,
                }
            })
            .collect();
        while units.len() > 1 {
            let i = rng.gen_range(units.len());
            let mut j = rng.gen_range(units.len());
            if i == j {
                j = (j + 1) % units.len();
            }
            let (lo, hi) = (i.min(j), i.max(j));
            let b = units.swap_remove(hi);
            let a = units.swap_remove(lo);
            let mut feats = vec![0.0; layout.width];
            let mut merged_assign = vec![NO_PLATFORM; n];
            merge_feats(&mut feats, &a.feats, &b.feats);
            merge_assignments(&mut merged_assign, &a.assign, &b.assign);
            for &(u, v) in plan.edges() {
                let crosses = (a.scope.contains(u) && b.scope.contains(v))
                    || (b.scope.contains(u) && a.scope.contains(v));
                if crosses {
                    add_conversion_features(
                        &plan,
                        &layout,
                        u,
                        v,
                        merged_assign[u as usize],
                        merged_assign[v as usize],
                        &mut feats,
                    );
                }
            }
            units.push(Unit {
                scope: a.scope.union(b.scope),
                feats,
                assign: merged_assign,
            });
        }
        let got = &units[0];
        assert_eq!(got.assign, assign, "case {case}: assignment mismatch");
        for (cell, (&g, &e)) in got.feats.iter().zip(&expected).enumerate() {
            let tol = 1e-12 * e.abs().max(1.0);
            assert!(
                (g - e).abs() <= tol,
                "case {case} (n={n}, k={k}): cell {cell} differs: incremental {g} vs whole-plan {e}"
            );
        }
    }
}
