//! Platforms-subsystem integration tests (DESIGN §2):
//!
//! * COT invariants on the named registry — symmetric channels give
//!   symmetric path costs, and the precomputed all-pairs paths satisfy the
//!   triangle inequality at the reference cardinality;
//! * runtime-simulator determinism under a fixed seed;
//! * the dense-id parity guarantee — `PlatformRegistry::uniform(k)` carries
//!   the PR-1 per-platform factor table as registry data, so the derived
//!   oracle weights reproduce the old hard-coded table closed-form and
//!   enumeration over `uniform(k)` is the old dense-id behaviour for
//!   `k <= 5`;
//! * `cost_batch` == row-wise `cost_row` on random feature matrices.

use robopt::{OptimizeRequest, Optimizer, SimulateRequest, WorkloadSpec};
use robopt_baselines::exhaustive_best;
use robopt_core::{AnalyticOracle, CostOracle};
use robopt_plan::{SplitMix64, N_OPERATOR_KINDS};
use robopt_platforms::{PlatformRegistry, REF_TUPLES};
use robopt_vector::{FeatureLayout, RowsView};

#[test]
fn named_cot_paths_are_symmetric_and_triangle_consistent() {
    let reg = PlatformRegistry::named();
    let cot = reg.conversions();
    for a in reg.ids() {
        for b in reg.ids() {
            if a == b {
                continue;
            }
            // Symmetry: every declared channel is symmetric, so the cheapest
            // path in both directions costs the same at any cardinality.
            let ab = cot.path(a, b).expect("named registry is fully convertible");
            let ba = cot.path(b, a).unwrap();
            assert!(
                (ab.cost(REF_TUPLES) - ba.cost(REF_TUPLES)).abs() <= 1e-9,
                "path cost {a}->{b} != {b}->{a}"
            );
            // Triangle inequality at the reference cardinality the paths
            // were ranked at: no two-leg detour beats the stored path.
            for c in reg.ids() {
                if c == a || c == b {
                    continue;
                }
                let (Some(ac), Some(cb)) = (cot.path(a, c), cot.path(c, b)) else {
                    continue;
                };
                assert!(
                    ab.cost(REF_TUPLES) <= ac.cost(REF_TUPLES) + cb.cost(REF_TUPLES) + 1e-9,
                    "stored path {a}->{b} beaten by detour via {c}"
                );
            }
        }
    }
    // Postgres<->Giraph has no direct channel, so its cheapest path routes
    // through a third platform.
    let pg = reg.by_name("postgres").unwrap();
    let gi = reg.by_name("giraph").unwrap();
    assert!(reg.conversion(pg, gi).unwrap().hops >= 2);
}

#[test]
fn simulator_is_deterministic_under_a_fixed_seed() {
    let mut opt = Optimizer::named();
    let spec = WorkloadSpec::TpchQ3 { scale: 1e6 };
    let winner = opt
        .optimize(&OptimizeRequest::new(spec))
        .expect("optimize tpch_q3")
        .assignments;

    let sim_req = |seed: u64, noise: f64| SimulateRequest {
        workload: spec,
        assignments: winner.clone(),
        seed,
        noise,
    };
    for noise in [0.0, 0.2] {
        let a = opt.simulate(&sim_req(7, noise)).expect("simulate");
        let b = opt.simulate(&sim_req(7, noise)).expect("simulate");
        assert!(a.feasible && a.seconds > 0.0);
        assert_eq!(
            a.seconds, b.seconds,
            "same seed, same noise: simulated runtimes differ"
        );
    }
    // Different seeds only matter once noise is enabled.
    let s1 = opt.simulate(&sim_req(1, 0.2)).expect("simulate");
    let s2 = opt.simulate(&sim_req(2, 0.2)).expect("simulate");
    assert_ne!(s1.seconds, s2.seconds);
}

/// The PR-1 analytic oracle's hard-coded tables, closed-form. `uniform(k)`
/// must reproduce them exactly through the registry-derived weight path.
#[test]
fn uniform_registry_reproduces_dense_id_oracle_weights() {
    const FACTORS: [f64; 8] = [1.0, 0.55, 1.7, 0.8, 1.25, 0.65, 1.45, 0.9];
    let kind_base = |kind: usize| 0.5 + (kind % 7) as f64 * 0.3;
    for k in 2..=5usize {
        let reg = PlatformRegistry::uniform(k);
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let oracle = AnalyticOracle::for_registry(&reg, &layout);
        let w = oracle.weights();
        for p in 0..k {
            for kind in 0..N_OPERATOR_KINDS {
                let expected = kind_base(kind) * FACTORS[p];
                let got = w[layout.kind_platform_count(kind, p)];
                assert!(
                    (got - expected).abs() <= 1e-12 * expected,
                    "kind_platform weight (kind {kind}, p {p}): {got} != {expected}"
                );
            }
            assert!((w[layout.conversion_count(p)] - 5.0).abs() <= 1e-12);
            assert!((w[layout.conversion_tuples(p)] - 8e-6 * FACTORS[p]).abs() <= 1e-18);
            assert!((w[layout.platform_input_tuples(p)] - 2e-6 * FACTORS[p]).abs() <= 1e-18);
        }
    }
}

#[test]
fn uniform_registry_enumeration_matches_dense_id_optimum() {
    // Under uniform availability every dense assignment is feasible, so the
    // registry-aware enumeration must land on the same optimum the dense-id
    // exhaustive sweep finds — for every k the old code path supported. The
    // fast side runs through the service facade; the exhaustive baseline
    // takes the facade's raw options via the escape hatch.
    for k in 2..=5usize {
        let spec = WorkloadSpec::WordCount { scale: 1e5 };
        let mut opt = Optimizer::new(PlatformRegistry::uniform(k));
        let plan = spec.build().expect("workload spec builds");
        let brute = exhaustive_best(&plan, opt.layout(), opt.enum_options());
        let fast = opt
            .optimize(&OptimizeRequest::new(spec))
            .expect("facade optimize");
        let tol = 1e-9 * brute.cost.abs().max(1.0);
        assert!(
            (fast.cost - brute.cost).abs() <= tol,
            "k={k}: registry enumeration {} != dense exhaustive {}",
            fast.cost,
            brute.cost
        );
        // Uniform availability: every singleton exists, nothing was masked.
        assert!(fast.stats.generated >= (plan.n_ops() * k) as u64);
    }
}

#[test]
fn cost_batch_matches_row_wise_costing_on_random_matrices() {
    let mut rng = SplitMix64::new(0xBA7C4);
    for k in [2usize, 5, 8] {
        let layout = FeatureLayout::new(k, N_OPERATOR_KINDS);
        let reg = PlatformRegistry::uniform(k);
        let oracle = AnalyticOracle::for_registry(&reg, &layout);
        let rows = 1 + rng.gen_range(64);
        let buf: Vec<f64> = (0..rows * layout.width)
            .map(|_| rng.next_f64() * 1e6)
            .collect();
        let view = RowsView::new(&buf, layout.width);
        let mut batch = Vec::new();
        oracle.cost_batch(view, &mut batch);
        assert_eq!(batch.len(), rows);
        for (r, &batched) in batch.iter().enumerate() {
            let row_cost = oracle.cost_row(view.row(r));
            let tol = 1e-12 * row_cost.abs().max(1.0);
            assert!(
                (batched - row_cost).abs() <= tol,
                "k={k}, row {r}: batch {batched} != row-wise {row_cost}"
            );
        }
    }
}
