//! Engine-subsystem integration tests (DESIGN §11):
//!
//! * byte-identity — the multi-threaded engine's terminal record streams
//!   equal the independent single-threaded reference executor's, for every
//!   workload family and across 1/2/4 workers;
//! * the `ExecutionBackend` seam — the simulator answers bit-identically
//!   through the trait object and through its direct API, and both
//!   backends agree on infeasibility;
//! * the `execute` service verb — digests reported by the facade match a
//!   directly-constructed engine, and the engine escape hatch matches the
//!   service path.

use robopt::{BackendChoice, ExecuteRequest, Optimizer, WorkloadSpec};
use robopt_engine::{digest_terminals, execute_reference, Engine, DEFAULT_MAX_SOURCE_ROWS};
use robopt_platforms::{ExecutionBackend, PlatformRegistry, RuntimeSimulator};

const SEED: u64 = 0x0E6E_7E57;

fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("wordcount", WorkloadSpec::WordCount { scale: 2.0e4 }),
        ("tpch_q3", WorkloadSpec::TpchQ3 { scale: 1.0e4 }),
        (
            "pagerank",
            WorkloadSpec::PageRank {
                scale: 3.0e3,
                iterations: 4,
            },
        ),
        (
            "kmeans",
            WorkloadSpec::KMeans {
                scale: 3.0e3,
                iterations: 4,
            },
        ),
        (
            "pipeline",
            WorkloadSpec::Pipeline {
                ops: 10,
                scale: 1.0e4,
            },
        ),
    ]
}

#[test]
fn engine_output_is_byte_identical_to_the_reference_across_worker_counts() {
    let registry = PlatformRegistry::named();
    let java = registry.by_name("java").expect("named registry has java");
    for (name, spec) in workloads() {
        let plan = spec.build().expect("workload spec builds");
        let all_java = vec![java; plan.n_ops()];
        let (ref_terminals, ref_digest) = execute_reference(&plan, SEED, DEFAULT_MAX_SOURCE_ROWS);
        assert_eq!(
            digest_terminals(&ref_terminals),
            ref_digest,
            "{name}: reference digest disagrees with its own terminals"
        );
        for workers in [1usize, 2, 4] {
            let engine = Engine::new(&registry).with_workers(workers).with_seed(SEED);
            let out = engine.execute_collect(&plan, &all_java);
            assert!(out.report.feasible, "{name}: all-java must be feasible");
            assert_eq!(
                out.terminals, ref_terminals,
                "{name}: engine terminals @ {workers} workers != reference"
            );
            assert_eq!(
                out.report.output_digest, ref_digest,
                "{name}: engine digest @ {workers} workers != reference"
            );
        }
    }
}

#[test]
fn backend_trait_object_answers_bit_identically_to_the_direct_simulator() {
    let registry = PlatformRegistry::named();
    let spec = WorkloadSpec::TpchQ3 { scale: 1.0e5 };
    let plan = spec.build().expect("workload spec builds");
    let java = registry.by_name("java").unwrap();
    let spark = registry.by_name("spark").unwrap();
    let mixed: Vec<_> = (0..plan.n_ops())
        .map(|i| if i % 2 == 0 { java } else { spark })
        .collect();
    let sim = RuntimeSimulator::new(&registry, 42).with_noise(0.05);
    let direct = sim.simulate(&plan, &mixed);
    let via_trait: &dyn ExecutionBackend = &sim;
    let report = via_trait.execute(&plan, &mixed);
    assert!(report.feasible);
    assert!(!report.measured, "simulator reports are fully modeled");
    assert_eq!(report.seconds.to_bits(), direct.to_bits());
}

#[test]
fn both_backends_agree_an_unavailable_placement_is_infeasible() {
    let registry = PlatformRegistry::named();
    let plan = WorkloadSpec::WordCount { scale: 1.0e3 }
        .build()
        .expect("workload spec builds");
    // Postgres lacks WordCount's operators (Fig 10 excludes it from the
    // candidate set for the same reason).
    let postgres = registry.by_name("postgres").unwrap();
    let all_pg = vec![postgres; plan.n_ops()];
    let sim = RuntimeSimulator::new(&registry, 0);
    let engine = Engine::new(&registry);
    for backend in [&sim as &dyn ExecutionBackend, &engine] {
        let report = backend.execute(&plan, &all_pg);
        assert!(!report.feasible, "{}: all-postgres ran", backend.name());
        assert!(report.seconds.is_infinite());
        assert_eq!(report.output_digest, 0);
        assert!(report.per_op.is_empty());
    }
    // The engine (only) also reports a wrong-arity assignment as
    // infeasible instead of panicking — the seam's lenient edge.
    let short = vec![postgres; plan.n_ops() - 1];
    assert!(!engine.execute(&plan, &short).feasible);
}

#[test]
fn execute_verb_digest_matches_a_directly_constructed_engine() {
    let mut opt = Optimizer::new(PlatformRegistry::named());
    let spec = WorkloadSpec::WordCount { scale: 1.0e4 };
    let plan = spec.build().expect("workload spec builds");
    let req = ExecuteRequest::new(spec)
        .with_assignments(vec!["java".into(); plan.n_ops()])
        .with_backend(BackendChoice::Engine { workers: 2 });
    let resp = opt.execute(&req).expect("execute verb succeeds");
    assert!(resp.feasible && resp.measured);

    // The escape hatch (DESIGN §11) must reproduce the service path's
    // data artifacts exactly; only its timings may differ run to run.
    let registry = PlatformRegistry::named();
    let java = registry.by_name("java").unwrap();
    let hatch = opt.engine(2);
    let report = hatch.execute(&plan, &vec![java; plan.n_ops()]);
    assert_eq!(resp.output_digest, report.output_digest);
    assert_eq!(resp.output_rows, report.output_rows);
    assert_eq!(resp.op_output_rows.len(), plan.n_ops());
}
