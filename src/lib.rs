//! `robopt-repro`: reproduction of *ML-based Cross-Platform Query
//! Optimization* (Robopt, ICDE 2020) in Rust.
//!
//! The headline contribution reproduced here is **vector-based plan
//! enumeration**: the optimizer enumerates over flat `f64` feature-vector
//! matrices ([`robopt_vector`]) instead of object subplan graphs, so the
//! ML cost model reads its input for free and the hot loop is primitive
//! array arithmetic. See `DESIGN.md` for the full architecture and
//! `EXPERIMENTS.md` for the figure-by-figure reproduction status.
//!
//! Crate map (re-exported below):
//!
//! * [`robopt_plan`] — logical operators, dataflow DAGs, workloads;
//! * [`robopt_vector`] — Fig-5 layout, `EnumMatrix`, merge kernel,
//!   pruning footprints;
//! * [`robopt_core`] — vectorize / enumerate / unvectorize (Algorithm 1);
//! * [`robopt_baselines`] — object-graph "Rheem-ML" foil, exhaustive search;
//! * [`robopt_platforms`] — the platform registry: descriptors,
//!   operator-availability matrix, conversion graph (COT), and the
//!   deterministic runtime simulator;
//! * [`robopt_ml`] — the learned cost model: CART regression trees, the
//!   bagged random forest, the ridge linear baseline, accuracy metrics,
//!   and the `TrainingSource` / `TrainingSet` contract every label
//!   provider implements — all pluggable into enumeration through
//!   `ModelOracle` behind `&dyn CostOracle`;
//! * [`robopt_tdgen`] — TDGEN, the scalable training-data generator:
//!   seeded job-shape templates, β-bounded platform-switch pruning, and
//!   piecewise degree-5 log-log runtime interpolation so most labels are
//!   synthesized rather than simulated;
//! * [`robopt`] (re-exported as [`service`]) — the optimizer-as-a-service
//!   facade: request/response API, plan-signature cache, forest
//!   persistence, and the wire protocol the `robopt` binary speaks;
//! * [`robopt_cli`] — the `robopt` binary: `serve` daemon plus one-shot
//!   `optimize` / `train` / `simulate` / `compare` / `execute`
//!   subcommands;
//! * [`robopt_engine`] — the real multi-threaded in-memory dataflow
//!   executor behind the `ExecutionBackend` seam: seeded data
//!   generators, partition-parallel operators, iterative PageRank /
//!   k-means kernels, byte-identical outputs across worker counts.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub use robopt as service;
pub use robopt_baselines as baselines;
pub use robopt_cli as cli;
pub use robopt_core as core;
pub use robopt_engine as engine;
pub use robopt_ml as ml;
pub use robopt_plan as plan;
pub use robopt_platforms as platforms;
pub use robopt_tdgen as tdgen;
pub use robopt_vector as vector;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use robopt::{
        BackendChoice, ExecuteRequest, ExecuteResponse, ExecutionPolicy, OptimizeRequest,
        OptimizeResponse, Optimizer, ServiceError, WorkloadSpec,
    };
    pub use robopt_core::{
        uniform_oracle, AnalyticOracle, CostOracle, EnumOptions, EnumStats, Enumerator,
    };
    pub use robopt_engine::{execute_reference, Engine};
    pub use robopt_ml::{
        r_squared, simulator_training_set, spearman, ForestConfig, LinearModel, Metrics, Model,
        ModelOracle, RandomForest, SamplerConfig, SimulatorSource, TrainingSet, TrainingSource,
    };
    pub use robopt_plan::{workloads, LogicalPlan, Operator, OperatorKind, SplitMix64};
    pub use robopt_platforms::{
        ExecutionBackend, ExecutionReport, Platform, PlatformId, PlatformRegistry,
        RuntimeSimulator, MAX_PLATFORMS,
    };
    pub use robopt_tdgen::{tdgen_training_set, ShapeKind, TdgenConfig, TdgenGenerator};
    pub use robopt_vector::{EnumMatrix, FeatureLayout, RowsView, Scope};
}
